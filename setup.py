"""Setuptools shim.

The environment this reproduction targets has no network access and an older
setuptools without the ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build the editable wheel.  ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation`` on newer toolchains)
installs the package from ``src/`` instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
