"""Trace-driven workload generation: arrival processes and scenario presets.

The load generator turns a :class:`WorkloadSpec` — an arrival process plus a
mixture of :class:`RequestClass` length/priority profiles — into a seeded,
reproducible list of :class:`~repro.serving.request.Request` objects ready to
feed :meth:`~repro.serving.engine.ServingEngine.run`.

Arrival processes:

* ``"poisson"`` — exponential inter-arrival times at ``arrival_rate_rps``.
* ``"bursty"`` — a hyperexponential process: each gap is drawn from a fast
  rate (``arrival_rate_rps * burst_rate_multiplier``) with probability
  ``burst_probability`` and a compensating slow rate otherwise, so the mean
  rate stays ``arrival_rate_rps`` while arrivals cluster into bursts.

Prompt and output lengths are lognormal (median/σ parameterisation) clipped
to ``[min, max]`` — the heavy right tail matches observed LLM serving traces.

Four presets live in :data:`SCENARIOS`: ``"chat"`` (short interactive
turns), ``"long_document_qa"`` (the paper's long-context regime: 16K–128K
prompts, short answers, bursty arrivals), ``"shared_prefix"`` (multi-tenant
system prompts plus multi-turn follow-ups — most of every prompt is a
shared prefix, the regime the prefix cache exists for), and
``"mixed_agentic"`` (interactive traffic plus background agent jobs in two
priority classes).  Use :func:`scenario` to fetch one and
:func:`dataclasses.replace` to vary it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request

__all__ = [
    "RequestClass",
    "WorkloadSpec",
    "WorkloadGenerator",
    "SCENARIOS",
    "scenario",
    "arrival_offsets",
]


def arrival_offsets(requests: list[Request], time_scale: float = 1.0) -> list[float]:
    """Wall-clock submission offsets for open-loop replay of a trace.

    Maps each request's virtual ``arrival_time_s`` to a non-negative offset
    from the trace's *first* arrival, scaled by ``time_scale`` — an open-loop
    client sleeps each request's offset and then submits, regardless of
    whether earlier requests have finished.  ``time_scale=1.0`` replays the
    trace's arrival process in real time, ``< 1`` compresses it (heavier
    load), and ``0.0`` degenerates to submit-everything-at-once.
    """
    if time_scale < 0:
        raise ValueError("time_scale must be non-negative")
    if not requests:
        return []
    start = min(r.arrival_time_s for r in requests)
    return [time_scale * (r.arrival_time_s - start) for r in requests]


@dataclass(frozen=True)
class RequestClass:
    """One request profile inside a workload mixture.

    ``weight`` is the class's relative share of arrivals.  ``priority`` is
    the scheduling class stamped on generated requests (lower = more urgent).
    Prompt and output lengths are lognormal with the given median and sigma
    (in log space), clipped to ``[min, max]`` tokens.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    prompt_median: int = 512
    prompt_sigma: float = 0.6
    prompt_min: int = 16
    prompt_max: int = 8_192
    output_median: int = 128
    output_sigma: float = 0.5
    output_min: int = 4
    output_max: int = 1_024
    #: Leading tokens of every prompt drawn from a class-wide shared prefix
    #: (a system prompt / conversation context reused across requests) —
    #: the shared-prefix KV cache turns these into prefix hits.  0 = no
    #: sharing.  Only meaningful with ``with_token_ids=True``.
    shared_prefix_tokens: int = 0
    #: Number of distinct shared prefixes in the class (tenants /
    #: conversations); each request draws one uniformly.
    shared_prefix_pool: int = 1
    #: Zipf skew of the tenant draw: 0.0 (default) keeps the uniform draw,
    #: ``alpha > 0`` weights tenant ``k`` (1-indexed) proportionally to
    #: ``k ** -alpha`` — a few hot tenants dominate the traffic, the regime
    #: where prefix-affinity routing and load-aware routing pull in opposite
    #: directions (the hot tenant's replica saturates).
    shared_prefix_zipf_alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"class {self.name!r}: weight must be positive")
        for label, lo, mid, hi in (
            ("prompt", self.prompt_min, self.prompt_median, self.prompt_max),
            ("output", self.output_min, self.output_median, self.output_max),
        ):
            if not (0 < lo <= mid <= hi):
                raise ValueError(
                    f"class {self.name!r}: need 0 < {label}_min <= {label}_median "
                    f"<= {label}_max, got ({lo}, {mid}, {hi})"
                )
        if self.shared_prefix_tokens < 0:
            raise ValueError(f"class {self.name!r}: shared_prefix_tokens must be >= 0")
        if self.shared_prefix_tokens >= self.prompt_min:
            if self.shared_prefix_tokens > 0:
                raise ValueError(
                    f"class {self.name!r}: shared_prefix_tokens "
                    f"({self.shared_prefix_tokens}) must be below prompt_min "
                    f"({self.prompt_min}) so every prompt has a unique tail"
                )
        if self.shared_prefix_pool < 1:
            raise ValueError(f"class {self.name!r}: shared_prefix_pool must be >= 1")
        if self.shared_prefix_zipf_alpha < 0:
            raise ValueError(
                f"class {self.name!r}: shared_prefix_zipf_alpha must be >= 0 "
                "(0 = uniform tenant draw)"
            )

    def max_kv_tokens(self) -> int:
        """Worst-case KV footprint of one request of this class (tokens)."""
        return self.prompt_max + self.output_max


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete workload: arrival process + request-class mixture + SLOs.

    ``arrival_rate_rps`` is the mean arrival rate in requests per second.
    ``ttft_slo_s`` / ``tpot_slo_s`` are the scenario's latency objectives
    (seconds), consumed by :meth:`ServingMetrics.slo_attainment` and the
    ``bench_serving_slo`` sweep.
    """

    name: str
    classes: tuple[RequestClass, ...]
    arrival_process: str = "poisson"  # "poisson" | "bursty"
    arrival_rate_rps: float = 1.0
    burst_rate_multiplier: float = 8.0
    burst_probability: float = 0.15
    ttft_slo_s: float = 10.0
    tpot_slo_s: float = 0.2

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a workload needs at least one request class")
        if self.arrival_process not in ("poisson", "bursty"):
            raise ValueError(
                f"unknown arrival_process {self.arrival_process!r}; "
                "expected 'poisson' or 'bursty'"
            )
        if self.arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if self.burst_rate_multiplier <= 1.0:
            raise ValueError("burst_rate_multiplier must be > 1")
        if not (0.0 < self.burst_probability < 1.0):
            raise ValueError("burst_probability must be in (0, 1)")

    def max_kv_tokens(self) -> int:
        """Worst-case KV footprint of any request this workload can emit."""
        return max(c.max_kv_tokens() for c in self.classes)


class WorkloadGenerator:
    """Seeded generator of request traces from a :class:`WorkloadSpec`.

    The same ``(spec, seed)`` pair always yields the same trace, so serving
    experiments are reproducible end to end.  With ``with_token_ids=True``
    the requests carry synthetic prompt token ids (required by real-compute
    backends); length-only requests are enough for the cost-model backend.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def generate(
        self,
        n_requests: int,
        start_time_s: float = 0.0,
        with_token_ids: bool = False,
        vocab_size: int = 32_000,
        id_prefix: str | None = None,
    ) -> list[Request]:
        """Draw ``n_requests`` requests with seeded arrivals, lengths, classes."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        # Trace structure (arrivals, classes, lengths) and token content draw
        # from independent child streams of the same seed, so the *same*
        # (spec, seed) trace is produced whether or not token ids are attached
        # (length-only cost-model runs stay comparable to real-backend runs).
        trace_seq, content_seq = np.random.SeedSequence(self.seed).spawn(2)
        rng = np.random.default_rng(trace_seq)
        content_rng = np.random.default_rng(content_seq)
        spec = self.spec
        prefix = id_prefix if id_prefix is not None else spec.name

        arrivals = start_time_s + np.cumsum(self._inter_arrivals(rng, n_requests))
        weights = np.array([c.weight for c in spec.classes], dtype=np.float64)
        class_idx = rng.choice(len(spec.classes), size=n_requests, p=weights / weights.sum())

        # Shared prefixes are drawn once per class from the content stream
        # (they only exist when token ids are attached; trace structure is
        # unaffected either way).  Each entry is (pool, tenant_probs) where
        # tenant_probs is None for the uniform draw (the pre-Zipf behaviour,
        # kept bit-identical) or the Zipf popularity weights.
        prefix_pools: dict[int, tuple[list[np.ndarray], np.ndarray | None]] = {}
        if with_token_ids:
            for ci, cls in enumerate(spec.classes):
                if cls.shared_prefix_tokens > 0:
                    pool = [
                        content_rng.integers(0, vocab_size, size=cls.shared_prefix_tokens)
                        for _ in range(cls.shared_prefix_pool)
                    ]
                    probs = None
                    if cls.shared_prefix_zipf_alpha > 0:
                        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
                        weights_z = ranks ** -cls.shared_prefix_zipf_alpha
                        probs = weights_z / weights_z.sum()
                    prefix_pools[ci] = (pool, probs)

        requests = []
        for i in range(n_requests):
            cls = spec.classes[class_idx[i]]
            prompt = self._lognormal_length(
                rng, cls.prompt_median, cls.prompt_sigma, cls.prompt_min, cls.prompt_max
            )
            output = self._lognormal_length(
                rng, cls.output_median, cls.output_sigma, cls.output_min, cls.output_max
            )
            if with_token_ids:
                pooled = prefix_pools.get(int(class_idx[i]))
                if pooled is not None:
                    pool, probs = pooled
                    if probs is None:
                        tenant = int(content_rng.integers(0, len(pool)))
                    else:
                        tenant = int(content_rng.choice(len(pool), p=probs))
                    prefix_tokens = pool[tenant]
                    tail = content_rng.integers(0, vocab_size, size=prompt - prefix_tokens.size)
                    token_ids = tuple(int(t) for t in np.concatenate([prefix_tokens, tail]))
                else:
                    token_ids = tuple(
                        int(t) for t in content_rng.integers(0, vocab_size, size=prompt)
                    )
            else:
                token_ids = None
            requests.append(
                Request(
                    request_id=f"{prefix}-{i}",
                    prompt_tokens=prompt,
                    max_new_tokens=output,
                    arrival_time_s=float(arrivals[i]),
                    prompt_token_ids=token_ids,
                    priority=cls.priority,
                )
            )
        return requests

    def _inter_arrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        spec = self.spec
        if spec.arrival_process == "poisson":
            return rng.exponential(1.0 / spec.arrival_rate_rps, size=n)
        # Hyperexponential burst model: fast gaps with probability p, slow gaps
        # otherwise, with the slow rate chosen so the mean rate stays put.
        p = spec.burst_probability
        fast_rate = spec.arrival_rate_rps * spec.burst_rate_multiplier
        slow_rate = (1.0 - p) / (1.0 / spec.arrival_rate_rps - p / fast_rate)
        in_burst = rng.random(n) < p
        gaps = np.where(
            in_burst,
            rng.exponential(1.0 / fast_rate, size=n),
            rng.exponential(1.0 / slow_rate, size=n),
        )
        return gaps

    @staticmethod
    def _lognormal_length(
        rng: np.random.Generator, median: int, sigma: float, lo: int, hi: int
    ) -> int:
        value = rng.lognormal(mean=float(np.log(median)), sigma=sigma)
        return int(np.clip(round(value), lo, hi))


#: Scenario presets covering the serving regimes the paper cares about.
SCENARIOS: dict[str, WorkloadSpec] = {
    "chat": WorkloadSpec(
        name="chat",
        arrival_process="poisson",
        arrival_rate_rps=4.0,
        ttft_slo_s=2.0,
        tpot_slo_s=0.08,
        classes=(
            RequestClass(
                name="chat-turn",
                prompt_median=768,
                prompt_sigma=0.8,
                prompt_min=32,
                prompt_max=8_192,
                output_median=192,
                output_sigma=0.6,
                output_min=8,
                output_max=1_024,
            ),
        ),
    ),
    "long_document_qa": WorkloadSpec(
        name="long_document_qa",
        arrival_process="bursty",
        arrival_rate_rps=0.25,
        burst_rate_multiplier=8.0,
        burst_probability=0.2,
        ttft_slo_s=60.0,
        tpot_slo_s=0.25,
        classes=(
            RequestClass(
                name="doc-qa",
                prompt_median=49_152,
                prompt_sigma=0.5,
                prompt_min=16_384,
                prompt_max=131_072,
                output_median=96,
                output_sigma=0.5,
                output_min=16,
                output_max=512,
            ),
        ),
    ),
    "shared_prefix": WorkloadSpec(
        name="shared_prefix",
        arrival_process="poisson",
        arrival_rate_rps=4.0,
        ttft_slo_s=2.0,
        tpot_slo_s=0.08,
        classes=(
            # Multi-tenant system prompts: each tenant's requests begin with
            # the same long instruction block, so prefix caching turns the
            # bulk of every prefill into a hit.
            RequestClass(
                name="tenant-chat",
                weight=3.0,
                shared_prefix_tokens=1_536,
                shared_prefix_pool=4,
                prompt_median=2_048,
                prompt_sigma=0.4,
                prompt_min=1_600,
                prompt_max=6_144,
                output_median=192,
                output_sigma=0.6,
                output_min=8,
                output_max=1_024,
            ),
            # Multi-turn conversations: follow-up turns carry the whole
            # conversation so far as their prefix (deeper shared context,
            # fewer distinct conversations).
            RequestClass(
                name="follow-up-turn",
                weight=1.0,
                shared_prefix_tokens=6_144,
                shared_prefix_pool=8,
                prompt_median=7_168,
                prompt_sigma=0.2,
                prompt_min=6_400,
                prompt_max=12_288,
                output_median=256,
                output_sigma=0.5,
                output_min=16,
                output_max=1_024,
            ),
        ),
    ),
    "mixed_agentic": WorkloadSpec(
        name="mixed_agentic",
        arrival_process="bursty",
        arrival_rate_rps=2.0,
        burst_rate_multiplier=6.0,
        burst_probability=0.25,
        ttft_slo_s=5.0,
        tpot_slo_s=0.1,
        classes=(
            RequestClass(
                name="interactive",
                weight=3.0,
                priority=0,
                prompt_median=1_024,
                prompt_sigma=0.7,
                prompt_min=64,
                prompt_max=16_384,
                output_median=160,
                output_sigma=0.6,
                output_min=8,
                output_max=1_024,
            ),
            RequestClass(
                name="agent-background",
                weight=1.0,
                priority=1,
                prompt_median=24_576,
                prompt_sigma=0.6,
                prompt_min=4_096,
                prompt_max=98_304,
                output_median=768,
                output_sigma=0.5,
                output_min=64,
                output_max=2_048,
            ),
        ),
    ),
}


def scenario(name: str) -> WorkloadSpec:
    """Fetch a scenario preset by name (see :data:`SCENARIOS`)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known scenarios: {known}") from None
