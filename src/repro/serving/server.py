"""Back-compat shim: the old ``ServingSimulator`` as one ``ServingEngine`` config.

The serving front door is :class:`~repro.serving.engine.ServingEngine`; the
cost-model-only serving loop that used to live here is now just a
:class:`~repro.serving.backend.SimulatedBackend` plugged into that engine.
This wrapper keeps the old one-shot ``run(requests)`` call shape for existing
scripts; new code should construct the engine directly::

    engine = ServingEngine(SimulatedBackend(latency), scheduler_config)
    metrics = engine.run(requests)
"""

from __future__ import annotations

import warnings

from repro.gpu.simulator import LatencySimulator
from repro.serving.backend import SimulatedBackend
from repro.serving.engine import ServingEngine
from repro.serving.metrics import ServingMetrics
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerConfig

__all__ = ["ServingSimulator"]


class ServingSimulator:
    """Deprecated alias: simulate serving a set of requests under one policy.

    .. deprecated::
        ``ServingSimulator`` is a thin shim over
        ``ServingEngine(SimulatedBackend(latency), scheduler_config)`` and
        emits a :class:`DeprecationWarning` on construction.  **Removal
        horizon: two PRs after the async front end lands** (i.e. the next
        docs/API-surface pass) — migrate by constructing the engine directly
        as shown in the module docstring; ``run()`` results are identical.
    """

    def __init__(
        self,
        latency: LatencySimulator,
        scheduler_config: SchedulerConfig | None = None,
    ) -> None:
        warnings.warn(
            "ServingSimulator is deprecated and will be removed two PRs after "
            "the async serving front end (see its docstring); construct "
            "ServingEngine(SimulatedBackend(latency), scheduler_config) instead "
            "- run() results are identical.",
            DeprecationWarning,
            stacklevel=2,
        )
        self.latency = latency
        self.scheduler_config = scheduler_config or SchedulerConfig()

    def run(self, requests: list[Request]) -> ServingMetrics:
        """Serve ``requests`` to completion and return aggregate metrics."""
        engine = ServingEngine(SimulatedBackend(self.latency), self.scheduler_config)
        return engine.run(requests)
