"""Serving-loop simulator: scheduler + cost model driven on a virtual clock.

This stitches the pieces together the way a real serving system does: requests
arrive, the scheduler admits and prefills them (continuous batching), decode
iterations advance every running sequence by one token, and the GPU cost model
provides the duration of each prefill pass and decode iteration.  The output is
a :class:`~repro.serving.metrics.ServingMetrics` with TTFT / per-token latency /
throughput, which is what the paper's end-to-end comparisons report.
"""

from __future__ import annotations

from repro.gpu.simulator import LatencySimulator
from repro.serving.metrics import RequestRecord, ServingMetrics
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerConfig

__all__ = ["ServingSimulator"]


class ServingSimulator:
    """Simulate serving a set of requests under one system policy."""

    def __init__(
        self,
        latency: LatencySimulator,
        scheduler_config: SchedulerConfig | None = None,
    ) -> None:
        self.latency = latency
        self.scheduler_config = scheduler_config or SchedulerConfig()

    def run(self, requests: list[Request]) -> ServingMetrics:
        """Serve ``requests`` to completion and return aggregate metrics."""
        if not requests:
            raise ValueError("at least one request is required")
        scheduler = ContinuousBatchingScheduler(self.scheduler_config)
        pending = sorted(requests, key=lambda r: r.arrival_time_s)
        clock = 0.0
        metrics = ServingMetrics()

        submitted = 0
        while submitted < len(pending) or scheduler.has_work:
            # Admit everything that has arrived by the current time.
            while submitted < len(pending) and pending[submitted].arrival_time_s <= clock:
                scheduler.submit(pending[submitted])
                submitted += 1

            # Prefer prefilling a new request (one per iteration, as in vLLM).
            state = scheduler.schedule_prefill()
            if state is not None:
                clock += self.latency.prefill_latency(state.request.prompt_tokens)
                state.record_prefill(clock)
                continue

            batch = scheduler.decode_batch()
            if batch:
                # One decode iteration advances every running request by a token.
                context = max(s.context_length for s in batch)
                clock += self.latency.decode_step_latency(context, batch=len(batch))
                for s in batch:
                    s.record_decode_token(clock)
                for s in scheduler.retire_finished():
                    metrics.add(
                        RequestRecord(
                            request_id=s.request.request_id,
                            arrival_time_s=s.request.arrival_time_s,
                            prefill_finish_time_s=s.prefill_finish_time_s or clock,
                            finish_time_s=s.finish_time_s or clock,
                            prompt_tokens=s.request.prompt_tokens,
                            generated_tokens=s.generated_tokens,
                        )
                    )
                continue

            # Nothing running and nothing admissible: jump to the next arrival.
            if submitted < len(pending):
                clock = max(clock, pending[submitted].arrival_time_s)
            else:  # pragma: no cover - defensive; has_work guarantees progress
                break
        return metrics
