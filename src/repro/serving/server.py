"""Back-compat shim: the old ``ServingSimulator`` as one ``ServingEngine`` config.

The serving front door is :class:`~repro.serving.engine.ServingEngine`; the
cost-model-only serving loop that used to live here is now just a
:class:`~repro.serving.backend.SimulatedBackend` plugged into that engine.
This wrapper keeps the old one-shot ``run(requests)`` call shape for existing
scripts; new code should construct the engine directly::

    engine = ServingEngine(SimulatedBackend(latency), scheduler_config)
    metrics = engine.run(requests)
"""

from __future__ import annotations

from repro.gpu.simulator import LatencySimulator
from repro.serving.backend import SimulatedBackend
from repro.serving.engine import ServingEngine
from repro.serving.metrics import ServingMetrics
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerConfig

__all__ = ["ServingSimulator"]


class ServingSimulator:
    """Deprecated alias: simulate serving a set of requests under one policy."""

    def __init__(
        self,
        latency: LatencySimulator,
        scheduler_config: SchedulerConfig | None = None,
    ) -> None:
        self.latency = latency
        self.scheduler_config = scheduler_config or SchedulerConfig()

    def run(self, requests: list[Request]) -> ServingMetrics:
        """Serve ``requests`` to completion and return aggregate metrics."""
        engine = ServingEngine(SimulatedBackend(self.latency), self.scheduler_config)
        return engine.run(requests)
