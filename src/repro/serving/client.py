"""Async HTTP client and open-loop load generator for the serving front end.

:class:`CompletionClient` speaks the :class:`~repro.serving.http.CompletionServer`
protocol over raw ``asyncio`` connections (one connection per request, like
the server expects): non-streaming and SSE-streaming completions, plus the
``/healthz`` and ``/metrics`` probes.  Streaming completions measure
**wall-clock** time-to-first-token at the first SSE event — the client-side
observable the whole streaming front end exists for.

:func:`replay_trace` is the open-loop load generator: it replays a
:mod:`repro.serving.workload` trace against a server, submitting each request
at its (scaled) arrival offset *regardless of whether earlier requests have
completed* — the arrival process, not the server, controls the load.  Compare
with a closed-loop driver (a fixed number of workers, next request only after
the previous finishes), which self-throttles under saturation and therefore
underestimates queueing delay; ``benchmarks/bench_async_serving.py`` sweeps
both against the same engine.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.serving.request import Request
from repro.serving.workload import arrival_offsets

__all__ = ["CompletionResult", "CompletionClient", "replay_trace"]


@dataclass
class CompletionResult:
    """One completed (or failed) completion call, with wall-clock timings.

    ``wall_ttft_s`` is only measured for streaming calls (first SSE event);
    non-streaming calls observe nothing before the full body arrives.
    ``error`` carries the server's error message for non-200 responses, in
    which case the token fields are empty.
    """

    request_id: str
    status: int
    token_ids: list[int] = field(default_factory=list)
    text: str | None = None
    finish_reason: str | None = None
    wall_ttft_s: float | None = None
    wall_latency_s: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the server answered 200."""
        return self.status == 200


class CompletionClient:
    """Minimal async client for the completion server (one connection per call)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    # -- plumbing ----------------------------------------------------------------
    async def _open(self, method: str, path: str, body: bytes = b""):
        """Send one request; return ``(status, reader, writer)`` with body unread."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        status = int(parts[1]) if len(parts) > 1 else 0
        while True:  # drain response headers; Connection: close delimits the body
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return status, reader, writer

    async def _call(self, method: str, path: str, body: bytes = b""):
        """One full request/response cycle; returns ``(status, body_bytes)``."""
        status, reader, writer = await self._open(method, path, body)
        try:
            payload = await reader.read()
        finally:
            writer.close()
            await writer.wait_closed()
        return status, payload

    # -- probes ------------------------------------------------------------------
    async def healthz(self) -> dict:
        """``GET /healthz`` as a dict (raises for non-200)."""
        status, body = await self._call("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"/healthz returned {status}")
        return json.loads(body)

    async def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text exposition."""
        status, body = await self._call("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"/metrics returned {status}")
        return body.decode()

    # -- completions -------------------------------------------------------------
    def _payload(self, prompt, max_tokens: int, stream: bool, **sampling) -> bytes:
        body: dict = {"prompt": prompt, "max_tokens": max_tokens, "stream": stream}
        for key in ("temperature", "top_k", "seed", "stop", "priority"):
            if sampling.get(key) is not None:
                body[key] = sampling[key]
        return json.dumps(body).encode()

    async def complete(
        self, prompt, max_tokens: int = 16, stream: bool = False, **sampling
    ) -> CompletionResult:
        """Run one completion; ``stream=True`` consumes SSE and measures TTFT.

        ``prompt`` is a list of token ids (or a string against a
        tokenizer-equipped server).  ``sampling`` accepts ``temperature``,
        ``top_k``, ``seed``, ``stop`` (stop token id list), and ``priority``.
        """
        if stream:
            return await self._complete_streaming(prompt, max_tokens, **sampling)
        start = time.perf_counter()
        status, body = await self._call(
            "POST", "/v1/completions", self._payload(prompt, max_tokens, False, **sampling)
        )
        elapsed = time.perf_counter() - start
        payload = json.loads(body) if body else {}
        if status != 200:
            message = payload.get("error", {}).get("message", body.decode(errors="replace"))
            return CompletionResult(
                request_id="", status=status, wall_latency_s=elapsed, error=message
            )
        choice = payload["choices"][0]
        return CompletionResult(
            request_id=payload["id"],
            status=status,
            token_ids=list(choice["token_ids"]),
            text=choice.get("text"),
            finish_reason=choice.get("finish_reason"),
            wall_latency_s=elapsed,
        )

    async def _complete_streaming(
        self, prompt, max_tokens: int, **sampling
    ) -> CompletionResult:
        start = time.perf_counter()
        status, reader, writer = await self._open(
            "POST", "/v1/completions", self._payload(prompt, max_tokens, True, **sampling)
        )
        try:
            if status != 200:
                body = await reader.read()
                payload = json.loads(body) if body else {}
                return CompletionResult(
                    request_id="",
                    status=status,
                    wall_latency_s=time.perf_counter() - start,
                    error=payload.get("error", {}).get("message", "stream refused"),
                )
            result = CompletionResult(request_id="", status=status)
            text_parts: list[str] = []
            async for event in self._sse_events(reader):
                result.request_id = event["id"]
                choice = event["choices"][0]
                if "token" not in choice:
                    # Terminal chunk: carries the finish reason only.
                    result.finish_reason = choice.get("finish_reason")
                    continue
                if result.wall_ttft_s is None:
                    result.wall_ttft_s = time.perf_counter() - start
                result.token_ids.append(choice["token"])
                if "text" in choice:
                    text_parts.append(choice["text"])
            result.wall_latency_s = time.perf_counter() - start
            if text_parts:
                result.text = "".join(text_parts)
            return result
        finally:
            writer.close()
            await writer.wait_closed()

    @staticmethod
    async def _sse_events(reader: asyncio.StreamReader):
        """Yield parsed ``data:`` events until ``[DONE]`` or connection close."""
        while True:
            line = await reader.readline()
            if not line:
                return
            line = line.strip()
            if not line.startswith(b"data:"):
                continue
            data = line[len(b"data:"):].strip()
            if data == b"[DONE]":
                return
            yield json.loads(data)


async def replay_trace(
    client: CompletionClient,
    requests: list[Request],
    time_scale: float = 1.0,
    stream: bool = True,
) -> list[CompletionResult]:
    """Open-loop replay of a workload trace against a completion server.

    Each request is submitted at ``time_scale x`` its arrival offset within
    the trace (``time_scale=0`` submits everything at once), on its own
    connection, without waiting for earlier requests — the defining property
    of open-loop load.  Requests must carry ``prompt_token_ids`` (generate the
    trace with ``with_token_ids=True``).  Results come back in trace order.
    """
    offsets = arrival_offsets(requests, time_scale=time_scale)

    async def fire(request: Request, offset: float) -> CompletionResult:
        if request.prompt_token_ids is None:
            raise ValueError(
                f"request {request.request_id!r} carries no prompt_token_ids; "
                "generate the trace with with_token_ids=True"
            )
        if offset > 0:
            await asyncio.sleep(offset)
        sampling = request.sampling
        return await client.complete(
            list(request.prompt_token_ids),
            max_tokens=request.max_new_tokens,
            stream=stream,
            temperature=sampling.temperature if sampling else None,
            top_k=sampling.top_k if sampling else None,
            seed=sampling.seed if sampling else None,
            stop=list(sampling.stop_token_ids) if sampling else None,
            priority=request.priority or None,
        )

    return list(
        await asyncio.gather(*(fire(r, o) for r, o in zip(requests, offsets)))
    )
