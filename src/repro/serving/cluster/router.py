"""Routing policies: which replica serves the next request.

A :class:`RoutingPolicy` is consulted once per submission (and once per
resubmission after a replica failure) with the request and the list of
*healthy* replicas, and returns the replica that should serve it.  Three
policies ship, mirroring the scheduler-policy registry pattern:

* ``"round_robin"`` — cycle over the healthy replicas.  Load-blind: every
  replica gets the same request *count* regardless of request size or
  current backlog.
* ``"least_kv"`` — join the least-loaded replica, read from each replica's
  :class:`~repro.serving.metrics.LiveGauges` snapshot: fewest outstanding
  KV-demand tokens first (``kv_tokens_demand`` — materialised KV plus what
  every queued request will materialise, a *size-aware* queue length),
  in-flight request count as the tie-break, replica order as the final
  deterministic tie-break.
* ``"prefix_affinity"`` — hash the prompt's leading token blocks (the same
  ``page_size``-token block scheme :class:`~repro.kvcache.prefix_index.PrefixIndex`
  keys its trie on) so requests that share a prefix land on the same replica
  and hit its prefix cache, instead of every replica recomputing the same
  system prompt.  Length-only requests (no token ids) fall back to
  round-robin.

Policies are deliberately stateless with respect to the replicas — they read
gauges, never mutate — but may keep private counters (round-robin's cursor).
Create one per cluster via :func:`make_routing_policy`; sharing an instance
across clusters shares its cursor.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.serving.request import Request

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastKVPolicy",
    "PrefixAffinityPolicy",
    "ROUTING_POLICIES",
    "make_routing_policy",
]


class RoutingPolicy:
    """Chooses the replica that serves a request (see module docstring).

    ``replicas`` is the list of *healthy* replicas in stable creation order
    (quarantined replicas are filtered out before the policy runs); each
    exposes ``replica_id`` and ``live_gauges()``.  The list is never empty.
    """

    #: Registry name of the policy (the ``ServingCluster(routing=...)`` string).
    name: str = "abstract"

    def choose(self, request: Request, replicas: list):
        """Return the replica (an element of ``replicas``) to serve ``request``."""
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Cycle over the healthy replicas in order, one request each."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, request: Request, replicas: list):
        """The next replica in cyclic order (over the currently healthy set)."""
        pick = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return pick


class LeastKVPolicy(RoutingPolicy):
    """Join the replica with the least outstanding KV demand, by live gauges.

    Order of comparison: fewest ``kv_tokens_demand`` tokens (materialised KV
    plus what every queued request will materialise — a *size-aware* queue
    length, which matters when request sizes span orders of magnitude: two
    replicas with equal queue depth can hide a 100x demand gap), then fewest
    in-flight requests, then replica order for a deterministic tie-break.
    """

    name = "least_kv"

    def choose(self, request: Request, replicas: list):
        """The replica with the smallest (kv_tokens_demand, in_flight) load."""
        def load(indexed):
            index, replica = indexed
            gauges = replica.live_gauges()
            return (gauges.kv_tokens_demand, gauges.in_flight, index)

        return min(enumerate(replicas), key=load)[1]


class PrefixAffinityPolicy(RoutingPolicy):
    """Stick shared-prefix traffic to one replica by hashing leading blocks.

    The prompt's first ``depth`` whole blocks of ``block_tokens`` tokens each
    (fewer when the prompt is shorter) are hashed with CRC-32 — a stable,
    process-independent digest — and the digest picks a replica modulo the
    healthy-replica count.  Two prompts that share their leading blocks
    therefore always route to the same replica, whose
    :class:`~repro.kvcache.prefix_index.PrefixIndex` then serves the shared
    prefix from cache; match ``block_tokens`` to the backend's prefix
    granularity (``LServeConfig.physical_page_size`` for the real engine,
    ``prefix_block_tokens`` for the simulated one).

    When replicas are quarantined the modulo remaps over the survivors —
    affinity groups move wholesale to a new replica and stay sticky there.
    Length-only requests carry no tokens to hash and fall back to
    round-robin.
    """

    name = "prefix_affinity"

    def __init__(self, block_tokens: int = 64, depth: int = 4) -> None:
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.block_tokens = block_tokens
        self.depth = depth
        self._fallback = RoundRobinPolicy()

    def affinity_key(self, request: Request) -> int | None:
        """CRC-32 of the prompt's leading blocks; ``None`` without token ids."""
        if request.prompt_token_ids is None:
            return None
        ids = np.asarray(request.prompt_token_ids, dtype=np.int64)
        span = min(ids.size, self.depth * self.block_tokens)
        if span >= self.block_tokens:
            span = span // self.block_tokens * self.block_tokens
        return zlib.crc32(ids[:span].tobytes())

    def choose(self, request: Request, replicas: list):
        """The replica the prompt's leading-block hash maps to."""
        key = self.affinity_key(request)
        if key is None:
            return self._fallback.choose(request, replicas)
        return replicas[key % len(replicas)]


#: Registry of built-in routing policies, keyed by :attr:`RoutingPolicy.name`.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    cls.name: cls for cls in (RoundRobinPolicy, LeastKVPolicy, PrefixAffinityPolicy)
}


def make_routing_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered routing policy by name."""
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(ROUTING_POLICIES))
        raise ValueError(
            f"unknown routing policy {name!r}; known policies: {known}"
        ) from None
