"""Disaggregated serving: a prefill tier, a decode tier, modeled KV hand-off.

:class:`DisaggregatedCluster` partitions its replicas into two pools, the
way DistServe / Mooncake-style deployments do:

* the **prefill pool** admits every new request and computes its prompt KV
  (emitting the first token);
* the **decode pool** owns the token-by-token generation phase.

Between the two, the request's KV pages are *migrated*: the prefill
replica's backend exports the sequence (``handoff_out`` — ref-counted pages
detach from the source allocator), the pages are charged a modeled transfer
delay from a :class:`~repro.gpu.cost_model.TransferCostModel`
(``bytes = pages × page_size × layers × heads × head_dim × 2 × kv_bits/8``,
``latency = base + bytes / bandwidth``), and the decode replica's backend
attaches them (``handoff_in`` — fresh ref-count-1 pages, bit-identical
images).  The delay is realised on the decode replica's **virtual clock**:
the request joins its decode batch no earlier than
``prefill_finish + transfer_latency``.

Why bother?  Colocated serving lets a 100K-token prefill stall every
decoding request on the same replica for the whole prefill; disaggregation
confines prefill bursts to the prefill pool, so the decode pool's inter-token
latency (TPOT) stays flat.  ``benchmarks/bench_disaggregation.py`` measures
exactly that — and verifies the migrated outputs stay byte-identical to a
single-replica run, with zero pages leaked on either allocator.

Both pools reuse the cluster routing registry: ``prefix_affinity`` on the
prefill side keeps shared prompts hitting the same prefix cache, and the
decode side defaults to ``least_kv`` (size-aware balance).  See
``docs/disaggregation.md`` for the architecture diagram and the migration
lifecycle.

Typical use::

    cluster = DisaggregatedCluster(
        prefill_backends=[make_backend(), make_backend()],
        decode_backends=[make_backend(), make_backend()],
        transfer_model=TransferCostModel(),
    )
    async with cluster:
        handle = cluster.submit(request)
        async for token in handle.stream():
            ...
    metrics = await cluster.drain()          # DisaggMetrics
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

from repro.gpu.cost_model import TransferCostModel
from repro.serving.backend import InferenceBackend
from repro.serving.cluster.cluster import ClusterRequestHandle, Replica
from repro.serving.cluster.metrics import (
    DisaggMetrics,
    merge_live_gauges,
    render_cluster_prometheus,
)
from repro.serving.cluster.router import RoutingPolicy, make_routing_policy
from repro.serving.frontend import AsyncServingEngine
from repro.serving.metrics import LiveGauges, render_gauge_value
from repro.serving.request import Request
from repro.serving.sampling import SamplingParams
from repro.serving.scheduler import SchedulerConfig

__all__ = ["DisaggregatedCluster"]


class DisaggregatedCluster:
    """Prefill/decode-tiered serving with modeled KV migration (see module doc).

    ``prefill_backends`` / ``decode_backends`` each supply one
    :class:`InferenceBackend` per replica of that pool (never share an
    instance — every replica owns its KV pool).  ``prefill_routing`` /
    ``decode_routing`` pick the pool-local routing policy by registry name
    (``"round_robin"`` / ``"least_kv"`` / ``"prefix_affinity"``) or
    instance.  ``transfer_model`` prices each migration;
    ``scheduler_config`` applies to both tiers unless a tier-specific
    ``prefill_scheduler_config`` / ``decode_scheduler_config`` overrides it.
    ``decode_draft_sources`` optionally attaches one
    :class:`~repro.serving.speculative.DraftSource` per **decode** replica
    (prefill replicas finish at the first token, so speculation only ever
    runs on the decode tier); byte-exact verification plus deterministic
    draft sources keep pipeline restarts after a replica failure
    byte-identical.

    The surface mirrors :class:`~repro.serving.cluster.ServingCluster`:
    ``submit`` / ``replay`` / ``drain`` / ``shutdown`` / ``metrics`` /
    ``prometheus_metrics`` / ``pools``, and consumers hold the same
    :class:`~repro.serving.cluster.ClusterRequestHandle`.  Failure
    containment also carries over: a dead replica (either tier) is
    quarantined and its in-flight requests restart the whole
    prefill→migrate→decode pipeline on survivors, with already-delivered
    tokens deduplicated so streams stay byte-identical.
    """

    def __init__(
        self,
        prefill_backends: list[InferenceBackend],
        decode_backends: list[InferenceBackend],
        *,
        transfer_model: TransferCostModel | None = None,
        scheduler_config: SchedulerConfig | None = None,
        prefill_scheduler_config: SchedulerConfig | None = None,
        decode_scheduler_config: SchedulerConfig | None = None,
        prefill_routing: str | RoutingPolicy = "round_robin",
        decode_routing: str | RoutingPolicy = "least_kv",
        default_sampling: SamplingParams | None = None,
        prefill_ids: list[str] | None = None,
        decode_ids: list[str] | None = None,
        decode_draft_sources: list[object | None] | None = None,
    ) -> None:
        prefill_backends = list(prefill_backends)
        decode_backends = list(decode_backends)
        if not prefill_backends or not decode_backends:
            raise ValueError("disaggregation needs at least one replica per tier")
        all_backends = prefill_backends + decode_backends
        if len({id(b) for b in all_backends}) != len(all_backends):
            raise ValueError(
                "replicas must not share a backend instance; each replica owns "
                "its KV pool — construct one backend per replica"
            )
        if prefill_ids is None:
            prefill_ids = [f"prefill-{i}" for i in range(len(prefill_backends))]
        if decode_ids is None:
            decode_ids = [f"decode-{i}" for i in range(len(decode_backends))]
        if len(prefill_ids) != len(prefill_backends) or len(decode_ids) != len(
            decode_backends
        ):
            raise ValueError("replica id count must match backend count per tier")
        ids = prefill_ids + decode_ids
        if len(set(ids)) != len(ids):
            raise ValueError("replica ids must be unique across both tiers")
        if decode_draft_sources is None:
            decode_draft_sources = [None] * len(decode_backends)
        decode_draft_sources = list(decode_draft_sources)
        if len(decode_draft_sources) != len(decode_backends):
            raise ValueError(
                f"{len(decode_draft_sources)} decode_draft_sources for "
                f"{len(decode_backends)} decode backends"
            )
        self.transfer_model = transfer_model or TransferCostModel()
        self.prefill_routing = (
            prefill_routing
            if isinstance(prefill_routing, RoutingPolicy)
            else make_routing_policy(prefill_routing)
        )
        self.decode_routing = (
            decode_routing
            if isinstance(decode_routing, RoutingPolicy)
            else make_routing_policy(decode_routing)
        )
        self._prefill_replicas = [
            Replica(
                rid,
                AsyncServingEngine(
                    backend,
                    prefill_scheduler_config or scheduler_config,
                    default_sampling,
                ),
                role="prefill",
            )
            for rid, backend in zip(prefill_ids, prefill_backends)
        ]
        self._decode_replicas = [
            Replica(
                rid,
                AsyncServingEngine(
                    backend,
                    decode_scheduler_config or scheduler_config,
                    default_sampling,
                    draft_source=draft,
                ),
                role="decode",
            )
            for rid, backend, draft in zip(
                decode_ids, decode_backends, decode_draft_sources
            )
        ]
        self._handles: dict[str, ClusterRequestHandle] = {}
        self._pumps: set[asyncio.Task] = set()
        self._draining = False
        #: Completed KV migrations (one per request that reached the decode tier).
        self.migrations_total = 0
        #: Physical pages moved across all migrations.
        self.migrated_pages_total = 0
        #: Modeled transfer seconds charged across all migrations.
        self.transfer_seconds_total = 0.0
        #: Total pipeline restarts performed after replica failures.
        self.total_resubmissions = 0
        #: Requests that ended cancelled because the pipeline itself failed
        #: (e.g. the decode pool could not fit the migrated pages), by id.
        self.request_failures: dict[str, BaseException] = {}

    # -- topology ----------------------------------------------------------------
    @property
    def replicas(self) -> list[Replica]:
        """Every replica of both tiers (prefill pool first), in creation order."""
        return list(self._prefill_replicas) + list(self._decode_replicas)

    @property
    def healthy_replicas(self) -> list[Replica]:
        """Replicas currently eligible for routing, both tiers."""
        return [r for r in self.replicas if r.healthy]

    @property
    def num_replicas(self) -> int:
        """Total replica count across both tiers."""
        return len(self._prefill_replicas) + len(self._decode_replicas)

    def pools(self) -> dict[str, list[str]]:
        """Replica ids per tier: ``{"prefill": [...], "decode": [...]}``.

        Surfaced by the HTTP front end's ``GET /healthz``.
        """
        return {
            "prefill": [r.replica_id for r in self._prefill_replicas],
            "decode": [r.replica_id for r in self._decode_replicas],
        }

    def tier_of(self) -> dict[str, str]:
        """Tier name per replica id (the label set for metrics)."""
        return {r.replica_id: r.role for r in self.replicas}

    def replica_health(self) -> dict[str, bool]:
        """Health flag per replica id (``False`` = quarantined), both tiers."""
        return {r.replica_id: r.healthy for r in self.replicas}

    @property
    def failures(self) -> dict[str, BaseException]:
        """The exception that killed each quarantined replica, by id."""
        return {
            r.replica_id: r.failure
            for r in self.replicas
            if not r.healthy and r.failure is not None
        }

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Start every healthy replica's drive loop (idempotent; needs a loop)."""
        if self._draining:
            raise RuntimeError("cluster is draining or shut down; create a new one")
        for replica in self.replicas:
            if replica.healthy:
                replica.engine.start()

    async def __aenter__(self) -> "DisaggregatedCluster":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    async def drain(self) -> DisaggMetrics:
        """Serve everything in flight to completion, refusing new submissions.

        Every in-flight pipeline finishes first (prefill, migration, and
        decode — failures mid-drain still restart on survivors), then each
        healthy replica's drive loop is stopped.  Returns the fleet's
        :class:`DisaggMetrics`.
        """
        self._draining = True
        await self._await_pumps()
        for replica in self.replicas:
            if replica.healthy:
                await replica.engine.drain()
        return self.metrics

    async def shutdown(self) -> None:
        """Abort everything still in flight and stop every replica."""
        self._draining = True
        for handle in list(self._handles.values()):
            handle.cancel()
        await self._await_pumps()
        for replica in self.replicas:
            if replica.healthy:
                await replica.engine.shutdown()

    async def _await_pumps(self) -> None:
        # Pipeline restarts spawn new pumps, so drain the set to a fixed point.
        while self._pumps:
            await asyncio.gather(*list(self._pumps))

    # -- submission --------------------------------------------------------------
    def submit(self, request: Request, *, arrive_now: bool = False) -> ClusterRequestHandle:
        """Route a request into the prefill pool; returns its cluster handle.

        The request is served by the full pipeline: prefill on a prefill
        replica (first token streams out the moment prefill finishes), KV
        migration with modeled delay, then decode on a decode replica.
        ``arrive_now`` stamps the arrival with the prefill replica's current
        virtual clock (live-traffic semantics); leave it off when replaying
        a trace whose arrival times are the experiment.
        """
        if self._draining:
            raise RuntimeError("cluster is draining or shut down; submission refused")
        if request.request_id in self._handles:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self.start()
        handle = ClusterRequestHandle(request, self)
        self._handles[request.request_id] = handle
        self._spawn(handle, arrive_now=arrive_now)
        return handle

    async def replay(self, requests: list[Request]) -> list[ClusterRequestHandle]:
        """Submit a workload trace in virtual-time order across both tiers.

        Like :meth:`ServingCluster.replay`: each submission waits until every
        busy replica's clock reaches the request's arrival time, so routing
        decisions see realistic gauges.  Returns the handles in submission
        order; callers typically ``await cluster.drain()`` afterwards.
        """
        self.start()
        handles = []
        for request in sorted(requests, key=lambda r: r.arrival_time_s):
            await self._advance_clocks_to(request.arrival_time_s)
            handles.append(self.submit(request))
        return handles

    async def _advance_clocks_to(self, arrival_time_s: float) -> None:
        while any(
            r.healthy
            and r.engine.engine.has_work
            and r.engine.engine.clock_s < arrival_time_s
            for r in self.replicas
        ):
            await asyncio.sleep(0)

    def handle(self, request_id: str) -> ClusterRequestHandle:
        """Look up the handle of an *in-flight* request (pruned when terminal)."""
        return self._handles[request_id]

    def abort(self, request_id: str) -> bool:
        """Abort an in-flight request by id; ``False`` if it is not in flight."""
        handle = self._handles.get(request_id)
        if handle is None:
            return False
        return handle.cancel()

    # -- the pipeline ------------------------------------------------------------
    def _spawn(self, handle: ClusterRequestHandle, *, arrive_now: bool) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve(handle, arrive_now=arrive_now),
            name=f"disagg-pump-{handle.request_id}",
        )
        self._pumps.add(task)
        task.add_done_callback(self._pumps.discard)

    async def _serve(self, handle: ClusterRequestHandle, *, arrive_now: bool) -> None:
        """Run the prefill→migrate→decode pipeline, restarting on replica failure."""
        try:
            while True:
                finished = await self._serve_once(handle, arrive_now=arrive_now)
                if finished:
                    return
                if handle._cancel_requested:
                    self._retire(handle, cancelled=True)
                    return
                handle.resubmissions += 1
                self.total_resubmissions += 1
                arrive_now = True  # the restart arrives "now" on the survivors
        except Exception as exc:
            # A pipeline step itself failed (e.g. the decode pool cannot fit
            # the migrated pages).  Never strand the consumer on a stream
            # that will not end: record the failure and end the handle.
            self.request_failures[handle.request_id] = exc
            self._retire(handle, cancelled=True)

    async def _serve_once(self, handle: ClusterRequestHandle, *, arrive_now: bool) -> bool:
        """One pipeline attempt; ``False`` means a replica died → restart."""
        skip = len(handle._tokens)  # replayed tokens already delivered

        # -- prefill tier: compute the prompt KV, emit the first token --------
        try:
            prefill_replica = self._route(
                handle.request, self.prefill_routing, self._prefill_replicas
            )
        except RuntimeError:
            self._retire(handle, cancelled=True)
            return True
        prefill_request = replace(handle.request, max_new_tokens=1)
        try:
            rep_handle = prefill_replica.engine.submit(
                prefill_request, arrive_now=arrive_now
            )
        except RuntimeError as exc:
            self._quarantine(prefill_replica, exc)
            return False
        # Keep the prompt KV alive past retirement so it can be exported.
        prefill_replica.engine.engine.retain_kv_on_finish(handle.request_id)
        handle._replica = prefill_replica
        handle._rep_handle = rep_handle
        async for token in rep_handle.stream():
            if skip:
                skip -= 1
            else:
                handle._push(token)
        if not rep_handle.finished or rep_handle.cancelled:
            if handle._cancel_requested:
                self._retire(handle, cancelled=True)
                return True
            if prefill_replica.engine.failure is not None:
                self._quarantine(prefill_replica, prefill_replica.engine.failure)
                return False
            self._retire(handle, cancelled=True)
            return True

        sync = rep_handle._sync  # kept alive by the async handle after pruning
        first_tokens = list(sync.output_tokens)
        prefill_finish_s = sync.state.prefill_finish_time_s
        if prefill_finish_s is None:
            prefill_finish_s = prefill_replica.engine.engine.clock_s
        prefill_backend = prefill_replica.engine.engine.backend
        params = handle.request.sampling or prefill_replica.engine.default_sampling
        stopped = getattr(prefill_backend, "produces_logits", False) and params.is_stop(
            first_tokens[-1]
        )
        if handle._cancel_requested or handle.request.max_new_tokens == 1 or stopped:
            # Nothing left to decode (or the caller bailed): the retained KV
            # is released here instead of migrating.
            prefill_backend.release(handle.request_id)
            self._retire(handle, cancelled=handle._cancel_requested)
            return True

        # -- migrate: export from the prefill pool, price the transfer --------
        handoff = prefill_backend.handoff_out(handle.request_id)
        delay_s = handoff.transfer_latency_s(self.transfer_model)
        try:
            decode_replica = self._route(
                handle.request, self.decode_routing, self._decode_replicas
            )
        except RuntimeError:
            self._retire(handle, cancelled=True)
            return True
        decode_engine = decode_replica.engine
        try:
            decode_engine.engine.backend.handoff_in(handle.request_id, handoff)
            decode_handle = decode_engine.adopt(
                handle.request,
                output_tokens=first_tokens,
                rng=sync._rng,
                prefill_finish_time_s=prefill_finish_s,
                ready_time_s=prefill_finish_s + delay_s,
                transfer_ms=delay_s * 1e3,
                migrated_pages=handoff.n_pages,
            )
        except RuntimeError as exc:
            self._quarantine(decode_replica, exc)
            return False
        self.migrations_total += 1
        self.migrated_pages_total += handoff.n_pages
        self.transfer_seconds_total += delay_s

        # -- decode tier: stream the rest of the generation -------------------
        handle._replica = decode_replica
        handle._rep_handle = decode_handle
        if handle._cancel_requested:
            decode_handle.cancel()
        async for token in decode_handle.stream():
            if skip:
                skip -= 1
            else:
                handle._push(token)
        if decode_handle.finished and not decode_handle.cancelled:
            self._retire(handle, cancelled=False)
            return True
        if handle._cancel_requested:
            self._retire(handle, cancelled=True)
            return True
        if decode_replica.engine.failure is not None:
            self._quarantine(decode_replica, decode_replica.engine.failure)
            return False
        self._retire(handle, cancelled=True)
        return True

    def _route(
        self, request: Request, policy: RoutingPolicy, pool: list[Replica]
    ) -> Replica:
        candidates = [r for r in pool if r.healthy]
        if not candidates:
            raise RuntimeError(
                f"no healthy {pool[0].role} replicas remain; "
                f"quarantined: {sorted(self.failures)}"
            )
        return policy.choose(request, candidates)

    def _retire(self, handle: ClusterRequestHandle, *, cancelled: bool) -> None:
        handle._finish(cancelled)
        self._handles.pop(handle.request_id, None)

    def _quarantine(self, replica: Replica, failure: BaseException) -> None:
        if not replica.healthy:
            return
        replica.healthy = False
        replica.failure = failure

    # -- observability -----------------------------------------------------------
    @property
    def metrics(self) -> DisaggMetrics:
        """Per-replica + tier-aware fleet metrics (see :class:`DisaggMetrics`)."""
        return DisaggMetrics(
            per_replica={r.replica_id: r.engine.metrics for r in self.replicas},
            tier_of=self.tier_of(),
        )

    @property
    def default_sampling(self) -> SamplingParams:
        """The fleet-wide sampling default (same on every replica)."""
        return self._prefill_replicas[0].engine.default_sampling

    def live_gauges(self) -> LiveGauges:
        """Fleet-wide gauge snapshot (both tiers merged by summation)."""
        return merge_live_gauges([r.live_gauges() for r in self.replicas])

    def per_replica_gauges(self) -> dict[str, LiveGauges]:
        """Gauge snapshot per replica id, prefill pool first."""
        return {r.replica_id: r.live_gauges() for r in self.replicas}

    def prometheus_metrics(self) -> str:
        """The ``/metrics`` body: fleet + per-tier + per-replica series.

        Per-replica series carry ``{replica="...",tier="..."}`` labels and
        each tier gets merged ``repro_tier_*`` gauges; the migration
        counters (``repro_cluster_migrations_total``,
        ``repro_cluster_migrated_pages_total``,
        ``repro_cluster_transfer_seconds_total``) are appended.
        """
        body = render_cluster_prometheus(
            self.per_replica_gauges(),
            healthy=self.replica_health(),
            tiers=self.tier_of(),
        ).rstrip("\n")
        counters = [
            ("repro_cluster_migrations_total", self.migrations_total),
            ("repro_cluster_migrated_pages_total", self.migrated_pages_total),
            ("repro_cluster_transfer_seconds_total", self.transfer_seconds_total),
        ]
        lines = [body]
        for name, value in counters:
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {render_gauge_value(value)}")
        return "\n".join(lines) + "\n"
