"""Multi-replica serving: a KV/prefix-aware router over N engine replicas.

The cluster layer scales the serving stack horizontally.  Each replica is an
independent :class:`~repro.serving.frontend.AsyncServingEngine` over its own
:class:`~repro.serving.backend.InferenceBackend` (own KV pool, prefix cache,
scheduler, virtual clock); :class:`~repro.serving.cluster.cluster.ServingCluster`
routes each submission to one of them under a pluggable
:class:`~repro.serving.cluster.router.RoutingPolicy`:

* ``"round_robin"`` — cycle over the healthy replicas (load-blind baseline);
* ``"least_kv"`` — join the least-loaded replica by its live gauges
  (in-flight requests, then KV occupancy);
* ``"prefix_affinity"`` — hash the prompt's leading token blocks (the
  :class:`~repro.kvcache.prefix_index.PrefixIndex` block scheme) so
  shared-prefix traffic sticks to one replica and hits its prefix cache.

A replica whose drive loop dies is quarantined and its in-flight requests
are resubmitted to survivors with already-delivered tokens deduplicated —
consumer streams stay byte-identical.  :class:`~repro.serving.cluster.metrics.ClusterMetrics`
merges per-replica :class:`~repro.serving.metrics.ServingMetrics` into
fleet-wide percentiles/SLO attainment, and the cluster renders a combined
Prometheus ``/metrics`` body (aggregates + per-replica labelled series)
served verbatim by :class:`~repro.serving.http.CompletionServer`.

:class:`~repro.serving.cluster.disagg.DisaggregatedCluster` goes one step
further and **disaggregates** the fleet into a prefill pool and a decode
pool: requests prefill on one tier, their KV pages migrate (with a modeled
transfer delay from :class:`~repro.gpu.cost_model.TransferCostModel`) to the
other, and long prefill bursts stop stalling interactive decodes.
:class:`~repro.serving.cluster.metrics.DisaggMetrics` adds the tier-split
views and ``/metrics`` grows ``tier``-labelled series.

See ``docs/cluster.md`` for the architecture, ``docs/disaggregation.md`` for
the tiered variant, and ``benchmarks/bench_cluster_routing.py`` /
``benchmarks/bench_disaggregation.py`` for the sweeps.
"""

from repro.serving.cluster.cluster import ClusterRequestHandle, Replica, ServingCluster
from repro.serving.cluster.disagg import DisaggregatedCluster
from repro.serving.cluster.metrics import (
    ClusterMetrics,
    DisaggMetrics,
    merge_live_gauges,
    render_cluster_prometheus,
)
from repro.serving.cluster.router import (
    ROUTING_POLICIES,
    LeastKVPolicy,
    PrefixAffinityPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    make_routing_policy,
)

__all__ = [
    "ServingCluster",
    "DisaggregatedCluster",
    "ClusterRequestHandle",
    "Replica",
    "ClusterMetrics",
    "DisaggMetrics",
    "merge_live_gauges",
    "render_cluster_prometheus",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastKVPolicy",
    "PrefixAffinityPolicy",
    "ROUTING_POLICIES",
    "make_routing_policy",
]
