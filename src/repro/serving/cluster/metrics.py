"""Fleet-wide metrics: merge per-replica records and gauges into one view.

:class:`ClusterMetrics` holds one :class:`~repro.serving.metrics.ServingMetrics`
per replica and exposes the fleet aggregates (TTFT/TPOT percentiles, SLO
attainment, throughput) over the *union* of their records — a single-replica
cluster therefore reports exactly what the plain engine would, and replicas
that completed nothing contribute nothing (summaries degrade to NaN/0 the
same way an empty ``ServingMetrics`` does, never crash).

:func:`merge_live_gauges` folds per-replica
:class:`~repro.serving.metrics.LiveGauges` snapshots into one fleet gauge set
(counts and capacities sum; the clock is the furthest replica clock), and
:func:`render_cluster_prometheus` renders the combined ``/metrics`` body:
``repro_cluster_*`` aggregates plus per-replica ``repro_serving_*`` series
labelled ``{replica="..."}``.

All times are per-replica virtual-clock seconds.  Every replica's clock
starts at zero, so *durations* (TTFT, TPOT, queueing delay) are directly
comparable across replicas; fleet makespan/throughput treat the replica
clocks as one shared timeline, which is exact for trace replays (arrivals
are stamped from one trace) and approximate otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.metrics import LiveGauges, ServingMetrics, render_gauge_value

__all__ = [
    "ClusterMetrics",
    "DisaggMetrics",
    "merge_live_gauges",
    "render_cluster_prometheus",
]


@dataclass
class ClusterMetrics:
    """Per-replica :class:`ServingMetrics` plus fleet-wide aggregates.

    ``per_replica`` maps replica id to that replica's metrics (live
    references — records added later show up here).  The fleet aggregates
    are computed over the concatenation of every replica's records; all of
    them accept the same optional ``priority`` class filter the underlying
    :class:`ServingMetrics` aggregates do.
    """

    per_replica: dict[str, ServingMetrics] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(m) for m in self.per_replica.values())

    def replica_ids(self) -> list[str]:
        """Replica ids in registration order."""
        return list(self.per_replica)

    def fleet(self) -> ServingMetrics:
        """All replicas' records merged into one :class:`ServingMetrics`.

        The merged object is a snapshot (its record list is a copy); use it
        for any aggregate not re-exported below.
        """
        merged = ServingMetrics()
        for metrics in self.per_replica.values():
            for record in metrics.records:
                merged.add(record)
        return merged

    # -- fleet aggregates (delegating to the merged view) ------------------------
    def mean_ttft_s(self, priority: int | None = None) -> float:
        """Fleet mean time to first token, seconds (NaN with no records)."""
        return self.fleet().mean_ttft_s(priority)

    def percentile_ttft_s(self, percentile: float, priority: int | None = None) -> float:
        """Fleet TTFT percentile, seconds (NaN with no records)."""
        return self.fleet().percentile_ttft_s(percentile, priority)

    def mean_time_per_output_token_s(self, priority: int | None = None) -> float:
        """Fleet mean per-output-token decode latency, seconds."""
        return self.fleet().mean_time_per_output_token_s(priority)

    def percentile_tpot_s(self, percentile: float, priority: int | None = None) -> float:
        """Fleet per-output-token latency percentile, seconds."""
        return self.fleet().percentile_tpot_s(percentile, priority)

    def mean_queueing_delay_s(self, priority: int | None = None) -> float:
        """Fleet mean queueing delay, seconds (NaN with no records)."""
        return self.fleet().mean_queueing_delay_s(priority)

    def slo_attainment(
        self,
        ttft_slo_s: float,
        tpot_slo_s: float | None = None,
        priority: int | None = None,
    ) -> float:
        """Fraction of fleet requests meeting the SLO (NaN with no records)."""
        return self.fleet().slo_attainment(ttft_slo_s, tpot_slo_s, priority)

    def total_preemptions(self, priority: int | None = None) -> int:
        """Total preemption events across the fleet's recorded requests."""
        return self.fleet().total_preemptions(priority)

    def total_generated_tokens(self) -> int:
        """Sum of generated tokens across every replica's records."""
        return self.fleet().total_generated_tokens()

    def generation_throughput_tokens_s(self) -> float:
        """Fleet generated tokens per virtual second (replica clocks as one timeline)."""
        return self.fleet().generation_throughput_tokens_s()

    def completed_per_replica(self) -> dict[str, int]:
        """Completed-request count per replica — the routing balance at a glance."""
        return {rid: len(m) for rid, m in self.per_replica.items()}


@dataclass
class DisaggMetrics(ClusterMetrics):
    """Cluster metrics for a disaggregated prefill/decode fleet.

    ``tier_of`` maps each replica id to its tier (``"prefill"`` /
    ``"decode"``).  A migrated request produces **two** records — a
    first-token record on its prefill replica and the authoritative
    end-to-end record on its decode replica (original arrival time,
    preserved first-token timestamp, full generated count, ``transfer_ms``)
    — so the fleet view deduplicates by request id, preferring the
    decode-tier record.  The per-tier views keep both: prefill-tier TTFT is
    the tier's admission+prefill latency, decode-tier TPOT its decode
    cadence.
    """

    tier_of: dict[str, str] = field(default_factory=dict)

    def fleet(self) -> ServingMetrics:
        """Fleet records deduplicated by request id (decode-tier record wins)."""
        chosen: dict[str, tuple[str, object]] = {}
        for rid, metrics in self.per_replica.items():
            tier = self.tier_of.get(rid, "decode")
            for record in metrics.records:
                prev = chosen.get(record.request_id)
                if prev is None or (prev[0] == "prefill" and tier == "decode"):
                    chosen[record.request_id] = (tier, record)
        merged = ServingMetrics()
        for _, record in chosen.values():
            merged.add(record)
        return merged

    def tier(self, tier: str) -> ServingMetrics:
        """All records completed on replicas of one tier, merged (no dedup)."""
        if tier not in set(self.tier_of.values()):
            raise ValueError(f"unknown tier {tier!r}; have {sorted(set(self.tier_of.values()))}")
        merged = ServingMetrics()
        for rid, metrics in self.per_replica.items():
            if self.tier_of.get(rid) == tier:
                for record in metrics.records:
                    merged.add(record)
        return merged

    def prefill_tier(self) -> ServingMetrics:
        """The prefill tier's records (first-token service per migrated request)."""
        return self.tier("prefill")

    def decode_tier(self) -> ServingMetrics:
        """The decode tier's records (authoritative end-to-end per request)."""
        return self.tier("decode")

    def total_migrated_pages(self) -> int:
        """Physical KV pages migrated between tiers, over the deduplicated fleet."""
        return self.fleet().total_migrated_pages()

    def mean_transfer_ms(self, priority: int | None = None) -> float:
        """Mean modeled hand-off latency over migrated requests, milliseconds."""
        return self.fleet().mean_transfer_ms(priority)


def merge_live_gauges(gauges: list[LiveGauges]) -> LiveGauges:
    """Fold per-replica gauge snapshots into one fleet-wide snapshot.

    Counts (queue depth, running, completed, ...) and KV capacities sum;
    ``clock_s`` is the furthest replica clock.  ``backend_kv_tokens`` sums
    the replicas that report one and stays ``-1`` when none do.  The
    ``speculation_k_*`` gauges fold over the replicas that track at least
    one speculating request (``speculation_k_max > 0``): fleet min is the
    min of replica mins, fleet max the max of replica maxes, and the fleet
    mean is the unweighted mean of replica means; all three stay 0 when no
    replica speculates.
    """
    if not gauges:
        raise ValueError("at least one replica gauge snapshot is required")
    reported = [g.backend_kv_tokens for g in gauges if g.backend_kv_tokens >= 0]
    speculating = [g for g in gauges if g.speculation_k_max > 0]
    return LiveGauges(
        clock_s=max(g.clock_s for g in gauges),
        queue_depth=sum(g.queue_depth for g in gauges),
        pending_arrivals=sum(g.pending_arrivals for g in gauges),
        running=sum(g.running for g in gauges),
        kv_tokens_in_use=sum(g.kv_tokens_in_use for g in gauges),
        kv_token_capacity=sum(g.kv_token_capacity for g in gauges),
        backend_kv_tokens=sum(reported) if reported else -1,
        completed=sum(g.completed for g in gauges),
        aborted=sum(g.aborted for g in gauges),
        preemptions=sum(g.preemptions for g in gauges),
        kv_tokens_demand=sum(g.kv_tokens_demand for g in gauges),
        kv_tokens_cold=sum(g.kv_tokens_cold for g in gauges),
        cold_pages=sum(g.cold_pages for g in gauges),
        demotions=sum(g.demotions for g in gauges),
        restores=sum(g.restores for g in gauges),
        draft_tokens_proposed=sum(g.draft_tokens_proposed for g in gauges),
        draft_tokens_accepted=sum(g.draft_tokens_accepted for g in gauges),
        spec_decode_steps=sum(g.spec_decode_steps for g in gauges),
        speculation_k_min=(
            min(g.speculation_k_min for g in speculating) if speculating else 0
        ),
        speculation_k_mean=(
            sum(g.speculation_k_mean for g in speculating) / len(speculating)
            if speculating
            else 0.0
        ),
        speculation_k_max=(
            max(g.speculation_k_max for g in speculating) if speculating else 0
        ),
    )


def render_cluster_prometheus(
    per_replica: dict[str, LiveGauges],
    healthy: dict[str, bool] | None = None,
    tiers: dict[str, str] | None = None,
) -> str:
    """Render the fleet's ``/metrics`` body in Prometheus text format.

    Groups, in order:

    * ``repro_cluster_*`` — the :func:`merge_live_gauges` aggregates, plus
      ``repro_cluster_replicas`` / ``repro_cluster_healthy_replicas`` when
      ``healthy`` is given;
    * ``repro_tier_*{tier="<tier>"}`` — when ``tiers`` maps replica ids to
      tier names (disaggregated clusters), the same merged gauges per tier;
    * ``repro_serving_*{replica="<id>"}`` — every per-replica gauge as a
      labelled series (one ``# TYPE`` line per metric, one sample per
      replica, as the exposition format expects); with ``tiers`` each sample
      additionally carries its ``tier="<tier>"`` label;
    * ``repro_serving_healthy{replica="<id>"}`` — 1/0 per replica, when
      ``healthy`` is given.
    """
    if not per_replica:
        raise ValueError("at least one replica gauge snapshot is required")
    lines = [merge_live_gauges(list(per_replica.values())).to_prometheus(
        prefix="repro_cluster"
    ).rstrip("\n")]
    if healthy is not None:
        lines.append("# TYPE repro_cluster_replicas gauge")
        lines.append(f"repro_cluster_replicas {len(healthy)}")
        lines.append("# TYPE repro_cluster_healthy_replicas gauge")
        lines.append(f"repro_cluster_healthy_replicas {sum(healthy.values())}")
    field_names = list(next(iter(per_replica.values())).to_dict())
    if tiers is not None:
        groups: dict[str, list[LiveGauges]] = {}
        for replica_id, gauges in per_replica.items():
            groups.setdefault(tiers.get(replica_id, "colocated"), []).append(gauges)
        merged_by_tier = {t: merge_live_gauges(gs).to_dict() for t, gs in groups.items()}
        for name in field_names:
            metric = f"repro_tier_{name}"
            lines.append(f"# TYPE {metric} gauge")
            for tier_name, values in merged_by_tier.items():
                lines.append(
                    f'{metric}{{tier="{tier_name}"}} {render_gauge_value(values[name])}'
                )
    for name in field_names:
        metric = f"repro_serving_{name}"
        lines.append(f"# TYPE {metric} gauge")
        for replica_id, gauges in per_replica.items():
            value = render_gauge_value(gauges.to_dict()[name])
            if tiers is not None:
                tier_name = tiers.get(replica_id, "colocated")
                lines.append(
                    f'{metric}{{replica="{replica_id}",tier="{tier_name}"}} {value}'
                )
            else:
                lines.append(f'{metric}{{replica="{replica_id}"}} {value}')
    if healthy is not None:
        lines.append("# TYPE repro_serving_healthy gauge")
        for replica_id, ok in healthy.items():
            lines.append(f'repro_serving_healthy{{replica="{replica_id}"}} {int(ok)}')
    return "\n".join(lines) + "\n"
