"""The serving cluster: a KV/prefix-aware router over N engine replicas.

:class:`ServingCluster` scales the single-engine front end horizontally:
each replica is an independent :class:`~repro.serving.frontend.AsyncServingEngine`
over its **own** :class:`~repro.serving.backend.InferenceBackend` (its own KV
pool, prefix cache, scheduler, and virtual clock), and a pluggable
:class:`~repro.serving.cluster.router.RoutingPolicy` decides which replica
serves each submission.  The cluster adds *placement and containment*, not
execution semantics — a request, once routed, is served exactly as the
single-engine front end would serve it, so per-request outputs remain
byte-identical to a one-replica run of the same request.

Failure containment: a replica whose drive loop dies (backend bug,
unservable pool) is **quarantined** — removed from routing, its failure
recorded — and every request that was in flight on it is **resubmitted** to
a surviving replica.  Backends are deterministic (seeded sampling), so the
replacement regenerates the same token sequence; the cluster skips the
tokens it already delivered and streams the rest, keeping the consumer's
stream byte-identical to an undisturbed run.  Consumers never observe the
failure beyond added latency.

Typical use::

    backends = [SimulatedBackend(latency) for _ in range(4)]
    async with ServingCluster(backends, routing="least_kv") as cluster:
        handle = cluster.submit(request)
        async for token in handle.stream():
            ...
    # or, for a workload trace in virtual time:
    handles = await cluster.replay(requests)
    metrics = await cluster.drain()          # ClusterMetrics

See ``docs/cluster.md`` for the architecture diagram, the routing-policy
decision table, and the failure lifecycle.
"""

from __future__ import annotations

import asyncio

from repro.serving.backend import InferenceBackend
from repro.serving.cluster.metrics import (
    ClusterMetrics,
    merge_live_gauges,
    render_cluster_prometheus,
)
from repro.serving.cluster.router import RoutingPolicy, make_routing_policy
from repro.serving.frontend import AsyncRequestHandle, AsyncServingEngine, RequestAborted
from repro.serving.metrics import LiveGauges
from repro.serving.request import Request
from repro.serving.sampling import SamplingParams
from repro.serving.scheduler import SchedulerConfig

__all__ = ["Replica", "ClusterRequestHandle", "ServingCluster"]

#: Stream sentinel: pushed into a handle's queue when no more tokens will come.
_DONE = object()


class Replica:
    """One engine replica inside a :class:`ServingCluster`.

    Routing policies receive these: ``replica_id`` identifies the replica,
    ``live_gauges()`` snapshots its load.  ``healthy`` flips to ``False``
    when the replica is quarantined; ``failure`` then records why.  ``role``
    names the replica's serving tier — ``"colocated"`` (the default: prefill
    and decode on the same replica) or ``"prefill"`` / ``"decode"`` in a
    disaggregated deployment.
    """

    def __init__(
        self, replica_id: str, engine: AsyncServingEngine, role: str = "colocated"
    ) -> None:
        self.replica_id = replica_id
        self.engine = engine
        self.role = role
        self.healthy = True
        self.failure: BaseException | None = None

    def live_gauges(self) -> LiveGauges:
        """The replica engine's instantaneous queue/batch/KV gauges."""
        return self.engine.live_gauges()


class ClusterRequestHandle:
    """Async view of one cluster request: stream, await, or cancel it.

    Mirrors :class:`~repro.serving.frontend.AsyncRequestHandle` — same
    ``stream()`` / ``result()`` / ``cancel()`` contract, one consumer per
    handle — but survives replica failure: when the serving replica dies the
    handle is transparently re-pumped from the replacement replica's stream,
    with already-delivered tokens deduplicated, so the consumer-visible
    token sequence is unaffected.  ``resubmissions`` counts the migrations.
    """

    def __init__(self, request: Request, cluster: "ServingCluster") -> None:
        self._request = request
        self._cluster = cluster
        self._queue: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()
        self._tokens: list[int] = []
        self._cancel_requested = False
        self._cancelled = False
        self._replica: Replica | None = None
        self._rep_handle: AsyncRequestHandle | None = None
        #: Times this request was migrated to a new replica after a failure.
        self.resubmissions = 0

    @property
    def request_id(self) -> str:
        """The request's unique id."""
        return self._request.request_id

    @property
    def request(self) -> Request:
        """The immutable request this handle tracks."""
        return self._request

    @property
    def replica_id(self) -> str | None:
        """Id of the replica currently (or last) serving this request."""
        return self._replica.replica_id if self._replica is not None else None

    @property
    def output_tokens(self) -> list[int]:
        """Tokens delivered so far (a snapshot copy)."""
        return list(self._tokens)

    @property
    def finished(self) -> bool:
        """Whether the request is terminal (completed or cancelled)."""
        return self._done.is_set()

    @property
    def cancelled(self) -> bool:
        """Whether the request ended without completing (cancel or total failure)."""
        return self._cancelled

    async def stream(self):
        """Async-iterate tokens as the fleet emits them (first yield == TTFT).

        Replica failures are invisible here beyond latency: the iterator
        continues from the replacement replica without repeating or dropping
        a token.  Ends after the last token, or early (without error) when
        the request is cancelled or no healthy replica remains.
        """
        while True:
            token = await self._queue.get()
            if token is _DONE:
                return
            yield token

    async def result(self) -> list[int]:
        """Await completion and return the full output token list.

        Raises :class:`~repro.serving.frontend.RequestAborted` (carrying the
        partial tokens) when the request was cancelled or every replica that
        could serve it failed.
        """
        await self._done.wait()
        if self._cancelled:
            raise RequestAborted(self.request_id, self.output_tokens)
        return self.output_tokens

    def cancel(self) -> bool:
        """Abort the request (idempotent); returns ``True`` if it was live.

        The serving replica releases the request's KV through the same path
        preemption uses; a cancellation that races a replica failure wins —
        the request is not resubmitted.
        """
        if self.finished:
            return False
        self._cancel_requested = True
        if self._rep_handle is not None and not self._rep_handle.finished:
            self._rep_handle.cancel()
        return True

    # -- cluster-side delivery ---------------------------------------------------
    def _push(self, token: int) -> None:
        self._tokens.append(token)
        self._queue.put_nowait(token)

    def _finish(self, cancelled: bool) -> None:
        if not self._done.is_set():
            self._cancelled = cancelled
            self._queue.put_nowait(_DONE)
            self._done.set()


class ServingCluster:
    """Route requests across N independent engine replicas (see module docstring).

    ``backends`` supplies one :class:`InferenceBackend` **per replica** —
    replicas never share KV state; build each backend separately.
    ``routing`` is a registry name (``"round_robin"`` / ``"least_kv"`` /
    ``"prefix_affinity"``) or a :class:`RoutingPolicy` instance.
    ``scheduler_config`` and ``default_sampling`` apply to every replica.
    ``draft_sources`` optionally attaches one
    :class:`~repro.serving.speculative.DraftSource` **per replica** (draft
    sources may hold per-request state, so replicas must not share one);
    requests opting in via ``SamplingParams.speculation_k`` then decode
    speculatively, and — because verification is byte-exact and draft
    sources are deterministic — a resubmission after replica failure
    replays identically on the surviving replica.

    Use as an async context manager (``async with ServingCluster(...)``), or
    call :meth:`start` / :meth:`shutdown` yourself.  Like the single-engine
    front end, everything runs on one event loop; a cluster is a set of
    cooperating tasks, not threads.
    """

    def __init__(
        self,
        backends: list[InferenceBackend],
        scheduler_config: SchedulerConfig | None = None,
        routing: str | RoutingPolicy = "round_robin",
        default_sampling: SamplingParams | None = None,
        replica_ids: list[str] | None = None,
        replica_roles: list[str] | None = None,
        draft_sources: list[object | None] | None = None,
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ValueError("a cluster needs at least one backend replica")
        if draft_sources is None:
            draft_sources = [None] * len(backends)
        draft_sources = list(draft_sources)
        if len(draft_sources) != len(backends):
            raise ValueError(
                f"{len(draft_sources)} draft_sources for {len(backends)} backends"
            )
        if replica_ids is None:
            replica_ids = [f"replica-{i}" for i in range(len(backends))]
        if len(replica_ids) != len(backends):
            raise ValueError(
                f"{len(replica_ids)} replica_ids for {len(backends)} backends"
            )
        if len(set(replica_ids)) != len(replica_ids):
            raise ValueError("replica_ids must be unique")
        if replica_roles is None:
            replica_roles = ["colocated"] * len(backends)
        if len(replica_roles) != len(backends):
            raise ValueError(
                f"{len(replica_roles)} replica_roles for {len(backends)} backends"
            )
        if len({id(b) for b in backends}) != len(backends):
            raise ValueError(
                "replicas must not share a backend instance; each replica owns "
                "its KV pool — construct one backend per replica"
            )
        self.routing = (
            routing if isinstance(routing, RoutingPolicy) else make_routing_policy(routing)
        )
        self._replicas = [
            Replica(
                rid,
                AsyncServingEngine(
                    backend, scheduler_config, default_sampling, draft_source=draft
                ),
                role=role,
            )
            for rid, backend, role, draft in zip(
                replica_ids, backends, replica_roles, draft_sources
            )
        ]
        self._handles: dict[str, ClusterRequestHandle] = {}
        self._pumps: set[asyncio.Task] = set()
        self._draining = False
        #: Total request migrations performed after replica failures.
        self.total_resubmissions = 0

    @classmethod
    def build(
        cls,
        backend_factory,
        n_replicas: int,
        scheduler_config: SchedulerConfig | None = None,
        routing: str | RoutingPolicy = "round_robin",
        default_sampling: SamplingParams | None = None,
        draft_source_factory=None,
    ) -> "ServingCluster":
        """Construct a cluster of ``n_replicas`` backends from a factory.

        ``backend_factory()`` is called once per replica so every replica
        gets its own KV state; ``draft_source_factory()`` (optional) is
        likewise called once per replica so stateful draft sources are
        never shared.
        """
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        return cls(
            [backend_factory() for _ in range(n_replicas)],
            scheduler_config,
            routing,
            default_sampling,
            draft_sources=(
                None
                if draft_source_factory is None
                else [draft_source_factory() for _ in range(n_replicas)]
            ),
        )

    # -- topology ----------------------------------------------------------------
    @property
    def replicas(self) -> list[Replica]:
        """Every replica (healthy and quarantined), in creation order."""
        return list(self._replicas)

    @property
    def healthy_replicas(self) -> list[Replica]:
        """Replicas currently eligible for routing."""
        return [r for r in self._replicas if r.healthy]

    @property
    def num_replicas(self) -> int:
        """Total replica count (healthy and quarantined)."""
        return len(self._replicas)

    def replica_health(self) -> dict[str, bool]:
        """Health flag per replica id (``False`` = quarantined)."""
        return {r.replica_id: r.healthy for r in self._replicas}

    def pools(self) -> dict[str, list[str]]:
        """Replica ids grouped by serving role (tier), in creation order.

        A homogeneous cluster reports one ``"colocated"`` pool; role-aware
        constructions (and :class:`~repro.serving.cluster.disagg.DisaggregatedCluster`)
        report their ``"prefill"`` / ``"decode"`` pools.  Surfaced by the
        HTTP front end's ``GET /healthz``.
        """
        pools: dict[str, list[str]] = {}
        for replica in self._replicas:
            pools.setdefault(replica.role, []).append(replica.replica_id)
        return pools

    @property
    def failures(self) -> dict[str, BaseException]:
        """The exception that killed each quarantined replica, by id."""
        return {
            r.replica_id: r.failure
            for r in self._replicas
            if not r.healthy and r.failure is not None
        }

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Start every healthy replica's drive loop (idempotent; needs a loop)."""
        if self._draining:
            raise RuntimeError("cluster is draining or shut down; create a new one")
        for replica in self._replicas:
            if replica.healthy:
                replica.engine.start()

    async def __aenter__(self) -> "ServingCluster":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    async def drain(self) -> ClusterMetrics:
        """Serve everything in flight to completion, refusing new submissions.

        In-flight requests finish first (replica failures during the drain
        still resubmit — replicas are only wound down once nothing is in
        flight anywhere), then every healthy replica's drive loop is
        stopped.  Returns the fleet's :class:`ClusterMetrics`.
        """
        self._draining = True
        await self._await_pumps()
        for replica in self._replicas:
            if replica.healthy:
                await replica.engine.drain()
        return self.metrics

    async def shutdown(self) -> None:
        """Abort everything still in flight and stop every replica."""
        self._draining = True
        for handle in list(self._handles.values()):
            handle.cancel()
        await self._await_pumps()
        for replica in self._replicas:
            if replica.healthy:
                await replica.engine.shutdown()

    async def _await_pumps(self) -> None:
        # Resubmission spawns new pumps, so drain the set to a fixed point.
        while self._pumps:
            await asyncio.gather(*list(self._pumps))

    # -- submission --------------------------------------------------------------
    def submit(self, request: Request, *, arrive_now: bool = False) -> ClusterRequestHandle:
        """Route a request to a replica and return its cluster-level handle.

        ``arrive_now`` has the replica stamp the request's arrival with its
        current virtual clock (live-traffic semantics, what the HTTP front
        end uses); leave it off when replaying a trace whose arrival times
        are the experiment.  Raises ``RuntimeError`` when the cluster is
        draining or no healthy replica remains, ``ValueError`` for a
        duplicate in-flight request id.
        """
        if self._draining:
            raise RuntimeError("cluster is draining or shut down; submission refused")
        if request.request_id in self._handles:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        replica = self._route(request)
        self.start()
        handle = ClusterRequestHandle(request, self)
        self._handles[request.request_id] = handle
        self._dispatch(handle, replica, arrive_now=arrive_now)
        return handle

    async def replay(self, requests: list[Request]) -> list[ClusterRequestHandle]:
        """Submit a workload trace in virtual-time order across the fleet.

        Requests are routed in arrival order, and each submission waits until
        every busy replica's virtual clock has reached the request's
        ``arrival_time_s`` — so routing decisions see the gauges each replica
        would actually show at that arrival (a replica that is already past
        the arrival time admits the request immediately and the wait counts
        as queueing delay, exactly like a late arrival on one engine).
        Returns the handles in submission order; callers typically
        ``await cluster.drain()`` afterwards.
        """
        self.start()
        handles = []
        for request in sorted(requests, key=lambda r: r.arrival_time_s):
            await self._advance_clocks_to(request.arrival_time_s)
            handles.append(self.submit(request))
        return handles

    async def _advance_clocks_to(self, arrival_time_s: float) -> None:
        while any(
            r.healthy
            and r.engine.engine.has_work
            and r.engine.engine.clock_s < arrival_time_s
            for r in self._replicas
        ):
            await asyncio.sleep(0)

    def handle(self, request_id: str) -> ClusterRequestHandle:
        """Look up the handle of an *in-flight* request (pruned when terminal)."""
        return self._handles[request_id]

    def abort(self, request_id: str) -> bool:
        """Abort an in-flight request by id; ``False`` if it is not in flight."""
        handle = self._handles.get(request_id)
        if handle is None:
            return False
        return handle.cancel()

    # -- routing + containment ---------------------------------------------------
    def _route(self, request: Request) -> Replica:
        candidates = self.healthy_replicas
        if not candidates:
            raise RuntimeError(
                "no healthy replicas remain; "
                f"quarantined: {sorted(self.failures)}"
            )
        return self.routing.choose(request, candidates)

    def _dispatch(
        self, handle: ClusterRequestHandle, replica: Replica, *, arrive_now: bool
    ) -> None:
        try:
            rep_handle = replica.engine.submit(handle.request, arrive_now=arrive_now)
        except RuntimeError as exc:
            # The replica died (or began failing) between routing and submit.
            self._quarantine(replica, exc)
            self._resubmit(handle)
            return
        handle._replica = replica
        handle._rep_handle = rep_handle
        task = asyncio.get_running_loop().create_task(
            self._pump(handle, replica, rep_handle),
            name=f"cluster-pump-{handle.request_id}",
        )
        self._pumps.add(task)
        task.add_done_callback(self._pumps.discard)

    async def _pump(
        self,
        handle: ClusterRequestHandle,
        replica: Replica,
        rep_handle: AsyncRequestHandle,
    ) -> None:
        """Forward one replica stream into the cluster handle, then settle it.

        After a resubmission the replacement replica regenerates from
        scratch; the first ``len(handle._tokens)`` tokens are the replay of
        what the consumer already received (deterministic backends) and are
        skipped, keeping the delivered stream byte-identical.
        """
        skip = len(handle._tokens)
        async for token in rep_handle.stream():
            if skip:
                skip -= 1
                continue
            handle._push(token)
        # Only "finished and not cancelled" is a successful completion.  A
        # stream that ended with the request in any other state (cancelled,
        # or stuck non-terminal because the dying replica's cleanup itself
        # raised) must never be retired as success — that would hand the
        # consumer a silently truncated output.
        if rep_handle.finished and not rep_handle.cancelled:
            self._retire(handle, cancelled=False)
        elif handle._cancel_requested:
            self._retire(handle, cancelled=True)
        elif replica.engine.failure is not None:
            self._quarantine(replica, replica.engine.failure)
            self._resubmit(handle)
        else:
            # Aborted directly on the replica engine (not via the cluster).
            self._retire(handle, cancelled=True)

    def _retire(self, handle: ClusterRequestHandle, *, cancelled: bool) -> None:
        handle._finish(cancelled)
        self._handles.pop(handle.request_id, None)

    def _quarantine(self, replica: Replica, failure: BaseException) -> None:
        if not replica.healthy:
            return
        replica.healthy = False
        replica.failure = failure

    def _resubmit(self, handle: ClusterRequestHandle) -> None:
        """Migrate a failed replica's request to a surviving replica.

        The request arrives "now" on the replacement (its latency accounting
        restarts there — replica clocks are independent).  With no survivors,
        or when a cancellation raced the failure, the handle ends cancelled.
        """
        if handle._cancel_requested:
            self._retire(handle, cancelled=True)
            return
        try:
            replica = self._route(handle.request)
        except RuntimeError:
            self._retire(handle, cancelled=True)
            return
        handle.resubmissions += 1
        self.total_resubmissions += 1
        self._dispatch(handle, replica, arrive_now=True)

    # -- observability -----------------------------------------------------------
    @property
    def metrics(self) -> ClusterMetrics:
        """Per-replica + fleet-wide completed-request metrics.

        Quarantined replicas' completed records are included — requests they
        finished before dying completed normally.
        """
        return ClusterMetrics(
            per_replica={r.replica_id: r.engine.metrics for r in self._replicas}
        )

    @property
    def default_sampling(self) -> SamplingParams:
        """The fleet-wide sampling default (same on every replica)."""
        return self._replicas[0].engine.default_sampling

    def live_gauges(self) -> LiveGauges:
        """Fleet-wide gauge snapshot (per-replica gauges merged by summation)."""
        return merge_live_gauges([r.live_gauges() for r in self._replicas])

    def per_replica_gauges(self) -> dict[str, LiveGauges]:
        """Gauge snapshot per replica id, in creation order."""
        return {r.replica_id: r.live_gauges() for r in self._replicas}

    def prometheus_metrics(self) -> str:
        """The combined ``/metrics`` body: fleet aggregates + labelled replicas."""
        return render_cluster_prometheus(
            self.per_replica_gauges(), healthy=self.replica_health()
        )
