"""Dependency-free HTTP front end: OpenAI-style completions over asyncio streams.

:class:`CompletionServer` exposes an :class:`~repro.serving.frontend.AsyncServingEngine`
over plain HTTP/1.1 built on ``asyncio.start_server`` — no web framework, no
third-party packages.  Endpoints:

* ``POST /v1/completions`` — OpenAI-style completion.  JSON body fields:
  ``prompt`` (a list of token ids, or a string when the server was built with
  a tokenizer), ``max_tokens``, ``stream`` (Server-Sent Events when true),
  ``temperature``, ``top_k``, ``seed``, ``stop`` (stop token ids), and
  ``priority`` (scheduling class).  Non-streaming responses return the full
  completion; streaming responses deliver one SSE ``data:`` event per token
  (TTFT is observable at the first event) and end with ``data: [DONE]``.
* ``GET /healthz`` — liveness probe with in-flight/clock gauges (JSON).
* ``GET /metrics`` — the engine's :class:`~repro.serving.metrics.LiveGauges`
  in the Prometheus text exposition format.

The server speaks to anything with the async-engine surface —
``start()`` / ``submit(request, arrive_now=True)`` / ``live_gauges()`` /
``prometheus_metrics()`` / ``default_sampling`` — which today means a single
:class:`AsyncServingEngine` or a whole
:class:`~repro.serving.cluster.ServingCluster`.  Serving a cluster adds
per-replica labelled series to ``/metrics`` and a ``replicas`` health map to
``/healthz``; completions are routed by the cluster's policy, invisibly to
the client.

Every connection serves one request and closes (``Connection: close``) —
open-loop load generators should open one connection per request, which is
what :mod:`repro.serving.client` does.  A client that disconnects mid-stream
**aborts** its request: the engine releases the request's KV through the
cancellation path, so abandoned streams cannot leak pool pages.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.serving.frontend import AsyncRequestHandle, AsyncServingEngine
from repro.serving.request import Request
from repro.serving.sampling import SamplingParams

__all__ = ["CompletionServer"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


def _is_token_id(value) -> bool:
    """A JSON integer and not a boolean (``True`` is an ``int`` subclass)."""
    return isinstance(value, int) and not isinstance(value, bool)


class _BadRequest(Exception):
    """Maps to a 400 response; the message is returned to the client."""


class CompletionServer:
    """Serve an :class:`AsyncServingEngine` or a cluster over HTTP (see module docstring).

    ``port=0`` binds an ephemeral port; read :attr:`port` after :meth:`start`.
    ``tokenizer`` (optional, e.g. :class:`~repro.model.tokenizer.ToyTokenizer`)
    enables string prompts and attaches decoded ``text`` to responses; without
    one, prompts must be token-id lists and responses carry ids only.

    Use as an async context manager, or call :meth:`start` / :meth:`close`.
    The server does not own the engine's lifecycle — shut the engine down
    separately (typically: close the server, then ``await engine.drain()``).
    """

    def __init__(
        self,
        engine: AsyncServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        tokenizer=None,
        model_name: str = "repro-lserve",
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.tokenizer = tokenizer
        self.model_name = model_name
        self._server: asyncio.AbstractServer | None = None
        self._request_counter = 0

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> "CompletionServer":
        """Bind and start accepting connections; resolves the ephemeral port."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self.engine.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop accepting connections (in-flight engine requests keep running)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "CompletionServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def address(self) -> str:
        """The server's ``host:port`` (valid after :meth:`start`)."""
        return f"{self.host}:{self.port}"

    # -- connection handling ------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            if path == "/healthz" and method == "GET":
                health = self._healthz()
                # Probes key on the status code: a fleet that cannot serve
                # (every replica quarantined) must fail the check, not 200.
                await self._respond_json(
                    writer, 200 if health["status"] == "ok" else 503, health
                )
            elif path == "/metrics" and method == "GET":
                await self._respond(
                    writer,
                    200,
                    "text/plain; version=0.0.4",
                    self.engine.prometheus_metrics().encode(),
                )
            elif path == "/v1/completions" and method == "POST":
                await self._completions(writer, body)
            elif path in ("/healthz", "/metrics", "/v1/completions"):
                await self._respond_error(writer, 405, f"method {method} not allowed")
            else:
                await self._respond_error(writer, 404, f"unknown path {path}")
        except _BadRequest as exc:
            await self._respond_error(writer, 400, str(exc))
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; completions handle their own abort
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request head + body; ``None`` on empty connection."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _BadRequest("malformed request line")
        method, path = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(f"invalid Content-Length {raw_length!r}") from None
        if length < 0:
            raise _BadRequest(f"invalid Content-Length {raw_length!r}")
        if length > _MAX_BODY_BYTES:
            raise _BadRequest(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    # -- endpoints ----------------------------------------------------------------
    def _healthz(self) -> dict:
        gauges = self.engine.live_gauges()
        body = {
            "status": "ok",
            "in_flight": gauges.in_flight,
            "running": gauges.running,
            "queue_depth": gauges.queue_depth,
            "kv_occupancy": gauges.kv_occupancy,
            "clock_s": gauges.clock_s,
        }
        # Cluster engines expose per-replica health; a fleet with quarantined
        # replicas still answers "ok" as long as it can serve.
        replica_health = getattr(self.engine, "replica_health", None)
        if replica_health is not None:
            replicas = replica_health()
            body["replicas"] = replicas
            if not any(replicas.values()):
                body["status"] = "unhealthy"
        # Disaggregated / role-aware clusters also report pool membership.
        pools = getattr(self.engine, "pools", None)
        if pools is not None:
            body["pools"] = pools()
        return body

    async def _completions(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        request, stream = self._parse_completion(body)
        try:
            handle = self.engine.submit(request, arrive_now=True)
        except RuntimeError as exc:  # draining / shut down
            await self._respond_error(writer, 503, str(exc))
            return
        except ValueError as exc:  # oversized request, duplicate id, ...
            await self._respond_error(writer, 400, str(exc))
            return
        if stream:
            await self._stream_completion(writer, handle)
        else:
            tokens = [t async for t in handle.stream()]
            await self._respond_json(
                writer, 200, self._completion_body(handle, tokens)
            )

    def _parse_completion(self, body: bytes):
        """Validate the JSON body into a ``Request``; raises ``_BadRequest``."""
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        prompt = payload.get("prompt")
        if isinstance(prompt, str):
            if self.tokenizer is None:
                raise _BadRequest(
                    "string prompts need a server-side tokenizer; "
                    "send a list of token ids instead"
                )
            token_ids = self.tokenizer.encode(prompt)
        elif isinstance(prompt, list) and prompt and all(
            _is_token_id(t) for t in prompt
        ):
            token_ids = prompt
        else:
            raise _BadRequest("'prompt' must be a non-empty list of token ids or a string")
        max_tokens = payload.get("max_tokens", 16)
        if not isinstance(max_tokens, int) or max_tokens < 1:
            raise _BadRequest("'max_tokens' must be a positive integer")
        sampling = None
        if any(k in payload for k in ("temperature", "top_k", "seed", "stop")):
            top_k = payload.get("top_k")
            if top_k is not None and not _is_token_id(top_k):
                raise _BadRequest("'top_k' must be an integer")
            stop = payload.get("stop") or ()
            if stop != () and (
                not isinstance(stop, list) or not all(_is_token_id(t) for t in stop)
            ):
                raise _BadRequest("'stop' must be a list of token ids")
            try:
                sampling = SamplingParams(
                    temperature=float(payload.get("temperature", 0.0)),
                    top_k=top_k,
                    seed=int(payload.get("seed", 0)),
                    stop_token_ids=tuple(stop),
                )
            except (TypeError, ValueError) as exc:
                raise _BadRequest(f"invalid sampling parameters: {exc}") from None
        self._request_counter += 1
        request_id = f"cmpl-{self._request_counter}"
        try:
            request = Request.from_prompt(
                request_id,
                token_ids,
                max_new_tokens=max_tokens,
                sampling=sampling,
                priority=int(payload.get("priority", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from None
        return request, bool(payload.get("stream", False))

    def _finish_reason(self, handle: AsyncRequestHandle, tokens: list[int]) -> str:
        """``"aborted"`` | ``"stop"`` | ``"length"`` for a delivered request.

        Stop tokens resolve the way the engine samples them: the request's
        own ``SamplingParams`` when set, the engine default otherwise.
        """
        params = handle.request.sampling or self.engine.default_sampling
        if handle.cancelled:
            return "aborted"
        if tokens and params.is_stop(tokens[-1]):
            return "stop"
        return "length"

    def _completion_body(self, handle: AsyncRequestHandle, tokens: list[int]) -> dict:
        choice = {
            "index": 0,
            "token_ids": tokens,
            "finish_reason": self._finish_reason(handle, tokens),
        }
        if self.tokenizer is not None:
            choice["text"] = self.tokenizer.decode(tokens)
        prompt_tokens = handle.request.prompt_tokens
        return {
            "id": handle.request_id,
            "object": "text_completion",
            "created": int(time.time()),
            "model": self.model_name,
            "choices": [choice],
            "usage": {
                "prompt_tokens": prompt_tokens,
                "completion_tokens": len(tokens),
                "total_tokens": prompt_tokens + len(tokens),
            },
        }

    async def _stream_completion(
        self, writer: asyncio.StreamWriter, handle: AsyncRequestHandle
    ) -> None:
        """Send one SSE event per token; abort the request if the client leaves."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            await writer.drain()
            tokens: list[int] = []
            async for token in handle.stream():
                tokens.append(token)
                event = {
                    "id": handle.request_id,
                    "object": "text_completion.chunk",
                    "model": self.model_name,
                    "choices": [{"index": 0, "token": token}],
                }
                if self.tokenizer is not None:
                    event["choices"][0]["text"] = self.tokenizer.decode([token])
                writer.write(f"data: {json.dumps(event)}\n\n".encode())
                await writer.drain()
            # A terminal event before [DONE] carries the finish reason, so a
            # client can tell a server-side abort from a completed generation
            # (the stream itself just ends early on cancellation).
            final = {
                "id": handle.request_id,
                "object": "text_completion.chunk",
                "model": self.model_name,
                "choices": [
                    {"index": 0, "finish_reason": self._finish_reason(handle, tokens)}
                ],
            }
            writer.write(f"data: {json.dumps(final)}\n\ndata: [DONE]\n\n".encode())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # The consumer is gone: withdraw the request so its KV frees now
            # instead of decoding tokens nobody will read.
            handle.cancel()

    # -- response plumbing --------------------------------------------------------
    _STATUS_TEXT = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        503: "Service Unavailable",
    }

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        reason = self._STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        await self._respond(
            writer, status, "application/json", json.dumps(payload).encode()
        )

    async def _respond_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._respond_json(
            writer, status, {"error": {"message": message, "code": status}}
        )
