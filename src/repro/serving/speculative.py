"""Draft sources for lossless speculative decoding.

Speculative decoding splits each decode step in two: a cheap **draft** phase
proposes up to ``k`` candidate tokens, and a **verify** phase runs them
through the real model as one amortized chunk
(:meth:`~repro.core.engine.LServeEngine.decode_speculative`), accepting the
longest prefix that matches what non-speculative sampling would have
produced.  Because verification uses the real logits and the request's own
seeded sampler, outputs are **byte-identical** to a non-speculative run at
any acceptance rate — a draft can only be slow, never wrong.

This module defines the :class:`DraftSource` protocol the serving engine
consumes (``ServingEngine(..., draft_source=...)`` plus a per-request
``SamplingParams.speculation_k``) and four implementations:

* :class:`NGramDraft` — prompt-lookup decoding: propose the continuation of
  the most recent matching n-gram in the request's own prompt + output
  history.  Zero model cost, so every accepted token is pure speedup; shines
  on extractive/repetitive workloads (long-document QA, agentic loops).
* :class:`CheapEngineDraft` — a second, cheap :class:`LServeEngine` sharing
  the target's weights but with **every** KV head streaming (constant-size
  sink+local stores, no paged pool), decoded greedily to propose tokens.
* :class:`ModeledDraft` — content-free companion for the cost-model
  :class:`~repro.serving.backend.SimulatedBackend`: acceptance is drawn from
  a seeded per-position hash at a configurable rate, so scheduler-level
  experiments can model speculation without logits.
* :class:`PrerecordedDraft` — replays a fixed per-request token script;
  the test/bench harness uses it to pin the acceptance rate exactly.

A draft source may keep per-request state; the engine calls
:meth:`DraftSource.release` when a request retires or aborts.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.config import LServeConfig
from repro.core.engine import LServeEngine
from repro.model.transformer import TinyTransformer

__all__ = [
    "AdaptiveKPolicy",
    "DraftSource",
    "NGramDraft",
    "CheapEngineDraft",
    "ModeledDraft",
    "PrerecordedDraft",
]

#: Token id content-free backends emit for every position (mirrors
#: :data:`repro.serving.engine.PLACEHOLDER_TOKEN` without importing the
#: serving engine — the engine imports this module's protocol for its docs).
_PLACEHOLDER_TOKEN = 0


@runtime_checkable
class DraftSource(Protocol):
    """What the serving engine needs from a draft proposer.

    Implementations must be deterministic for a given request history —
    the engine may re-propose for the same position after an OOM retry and
    relies on getting the same candidates back.
    """

    def propose(
        self,
        request_id: str,
        prompt_tokens: Sequence[int] | None,
        output_tokens: Sequence[int],
        k: int,
    ) -> list[int]:
        """Up to ``k`` candidate continuations of ``prompt + outputs``.

        Returning fewer than ``k`` tokens (or none) is allowed — the engine
        falls back to a plain decode step for this request when the list is
        empty.  Every returned id must be a valid vocabulary token.
        """
        ...

    def release(self, request_id: str) -> None:
        """Drop any per-request state (request retired or aborted)."""
        ...


class NGramDraft:
    """Prompt-lookup drafting: copy the continuation of a matching n-gram.

    For each proposal, find the longest suffix of the request's history
    (prompt + generated tokens) of length ``max_ngram`` down to ``min_ngram``
    that re-occurs earlier in the history, and propose the ``k`` tokens that
    followed its **most recent** earlier occurrence.  No model runs, so the
    draft phase is free; acceptance is high exactly when generation copies
    from context (extraction, code, agentic tool loops).
    """

    def __init__(self, max_ngram: int = 3, min_ngram: int = 1) -> None:
        if min_ngram < 1 or max_ngram < min_ngram:
            raise ValueError("need 1 <= min_ngram <= max_ngram")
        self.max_ngram = max_ngram
        self.min_ngram = min_ngram

    def propose(
        self,
        request_id: str,
        prompt_tokens: Sequence[int] | None,
        output_tokens: Sequence[int],
        k: int,
    ) -> list[int]:
        """Tokens following the most recent earlier occurrence of the suffix."""
        history = [int(t) for t in (prompt_tokens or ())]
        history.extend(int(t) for t in output_tokens)
        n_hist = len(history)
        for n in range(min(self.max_ngram, n_hist - 1), self.min_ngram - 1, -1):
            suffix = tuple(history[-n:])
            for start in range(n_hist - n - 1, -1, -1):
                if tuple(history[start : start + n]) == suffix:
                    follow = history[start + n : start + n + k]
                    if follow:
                        return follow
                    break
        return []

    def release(self, request_id: str) -> None:
        """Stateless — nothing to drop."""


class CheapEngineDraft:
    """Draft with a second engine whose KV heads are *all* streaming.

    The draft engine shares the target's :class:`TinyTransformer` weights but
    classifies every KV head as streaming, so its memory is a constant-size
    sink+local ring per layer — it allocates **zero** paged-pool pages no
    matter how long the request runs, and its attention degrades gracefully
    on long contexts (which only costs acceptance, never correctness).

    Per request, the draft engine maintains its own sequence: the first
    proposal prefills the prompt, later proposals feed the tokens the target
    accepted since, then ``k`` greedy steps run on a copy-on-write fork so
    rejected draft tokens never pollute the draft sequence either.
    """

    def __init__(self, model: TinyTransformer, config: LServeConfig) -> None:
        cfg = model.config
        # The draft never shares prefixes (each request has its own private
        # sequence) — with prefix caching off, the all-streaming cache keeps
        # no per-token history at all, so draft memory stays constant.
        draft_config = replace(config, prefix_cache_enabled=False)
        self.engine = LServeEngine(
            model,
            draft_config,
            streaming_kv_heads=np.ones(cfg.n_kv_heads, dtype=bool),
            num_cache_pages=1,
        )
        self._fed: dict[str, int] = {}

    def propose(
        self,
        request_id: str,
        prompt_tokens: Sequence[int] | None,
        output_tokens: Sequence[int],
        k: int,
    ) -> list[int]:
        """Greedy-decode ``k`` candidates on a fork of the draft sequence."""
        if prompt_tokens is None:
            raise ValueError("CheapEngineDraft needs real prompt token ids")
        if not output_tokens:
            return []
        outputs = [int(t) for t in output_tokens]
        if request_id not in self._fed:
            self.engine.prefill(request_id, np.asarray(prompt_tokens, dtype=np.int64))
            self._fed[request_id] = 0
        # Catch the draft sequence up with everything the target accepted,
        # holding back the newest token — it seeds the forked lookahead.
        for token in outputs[self._fed[request_id] : -1]:
            self.engine.decode(request_id, token)
        self._fed[request_id] = len(outputs) - 1
        scratch = (request_id, "__draft__")
        self.engine.fork_sequence(request_id, scratch)
        try:
            drafts: list[int] = []
            token = outputs[-1]
            for _ in range(k):
                logits = self.engine.decode(scratch, token)
                token = int(np.argmax(logits))
                drafts.append(token)
            return drafts
        finally:
            self.engine.release(scratch)

    def release(self, request_id: str) -> None:
        """Drop the request's draft sequence (idempotent)."""
        if self._fed.pop(request_id, None) is not None:
            self.engine.release(request_id)


class ModeledDraft:
    """Content-free draft for cost-model backends, with a pinned hit rate.

    ``SimulatedBackend`` emits the placeholder token for every position, so a
    draft "hits" by proposing the placeholder and "misses" by proposing
    anything else.  Each position's hit is drawn from a stateless seeded hash
    of ``(seed, request_id, history position)`` at probability
    ``acceptance`` — deterministic across retries and replicas, so cluster
    resubmission replays identically.
    """

    def __init__(self, acceptance: float = 0.8, seed: int = 0) -> None:
        if not 0.0 <= acceptance <= 1.0:
            raise ValueError("acceptance must be in [0, 1]")
        self.acceptance = acceptance
        self.seed = seed

    def propose(
        self,
        request_id: str,
        prompt_tokens: Sequence[int] | None,
        output_tokens: Sequence[int],
        k: int,
    ) -> list[int]:
        """``k`` placeholder/miss tokens drawn at the modeled acceptance rate."""
        base = len(output_tokens)
        drafts = []
        for j in range(k):
            digest = zlib.crc32(f"{self.seed}:{request_id}:{base + j}".encode())
            hit = (digest / 0xFFFFFFFF) < self.acceptance
            drafts.append(_PLACEHOLDER_TOKEN if hit else _PLACEHOLDER_TOKEN + 1)
        return drafts

    def release(self, request_id: str) -> None:
        """Stateless — nothing to drop."""


class AdaptiveKPolicy:
    """Deterministic per-request ``speculation_k`` control from acceptance gauges.

    Attach via ``ServingEngine(..., adaptive_k=AdaptiveKPolicy())``.  Each
    speculating request starts at its requested ``SamplingParams.speculation_k``
    (clamped into ``[k_min, k_max]``); after every speculative step the engine
    reports the step's ``(proposed, accepted)`` counts through
    :meth:`observe`, and the policy adjusts that request's effective ``k`` one
    step at a time: ``patience`` consecutive observations with rolling
    acceptance at or above ``raise_threshold`` raise ``k`` by one (drafting is
    paying off — speculate deeper), ``patience`` consecutive observations at
    or below ``lower_threshold`` lower it by one (wasted verification rows —
    back off).  The rolling rate pools the last ``window`` observations, so a
    single lucky chunk cannot whipsaw ``k``.

    The policy changes **scheduling only, never content**: verification still
    samples from the real logits with the request's own rng, so outputs are
    byte-identical to any fixed ``k`` (property-tested in
    ``tests/serving/test_adaptive_k.py``).  All state is per-request, updated
    only by :meth:`observe`, and free of randomness/clocks — the same gauge
    history always yields the same ``k`` trajectory, which keeps OOM-retry
    replays and cluster failover resubmission deterministic.
    """

    def __init__(
        self,
        k_min: int = 1,
        k_max: int = 8,
        window: int = 16,
        raise_threshold: float = 0.8,
        lower_threshold: float = 0.4,
        patience: int = 3,
    ) -> None:
        if k_min < 1:
            raise ValueError("k_min must be >= 1")
        if k_max < k_min:
            raise ValueError("need k_min <= k_max")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= lower_threshold <= raise_threshold <= 1.0:
            raise ValueError("need 0 <= lower_threshold <= raise_threshold <= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.k_min = k_min
        self.k_max = k_max
        self.window = window
        self.raise_threshold = raise_threshold
        self.lower_threshold = lower_threshold
        self.patience = patience
        # request_id -> (k, observation window, raise streak, lower streak)
        self._state: dict[str, tuple[int, list[tuple[int, int]], int, int]] = {}

    def _clamp(self, k: int) -> int:
        return max(self.k_min, min(self.k_max, int(k)))

    def effective_k(self, request_id: str, requested_k: int) -> int:
        """The ``k`` this request should draft with right now.

        ``requested_k`` (the request's ``SamplingParams.speculation_k``)
        seeds the trajectory on first sight, clamped into
        ``[k_min, k_max]``; afterwards the adapted value is returned
        regardless of the requested one.  ``requested_k <= 0`` means the
        request opted out — the policy returns it unchanged and records
        nothing.
        """
        if requested_k <= 0:
            return requested_k
        state = self._state.get(request_id)
        if state is None:
            state = (self._clamp(requested_k), [], 0, 0)
            self._state[request_id] = state
        return state[0]

    def observe(self, request_id: str, proposed: int, accepted: int) -> None:
        """Fold one speculative step's ``(proposed, accepted)`` into the gauges.

        Unknown requests (never asked via :meth:`effective_k`) are ignored;
        so are empty observations (``proposed <= 0``).
        """
        state = self._state.get(request_id)
        if state is None or proposed <= 0:
            return
        k, history, raise_streak, lower_streak = state
        history = (history + [(int(proposed), int(accepted))])[-self.window :]
        total_proposed = sum(p for p, _ in history)
        total_accepted = sum(a for _, a in history)
        rate = total_accepted / total_proposed
        if rate >= self.raise_threshold:
            raise_streak, lower_streak = raise_streak + 1, 0
        elif rate <= self.lower_threshold:
            raise_streak, lower_streak = 0, lower_streak + 1
        else:
            raise_streak = lower_streak = 0
        if raise_streak >= self.patience:
            k = self._clamp(k + 1)
            raise_streak = 0
        elif lower_streak >= self.patience:
            k = self._clamp(k - 1)
            lower_streak = 0
        self._state[request_id] = (k, history, raise_streak, lower_streak)

    def current_k(self, request_id: str) -> int | None:
        """The request's adapted ``k`` (``None`` when it was never tracked)."""
        state = self._state.get(request_id)
        return state[0] if state is not None else None

    def tracked_k_values(self) -> list[int]:
        """Adapted ``k`` of every tracked request (live-gauge support)."""
        return [state[0] for state in self._state.values()]

    def release(self, request_id: str) -> None:
        """Drop the request's trajectory (request retired or aborted)."""
        self._state.pop(request_id, None)


class PrerecordedDraft:
    """Replay fixed per-request draft scripts (test/bench acceptance control).

    ``scripts[request_id]`` is the full output-token stream to propose from:
    when the request has generated ``n`` tokens, the next proposals are
    ``scripts[request_id][n : n + k]``.  Seeding a script with the request's
    reference (non-speculative) output pins acceptance at 1.0; corrupting
    every ``i``-th entry lowers it predictably.  Unknown requests get no
    drafts (plain decode).
    """

    def __init__(self, scripts: dict[str, Sequence[int]]) -> None:
        self.scripts = {rid: [int(t) for t in s] for rid, s in scripts.items()}

    def propose(
        self,
        request_id: str,
        prompt_tokens: Sequence[int] | None,
        output_tokens: Sequence[int],
        k: int,
    ) -> list[int]:
        """The scripted tokens at the request's current output position."""
        script = self.scripts.get(request_id)
        if script is None:
            return []
        pos = len(output_tokens)
        return script[pos : pos + k]

    def release(self, request_id: str) -> None:
        """Stateless beyond the immutable scripts — nothing to drop."""
