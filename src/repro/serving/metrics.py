"""Serving metrics: TTFT, per-token latency, throughput, SLO attainment.

All times are virtual-clock **seconds** (modelled GPU time for the simulated
backend, measured or modelled time for the real one); all token counts are
**tokens**.  :class:`RequestRecord` is the per-request timing record emitted
when a request retires; :class:`ServingMetrics` aggregates them, including
per-priority-class percentiles and SLO attainment for the scheduling
benchmarks.  :class:`LiveGauges` is the complementary *instantaneous* view —
queue depth, in-flight batch, KV occupancy — snapshot by
:meth:`~repro.serving.engine.ServingEngine.live_gauges` and exported by the
HTTP front end's ``GET /metrics`` endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["RequestRecord", "ServingMetrics", "LiveGauges", "render_gauge_value"]


def render_gauge_value(value) -> str:
    """Exact Prometheus text rendering of one gauge sample.

    Integral values render as plain ints and everything else through
    ``repr`` — '%g'-style formatting keeps only 6 significant digits, which
    silently corrupts token-count gauges beyond ~1e6.
    """
    number = float(value)
    return str(int(number)) if number.is_integer() else repr(number)


@dataclass(frozen=True)
class LiveGauges:
    """Point-in-time snapshot of a live serving engine.

    Unlike :class:`ServingMetrics` (which aggregates *completed* requests),
    these gauges describe the system **right now**: how deep the queue is,
    how many requests are decoding, and how full the KV pool is.  All counts
    are requests or tokens; ``clock_s`` is the engine's virtual clock.

    * ``queue_depth`` — requests waiting for admission (including preempted
      requests awaiting re-admission).
    * ``pending_arrivals`` — submitted requests whose ``arrival_time_s`` is
      still in the future (trace replay).
    * ``running`` — requests currently admitted to the decode batch.
    * ``kv_tokens_in_use`` / ``kv_token_capacity`` — the scheduler's unique-KV
      accounting against the page pool, in tokens.
    * ``kv_tokens_demand`` — outstanding KV demand: tokens materialised plus
      the tokens every waiting/preempted/pending request will materialise on
      admission (prompt + generated-so-far).  A size-aware load signal —
      two replicas with the same queue *depth* can differ by orders of
      magnitude here; cluster routing's ``least_kv`` policy keys on it.
    * ``backend_kv_tokens`` — the backend's own count of materialised KV
      tokens (ground truth; ``-1`` when the backend does not report one).
    * ``completed`` / ``aborted`` / ``preemptions`` — lifetime counters.
    * ``kv_tokens_cold`` / ``cold_pages`` — KV currently parked in the cold
      tier (0 when tiering is off; the hot-tier occupancy is
      ``kv_tokens_in_use`` — the watermarks never count cold KV).
    * ``demotions`` / ``restores`` — lifetime cold-tier traffic counters.
    * ``draft_tokens_proposed`` / ``draft_tokens_accepted`` /
      ``spec_decode_steps`` — lifetime speculative-decoding counters (all 0
      when no draft source is attached); the derived
      ``draft_acceptance_rate`` and ``spec_effective_tokens_per_step``
      gauges ride along in :meth:`to_dict` and the Prometheus exposition.
    * ``speculation_k_min`` / ``speculation_k_mean`` / ``speculation_k_max``
      — the spread of *effective* per-request speculation depths across the
      requests currently drafting (all 0 when none are).  Fixed-``k`` runs
      show a flat spread; with an
      :class:`~repro.serving.speculative.AdaptiveKPolicy` attached these are
      the live view of the policy's trajectory, exported to Prometheus as
      the labelled ``speculation_k{stat=...}`` series.
    """

    clock_s: float
    queue_depth: int
    pending_arrivals: int
    running: int
    kv_tokens_in_use: int
    kv_token_capacity: int
    backend_kv_tokens: int
    completed: int
    aborted: int
    preemptions: int
    kv_tokens_demand: int = 0
    kv_tokens_cold: int = 0
    cold_pages: int = 0
    demotions: int = 0
    restores: int = 0
    draft_tokens_proposed: int = 0
    draft_tokens_accepted: int = 0
    spec_decode_steps: int = 0
    speculation_k_min: int = 0
    speculation_k_mean: float = 0.0
    speculation_k_max: int = 0

    @property
    def kv_occupancy(self) -> float:
        """Fraction of the KV token pool in use (0.0–1.0)."""
        if self.kv_token_capacity <= 0:
            return 0.0
        return self.kv_tokens_in_use / self.kv_token_capacity

    @property
    def draft_acceptance_rate(self) -> float:
        """Lifetime fraction of proposed draft tokens accepted (0.0 when none).

        Zero rather than NaN so the Prometheus series always carries a
        plottable sample, speculation active or not.
        """
        if self.draft_tokens_proposed <= 0:
            return 0.0
        return self.draft_tokens_accepted / self.draft_tokens_proposed

    @property
    def spec_effective_tokens_per_step(self) -> float:
        """Mean tokens emitted per speculative decode step (0.0 when none).

        Every speculative step emits one verified token plus its accepted
        drafts, so this is
        ``(spec_decode_steps + draft_tokens_accepted) / spec_decode_steps``
        — the decode-iteration compression speculation bought.
        """
        if self.spec_decode_steps <= 0:
            return 0.0
        return (self.spec_decode_steps + self.draft_tokens_accepted) / self.spec_decode_steps

    @property
    def in_flight(self) -> int:
        """Requests the engine is responsible for and has not finished.

        Counts queued (``queue_depth``) **and** not-yet-arrived trace
        submissions (``pending_arrivals``) **and** the running batch — i.e.
        everything submitted that will still produce tokens.
        """
        return self.queue_depth + self.pending_arrivals + self.running

    def to_dict(self) -> dict:
        """The gauges as a plain dict (JSON-friendly), derived fields included."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["kv_occupancy"] = self.kv_occupancy
        out["in_flight"] = self.in_flight
        out["draft_acceptance_rate"] = self.draft_acceptance_rate
        out["spec_effective_tokens_per_step"] = self.spec_effective_tokens_per_step
        return out

    def to_prometheus(self, prefix: str = "repro_serving") -> str:
        """Render the gauges in the Prometheus text exposition format.

        One ``# TYPE <name> gauge`` + value line per field, served verbatim by
        the HTTP front end's ``GET /metrics`` endpoint.
        """
        lines = []
        for name, value in self.to_dict().items():
            metric = f"{prefix}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {render_gauge_value(value)}")
        # Tier-labelled occupancy series: one metric, hot/cold samples.
        tier_metric = f"{prefix}_kv_tier_tokens"
        lines.append(f"# TYPE {tier_metric} gauge")
        lines.append(
            f'{tier_metric}{{tier="hot"}} {render_gauge_value(self.kv_tokens_in_use)}'
        )
        lines.append(
            f'{tier_metric}{{tier="cold"}} {render_gauge_value(self.kv_tokens_cold)}'
        )
        # Stat-labelled speculation-depth series: the live min/mean/max of
        # effective per-request k (flat under fixed k, a trajectory under an
        # AdaptiveKPolicy).
        k_metric = f"{prefix}_speculation_k"
        lines.append(f"# TYPE {k_metric} gauge")
        for stat, value in (
            ("min", self.speculation_k_min),
            ("mean", self.speculation_k_mean),
            ("max", self.speculation_k_max),
        ):
            lines.append(f'{k_metric}{{stat="{stat}"}} {render_gauge_value(value)}')
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request.

    Fields (units):

    * ``arrival_time_s`` — virtual clock (s) when the request arrived.
    * ``prefill_finish_time_s`` — clock (s) when its first token was produced.
    * ``finish_time_s`` — clock (s) when its last token was produced.
    * ``prompt_tokens`` / ``generated_tokens`` — lengths (tokens).
    * ``priority`` — scheduling class (lower = more urgent, 0 = default).
    * ``preemptions`` — times the request was evicted under KV pressure.
    * ``preempted_stall_s`` — total seconds spent evicted (preempt to resume,
      including the recompute itself).
    * ``scheduled_time_s`` — clock (s) of *first* admission for prefill
      (``None`` on legacy records that predate preemptive scheduling).
    * ``transfer_ms`` — modeled KV-migration latency (milliseconds) charged
      when the request was handed off between serving tiers (0.0 when it was
      served by one replica end to end).
    * ``migrated_pages`` — physical KV pages migrated in that hand-off.
    * ``demotions`` — times the request's KV was parked in the cold tier
      instead of being released for recompute.
    * ``demoted_stall_s`` — total seconds spent demoted (demote to restore).
    * ``restored_pages`` — KV pages brought back from the cold tier for this
      request (sequence restores plus cold prefix pages re-attached at
      prefill).
    * ``restore_ms`` — total modeled cold-tier restore latency (milliseconds)
      charged to this request.
    * ``draft_tokens_proposed`` / ``draft_tokens_accepted`` — speculative
      draft tokens proposed for / accepted into this request's output (both
      0 when it decoded without speculation).
    * ``spec_decode_steps`` — decode steps the request took through the
      speculative verify path (each emitted 1 + accepted-drafts tokens).
    """

    request_id: str
    arrival_time_s: float
    prefill_finish_time_s: float
    finish_time_s: float
    prompt_tokens: int
    generated_tokens: int
    priority: int = 0
    preemptions: int = 0
    scheduled_time_s: float | None = None
    preempted_stall_s: float = 0.0
    transfer_ms: float = 0.0
    migrated_pages: int = 0
    demotions: int = 0
    demoted_stall_s: float = 0.0
    restored_pages: int = 0
    restore_ms: float = 0.0
    draft_tokens_proposed: int = 0
    draft_tokens_accepted: int = 0
    spec_decode_steps: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token in seconds (queueing + prefill)."""
        return self.prefill_finish_time_s - self.arrival_time_s

    @property
    def queueing_delay_s(self) -> float:
        """Seconds spent waiting before first admission (0.0 when unrecorded)."""
        if self.scheduled_time_s is None:
            return 0.0
        return self.scheduled_time_s - self.arrival_time_s

    @property
    def decode_time_s(self) -> float:
        """Seconds between the first and the last generated token."""
        return self.finish_time_s - self.prefill_finish_time_s

    @property
    def time_per_output_token_s(self) -> float:
        """Mean decode latency per output token, in seconds.

        The first token arrives with prefill (it is covered by TTFT), so the
        decode phase spans ``generated_tokens - 1`` tokens.
        """
        if self.generated_tokens <= 1:
            return 0.0
        return self.decode_time_s / (self.generated_tokens - 1)

    @property
    def draft_acceptance_rate(self) -> float:
        """Fraction of this request's proposed draft tokens accepted (0.0 when none)."""
        if self.draft_tokens_proposed <= 0:
            return 0.0
        return self.draft_tokens_accepted / self.draft_tokens_proposed

    @property
    def spec_effective_tokens_per_step(self) -> float:
        """Tokens per speculative decode step for this request (0.0 when none)."""
        if self.spec_decode_steps <= 0:
            return 0.0
        return (self.spec_decode_steps + self.draft_tokens_accepted) / self.spec_decode_steps


@dataclass
class ServingMetrics:
    """Aggregate statistics over a set of completed requests.

    Every aggregate accepts an optional ``priority`` filter to slice the
    records down to one scheduling class (``None`` = all classes).
    """

    records: list[RequestRecord] = field(default_factory=list)

    def add(self, record: RequestRecord) -> None:
        """Append one completed-request record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def _select(self, priority: int | None = None) -> list[RequestRecord]:
        """Records of one priority class (``None`` = all classes).

        An aggregate over *all* records simply returns the empty list when
        nothing has completed yet — summary callers (benchmark tables, smoke
        runs where everything was rejected or is still queued) report NaN/0
        instead of crashing.  A lookup for a *specific* priority class with
        no records still raises: a typo'd class id should error, not
        silently report an empty class.
        """
        if priority is None:
            return self.records
        records = [r for r in self.records if r.priority == priority]
        if not records:
            raise ValueError(f"no completed requests recorded for priority class {priority}")
        return records

    def priority_classes(self) -> list[int]:
        """Distinct priority classes present, ascending (most urgent first)."""
        return sorted({r.priority for r in self.records})

    def total_preemptions(self, priority: int | None = None) -> int:
        """Total preemption events across the recorded requests.

        Returns 0 when nothing has been recorded yet; like the other
        per-class aggregates, raises for a ``priority`` class with no records
        (a typo'd class id should error, not report zero preemptions).
        """
        return int(sum(r.preemptions for r in self._select(priority)))

    def mean_queueing_delay_s(self, priority: int | None = None) -> float:
        """Mean seconds spent waiting for first admission (NaN with no records)."""
        samples = [r.queueing_delay_s for r in self._select(priority)]
        if not samples:
            return float("nan")
        return float(np.mean(samples))

    def mean_ttft_s(self, priority: int | None = None) -> float:
        """Mean time to first token, in seconds (NaN with no records)."""
        samples = [r.ttft_s for r in self._select(priority)]
        if not samples:
            return float("nan")
        return float(np.mean(samples))

    def percentile_ttft_s(self, percentile: float, priority: int | None = None) -> float:
        """TTFT percentile (e.g. ``percentile=99`` for p99), in seconds.

        NaN when no requests have completed.
        """
        samples = [r.ttft_s for r in self._select(priority)]
        if not samples:
            return float("nan")
        return float(np.percentile(samples, percentile))

    def percentile_tpot_s(self, percentile: float, priority: int | None = None) -> float:
        """Per-output-token latency percentile, in seconds.

        Computed over requests that actually decoded (more than one generated
        token); returns 0.0 when no request did.
        """
        samples = [
            r.time_per_output_token_s
            for r in self._select(priority)
            if r.generated_tokens > 1
        ]
        if not samples:
            return 0.0
        return float(np.percentile(samples, percentile))

    def mean_time_per_output_token_s(self, priority: int | None = None) -> float:
        """Mean per-token decode latency over requests that actually decoded.

        Requests whose only token came from prefill have no decode phase and
        are excluded rather than averaged in as zero.
        """
        samples = [
            r.time_per_output_token_s
            for r in self._select(priority)
            if r.generated_tokens > 1
        ]
        if not samples:
            return 0.0
        return float(np.mean(samples))

    def slo_attainment(
        self,
        ttft_slo_s: float,
        tpot_slo_s: float | None = None,
        priority: int | None = None,
    ) -> float:
        """Fraction of requests meeting the latency SLO (0.0–1.0).

        A request attains the SLO when its TTFT is at most ``ttft_slo_s``
        seconds and (when ``tpot_slo_s`` is given) its mean per-output-token
        latency is at most ``tpot_slo_s`` seconds.  NaN when no requests have
        completed (attainment over zero requests is undefined, not 100%).
        """
        records = self._select(priority)
        if not records:
            return float("nan")
        ok = 0
        for r in records:
            if r.ttft_s > ttft_slo_s:
                continue
            if tpot_slo_s is not None and r.time_per_output_token_s > tpot_slo_s:
                continue
            ok += 1
        return ok / len(records)

    def total_demotions(self, priority: int | None = None) -> int:
        """Total cold-tier demotion events across the recorded requests.

        The cheap counterpart of :meth:`total_preemptions` — the two together
        are every KV-pressure eviction the recorded requests suffered.
        """
        return int(sum(r.demotions for r in self._select(priority)))

    def total_restored_pages(self, priority: int | None = None) -> int:
        """Total KV pages restored from the cold tier, over the records."""
        return int(sum(r.restored_pages for r in self._select(priority)))

    def mean_restore_ms(self, priority: int | None = None) -> float:
        """Mean modeled restore latency over requests that restored pages, in ms.

        Requests that never touched the cold tier are excluded rather than
        averaged in as zero; 0.0 when nothing was restored.
        """
        samples = [
            r.restore_ms
            for r in self._select(priority)
            if r.restored_pages > 0 or r.restore_ms > 0
        ]
        if not samples:
            return 0.0
        return float(np.mean(samples))

    def total_draft_tokens_proposed(self, priority: int | None = None) -> int:
        """Total speculative draft tokens proposed, over the records."""
        return int(sum(r.draft_tokens_proposed for r in self._select(priority)))

    def total_draft_tokens_accepted(self, priority: int | None = None) -> int:
        """Total speculative draft tokens accepted, over the records."""
        return int(sum(r.draft_tokens_accepted for r in self._select(priority)))

    def draft_acceptance_rate(self, priority: int | None = None) -> float:
        """Pooled draft acceptance rate across the records (NaN when none proposed).

        Pooled (total accepted / total proposed) rather than a mean of
        per-request rates, so requests that speculated more weigh more.
        """
        proposed = self.total_draft_tokens_proposed(priority)
        if proposed == 0:
            return float("nan")
        return self.total_draft_tokens_accepted(priority) / proposed

    def mean_effective_tokens_per_step(self, priority: int | None = None) -> float:
        """Pooled tokens per speculative decode step (0.0 when none ran).

        ``(steps + accepted) / steps`` over all recorded speculative steps —
        the decode-iteration compression the records actually realised.
        """
        steps = int(sum(r.spec_decode_steps for r in self._select(priority)))
        if steps == 0:
            return 0.0
        return (steps + self.total_draft_tokens_accepted(priority)) / steps

    def total_generated_tokens(self) -> int:
        """Sum of generated tokens across all recorded requests."""
        return int(sum(r.generated_tokens for r in self.records))

    def total_migrated_pages(self) -> int:
        """Physical KV pages migrated between tiers, over all records."""
        return int(sum(r.migrated_pages for r in self.records))

    def mean_transfer_ms(self, priority: int | None = None) -> float:
        """Mean modeled hand-off latency over *migrated* requests, in ms.

        Requests served by one replica end to end carry no transfer and are
        excluded rather than averaged in as zero; 0.0 when nothing migrated.
        """
        samples = [
            r.transfer_ms
            for r in self._select(priority)
            if r.migrated_pages > 0 or r.transfer_ms > 0
        ]
        if not samples:
            return 0.0
        return float(np.mean(samples))

    def makespan_s(self) -> float:
        """Seconds from the first arrival to the last finish (0.0 with no records)."""
        records = self._select()
        if not records:
            return 0.0
        start = min(r.arrival_time_s for r in records)
        end = max(r.finish_time_s for r in records)
        return end - start

    def generation_throughput_tokens_s(self) -> float:
        """Generated tokens per wall-clock second across the whole run.

        0.0 when no requests have completed.
        """
        if not self.records:
            return 0.0
        span = self.makespan_s()
        if span <= 0:
            return float("inf")
        return self.total_generated_tokens() / span
