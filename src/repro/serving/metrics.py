"""Serving metrics: TTFT, per-token latency, throughput."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RequestRecord", "ServingMetrics"]


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    request_id: str
    arrival_time_s: float
    prefill_finish_time_s: float
    finish_time_s: float
    prompt_tokens: int
    generated_tokens: int

    @property
    def ttft_s(self) -> float:
        """Time to first token (queueing + prefill)."""
        return self.prefill_finish_time_s - self.arrival_time_s

    @property
    def decode_time_s(self) -> float:
        return self.finish_time_s - self.prefill_finish_time_s

    @property
    def time_per_output_token_s(self) -> float:
        """Mean decode latency per output token.

        The first token arrives with prefill (it is covered by TTFT), so the
        decode phase spans ``generated_tokens - 1`` tokens.
        """
        if self.generated_tokens <= 1:
            return 0.0
        return self.decode_time_s / (self.generated_tokens - 1)


@dataclass
class ServingMetrics:
    """Aggregate statistics over a set of completed requests."""

    records: list[RequestRecord] = field(default_factory=list)

    def add(self, record: RequestRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def _require_records(self) -> None:
        if not self.records:
            raise ValueError("no completed requests recorded")

    def mean_ttft_s(self) -> float:
        self._require_records()
        return float(np.mean([r.ttft_s for r in self.records]))

    def percentile_ttft_s(self, percentile: float) -> float:
        self._require_records()
        return float(np.percentile([r.ttft_s for r in self.records], percentile))

    def mean_time_per_output_token_s(self) -> float:
        """Mean per-token decode latency over requests that actually decoded.

        Requests whose only token came from prefill have no decode phase and
        are excluded rather than averaged in as zero.
        """
        self._require_records()
        samples = [
            r.time_per_output_token_s for r in self.records if r.generated_tokens > 1
        ]
        if not samples:
            return 0.0
        return float(np.mean(samples))

    def total_generated_tokens(self) -> int:
        return int(sum(r.generated_tokens for r in self.records))

    def makespan_s(self) -> float:
        self._require_records()
        start = min(r.arrival_time_s for r in self.records)
        end = max(r.finish_time_s for r in self.records)
        return end - start

    def generation_throughput_tokens_s(self) -> float:
        """Generated tokens per wall-clock second across the whole run."""
        span = self.makespan_s()
        if span <= 0:
            return float("inf")
        return self.total_generated_tokens() / span
