"""Sampling parameters and the token-sampling kernel of the serving front door.

:class:`SamplingParams` is the per-request generation policy accepted by
:class:`~repro.serving.engine.ServingEngine` and by
:meth:`repro.core.engine.LServeEngine.generate`: greedy decoding (the default),
temperature sampling with an optional top-k filter, and EOS / stop-token
handling.  :func:`sample_token` turns one logits vector into the next token id
under those parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SamplingParams", "sample_token"]


@dataclass(frozen=True)
class SamplingParams:
    """How to turn logits into tokens for one request.

    Parameters
    ----------
    temperature:
        ``0.0`` (the default) means greedy argmax decoding; positive values
        divide the logits before the softmax.
    top_k:
        When set, sampling is restricted to the ``top_k`` highest-logit
        tokens.  Ignored under greedy decoding.
    stop_token_ids:
        Token ids (e.g. the tokenizer's EOS id) that terminate generation.
        The stop token itself is kept in the output, matching common serving
        engines.
    seed:
        Seed of the per-request random generator used for temperature
        sampling, so traces are reproducible.
    speculation_k:
        Draft tokens proposed per decode step when the serving engine has a
        :class:`~repro.serving.speculative.DraftSource` attached.  ``0`` (the
        default) disables speculation for the request.  Speculation never
        changes outputs — accepted tokens are verified byte-exact against
        the non-speculative decode path — so this is purely a latency knob.
    """

    temperature: float = 0.0
    top_k: int | None = None
    stop_token_ids: tuple[int, ...] = ()
    seed: int = 0
    speculation_k: int = 0

    def __post_init__(self) -> None:
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1 when set")
        if self.speculation_k < 0:
            raise ValueError("speculation_k must be non-negative")
        object.__setattr__(self, "stop_token_ids", tuple(int(t) for t in self.stop_token_ids))

    @property
    def is_greedy(self) -> bool:
        """Whether decoding is deterministic argmax (``temperature == 0``)."""
        return self.temperature == 0.0

    def is_stop(self, token_id: int) -> bool:
        """Whether ``token_id`` terminates generation for this request."""
        return int(token_id) in self.stop_token_ids

    @classmethod
    def greedy(cls, stop_token_ids: tuple[int, ...] = ()) -> "SamplingParams":
        """Greedy-decoding parameters with optional stop tokens."""
        return cls(temperature=0.0, stop_token_ids=stop_token_ids)


def sample_token(
    logits: np.ndarray, params: SamplingParams, rng: np.random.Generator
) -> int:
    """Sample the next token id from a ``(vocab_size,)`` logits vector."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    if logits.size == 0:
        raise ValueError("logits must be non-empty")
    if params.is_greedy:
        return int(np.argmax(logits))
    scaled = logits / params.temperature
    if params.top_k is not None and params.top_k < scaled.size:
        cutoff = np.partition(scaled, -params.top_k)[-params.top_k]
        scaled = np.where(scaled >= cutoff, scaled, -np.inf)
    scaled = scaled - np.max(scaled)
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))
