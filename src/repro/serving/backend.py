"""The serving back door: one ``InferenceBackend`` API, two implementations.

Everything behind the :class:`~repro.serving.engine.ServingEngine` front door
speaks this protocol:

* :class:`LServeBackend` wraps the real :class:`~repro.core.engine.LServeEngine`
  — tokens actually flow through the sparse-attention model, decode iterations
  run as true multi-sequence batches, and prefill can be chunked.
* :class:`SimulatedBackend` wraps the :class:`~repro.gpu.simulator.LatencySimulator`
  cost model — no logits are produced, but every call is billed the modelled
  GPU time, so scheduler-level experiments run in virtual time at any scale.

Both report work through the same :class:`BackendWork` counters and both bill
time through :class:`StepResult.elapsed_s`, which is what lets TTFT /
throughput metrics and engine statistics come from the *same* run regardless
of which backend is plugged in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.engine import LServeEngine
from repro.gpu.simulator import LatencySimulator
from repro.kvcache.prefix_index import PrefixIndex

__all__ = [
    "StepResult",
    "BackendWork",
    "InferenceBackend",
    "SimulatedBackend",
    "LServeBackend",
]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one backend call.

    ``logits`` is the next-token distribution — ``(vocab_size,)`` for the last
    prompt position after :meth:`InferenceBackend.prefill`, ``(batch,
    vocab_size)`` after :meth:`InferenceBackend.decode_batch` — or ``None``
    for backends that model time but not content.  ``elapsed_s`` is the time
    the call is billed on the serving clock (modelled GPU seconds for the
    simulator, measured or modelled seconds for the real engine).
    ``prefix_hit_tokens`` reports how many prompt tokens a prefill attached
    from a shared prefix instead of computing (0 when sharing is off); the
    serving engine uses it to account only *unique* KV against the
    scheduler's watermarks.
    """

    logits: np.ndarray | None
    elapsed_s: float
    prefix_hit_tokens: int = 0


@dataclass
class BackendWork:
    """Uniform work/latency accounting every backend maintains."""

    prefill_calls: int = 0
    prefill_tokens: int = 0
    prefill_time_s: float = 0.0
    decode_iterations: int = 0
    decode_tokens: int = 0
    decode_time_s: float = 0.0
    #: Prompt tokens served from a shared prefix (not counted in
    #: ``prefill_tokens``, which tracks *computed* prefill work).
    prefix_hit_tokens: int = 0

    @property
    def total_time_s(self) -> float:
        """Total billed backend seconds (prefill + decode)."""
        return self.prefill_time_s + self.decode_time_s

    @property
    def mean_decode_batch_size(self) -> float:
        """Average number of sequences per decode iteration."""
        if self.decode_iterations == 0:
            return 0.0
        return self.decode_tokens / self.decode_iterations

    def record_prefill(self, n_tokens: int, elapsed_s: float) -> None:
        """Account one prefill call of ``n_tokens`` prompt tokens."""
        self.prefill_calls += 1
        self.prefill_tokens += n_tokens
        self.prefill_time_s += elapsed_s

    def record_decode(self, batch: int, elapsed_s: float) -> None:
        """Account one decode iteration over ``batch`` sequences."""
        self.decode_iterations += 1
        self.decode_tokens += batch
        self.decode_time_s += elapsed_s


@runtime_checkable
class InferenceBackend(Protocol):
    """What the serving front door needs from an execution engine.

    A backend owns per-sequence KV state keyed by ``seq_id``: ``prefill``
    creates it, ``decode_batch`` advances every listed sequence by one token,
    and ``release`` frees it.  ``work`` accumulates the uniform accounting.

    Implementations should also expose a ``produces_logits`` class attribute:
    ``True`` when calls return real next-token distributions (requests must
    then carry ``prompt_token_ids``), ``False`` for content-free cost models
    (the serving engine records placeholder tokens and refuses ``generate()``).

    Optionally, a backend may expose ``kv_tokens_in_use() -> int`` reporting
    the KV tokens it currently materialises across all live sequences; the
    serving engine surfaces it as the ground-truth occupancy gauge in
    :meth:`~repro.serving.engine.ServingEngine.live_gauges` (the scheduler's
    own count is an estimate that excludes shared prefix pages).
    """

    work: BackendWork
    produces_logits: bool

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Ingest a prompt for a fresh sequence."""
        ...

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Advance each sequence by one token (one continuous-batching iteration)."""
        ...

    def release(self, seq_id: object) -> None:
        """Free all state held for ``seq_id``."""
        ...


class SimulatedBackend:
    """Cost-model backend: bills modelled GPU time, produces no logits.

    This is the original cost-model-only serving loop re-expressed as one
    configuration of the backend API: prefill is billed the modelled
    time-to-first-token of the prompt, a decode iteration is billed the
    modelled step latency at the longest context in the batch.
    """

    produces_logits = False

    def __init__(
        self, latency: LatencySimulator, prefix_block_tokens: int | None = None
    ) -> None:
        """``prefix_block_tokens`` enables a prefix-cache cost model.

        When set, the backend keeps a token-block index of every prompt it
        has prefilled (the same :class:`~repro.kvcache.prefix_index.PrefixIndex`
        the real engine uses, with no pages to pin); a later prompt is billed
        only for its unmatched tail.  Requests must then carry real
        ``prompt_token_ids`` — length-only requests all share the placeholder
        prompt and would spuriously match each other; the serving engine
        rejects them at submit via :attr:`requires_token_content`.
        """
        if prefix_block_tokens is not None and prefix_block_tokens < 1:
            raise ValueError("prefix_block_tokens must be >= 1 when set")
        self.latency = latency
        self.prefix_block_tokens = prefix_block_tokens
        self.work = BackendWork()
        self._context: dict[object, int] = {}
        self._prefix_index = (
            PrefixIndex(page_size=prefix_block_tokens)
            if prefix_block_tokens is not None
            else None
        )

    @property
    def requires_token_content(self) -> bool:
        """Whether requests must carry real token ids (prefix model enabled)."""
        return self._prefix_index is not None

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Bill the modelled time-to-first-token for a fresh sequence's prompt.

        With the prefix-cache cost model enabled, only the unmatched prompt
        tail is billed and the hit is reported in the result.
        """
        if seq_id in self._context:
            raise ValueError(f"sequence {seq_id!r} already prefilled")
        token_ids = np.asarray(token_ids)
        n = int(token_ids.size)
        if n == 0:
            raise ValueError("token_ids must be non-empty")
        hit = 0
        if self._prefix_index is not None:
            block = self.prefix_block_tokens
            limit = (n - 1) // block * block  # leave one token computed
            hit = len(self._prefix_index.match(token_ids, max_tokens=limit)) * block
            n_blocks = n // block
            self._prefix_index.register(
                token_ids, [None] * n_blocks, lambda i: None, lambda i: (None, None)
            )
        elapsed = self.latency.prefill_latency(n - hit)
        self._context[seq_id] = n
        self.work.record_prefill(n - hit, elapsed)
        self.work.prefix_hit_tokens += hit
        return StepResult(logits=None, elapsed_s=elapsed, prefix_hit_tokens=hit)

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Bill one decode iteration at the longest context in the batch."""
        if not seq_ids:
            raise ValueError("decode_batch requires at least one sequence")
        for seq_id in seq_ids:
            if seq_id not in self._context:
                raise KeyError(f"unknown sequence {seq_id!r}")
        context = max(self._context[s] for s in seq_ids)
        elapsed = self.latency.decode_step_latency(context, batch=len(seq_ids))
        for seq_id in seq_ids:
            self._context[seq_id] += 1
        self.work.record_decode(len(seq_ids), elapsed)
        return StepResult(logits=None, elapsed_s=elapsed)

    def kv_tokens_in_use(self) -> int:
        """Modelled KV tokens across all live sequences (live-gauge support)."""
        return int(sum(self._context.values()))

    def release(self, seq_id: object) -> None:
        """Forget the sequence's modelled context length (idempotent)."""
        self._context.pop(seq_id, None)


class LServeBackend:
    """Real-compute backend: drives an :class:`LServeEngine`.

    Tokens flow through the actual sparse-attention model.  Time is billed
    from ``latency`` (the GPU cost model) when provided — keeping the virtual
    clock comparable with :class:`SimulatedBackend` runs — and from measured
    wall-clock time otherwise.  ``prefill_chunk_size`` enables the engine's
    chunked prefill.
    """

    produces_logits = True

    def __init__(
        self,
        engine: LServeEngine,
        latency: LatencySimulator | None = None,
        prefill_chunk_size: int | None = None,
    ) -> None:
        if prefill_chunk_size is not None:
            q_block = engine.config.q_block_size
            page = engine.config.physical_page_size
            if (
                prefill_chunk_size < 1
                or prefill_chunk_size % q_block != 0
                or prefill_chunk_size % page != 0
            ):
                raise ValueError(
                    f"prefill_chunk_size ({prefill_chunk_size}) must be a positive "
                    f"multiple of q_block_size ({q_block}) and physical_page_size "
                    f"({page}); misaligned chunks silently tile the sparse masks at "
                    "shifted boundaries and change model outputs"
                )
        self.engine = engine
        self.latency = latency
        self.prefill_chunk_size = prefill_chunk_size
        self.work = BackendWork()
        self._live_seq_ids: set = set()

    @property
    def stats(self):
        """The wrapped engine's :class:`~repro.core.engine.EngineStats`."""
        return self.engine.stats

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Run real (optionally chunked) prefill; returns last-position logits.

        When the engine's prefix cache attaches part of the prompt, only the
        computed tail is billed (modelled time scales with computed tokens)
        and the hit size is reported in the result.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hits_before = self.engine.stats.prefix_hit_tokens
        wall_start = time.perf_counter()
        logits = self.engine.prefill(seq_id, token_ids, chunk_size=self.prefill_chunk_size)
        wall = time.perf_counter() - wall_start
        hit = self.engine.stats.prefix_hit_tokens - hits_before
        computed = int(token_ids.size) - hit
        elapsed = (
            self.latency.prefill_latency(computed) if self.latency is not None else wall
        )
        self.work.record_prefill(computed, elapsed)
        self.work.prefix_hit_tokens += hit
        self._live_seq_ids.add(seq_id)
        return StepResult(logits=logits[-1], elapsed_s=elapsed, prefix_hit_tokens=hit)

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Advance every sequence by one token through the real engine."""
        context = max(self.engine.context_length(s) for s in seq_ids)
        wall_start = time.perf_counter()
        logits = self.engine.decode_batch(seq_ids, token_ids)
        wall = time.perf_counter() - wall_start
        elapsed = (
            self.latency.decode_step_latency(context, batch=len(seq_ids))
            if self.latency is not None
            else wall
        )
        self.work.record_decode(len(seq_ids), elapsed)
        return StepResult(logits=logits, elapsed_s=elapsed)

    def kv_tokens_in_use(self) -> int:
        """KV tokens the engine holds across live sequences (live-gauge support)."""
        return int(
            sum(self.engine.context_length(s) for s in self._live_seq_ids)
        )

    def release(self, seq_id: object) -> None:
        """Free the engine's KV pages and cached page selections for ``seq_id``."""
        self._live_seq_ids.discard(seq_id)
        self.engine.release(seq_id)
