"""The serving back door: one ``InferenceBackend`` API, two implementations.

Everything behind the :class:`~repro.serving.engine.ServingEngine` front door
speaks this protocol:

* :class:`LServeBackend` wraps the real :class:`~repro.core.engine.LServeEngine`
  — tokens actually flow through the sparse-attention model, decode iterations
  run as true multi-sequence batches, and prefill can be chunked.
* :class:`SimulatedBackend` wraps the :class:`~repro.gpu.simulator.LatencySimulator`
  cost model — no logits are produced, but every call is billed the modelled
  GPU time, so scheduler-level experiments run in virtual time at any scale.

Both report work through the same :class:`BackendWork` counters and both bill
time through :class:`StepResult.elapsed_s`, which is what lets TTFT /
throughput metrics and engine statistics come from the *same* run regardless
of which backend is plugged in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.engine import LServeEngine
from repro.gpu.simulator import LatencySimulator

__all__ = [
    "StepResult",
    "BackendWork",
    "InferenceBackend",
    "SimulatedBackend",
    "LServeBackend",
]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one backend call.

    ``logits`` is the next-token distribution — ``(vocab_size,)`` for the last
    prompt position after :meth:`InferenceBackend.prefill`, ``(batch,
    vocab_size)`` after :meth:`InferenceBackend.decode_batch` — or ``None``
    for backends that model time but not content.  ``elapsed_s`` is the time
    the call is billed on the serving clock (modelled GPU seconds for the
    simulator, measured or modelled seconds for the real engine).
    """

    logits: np.ndarray | None
    elapsed_s: float


@dataclass
class BackendWork:
    """Uniform work/latency accounting every backend maintains."""

    prefill_calls: int = 0
    prefill_tokens: int = 0
    prefill_time_s: float = 0.0
    decode_iterations: int = 0
    decode_tokens: int = 0
    decode_time_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Total billed backend seconds (prefill + decode)."""
        return self.prefill_time_s + self.decode_time_s

    @property
    def mean_decode_batch_size(self) -> float:
        """Average number of sequences per decode iteration."""
        if self.decode_iterations == 0:
            return 0.0
        return self.decode_tokens / self.decode_iterations

    def record_prefill(self, n_tokens: int, elapsed_s: float) -> None:
        """Account one prefill call of ``n_tokens`` prompt tokens."""
        self.prefill_calls += 1
        self.prefill_tokens += n_tokens
        self.prefill_time_s += elapsed_s

    def record_decode(self, batch: int, elapsed_s: float) -> None:
        """Account one decode iteration over ``batch`` sequences."""
        self.decode_iterations += 1
        self.decode_tokens += batch
        self.decode_time_s += elapsed_s


@runtime_checkable
class InferenceBackend(Protocol):
    """What the serving front door needs from an execution engine.

    A backend owns per-sequence KV state keyed by ``seq_id``: ``prefill``
    creates it, ``decode_batch`` advances every listed sequence by one token,
    and ``release`` frees it.  ``work`` accumulates the uniform accounting.

    Implementations should also expose a ``produces_logits`` class attribute:
    ``True`` when calls return real next-token distributions (requests must
    then carry ``prompt_token_ids``), ``False`` for content-free cost models
    (the serving engine records placeholder tokens and refuses ``generate()``).
    """

    work: BackendWork
    produces_logits: bool

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Ingest a prompt for a fresh sequence."""
        ...

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Advance each sequence by one token (one continuous-batching iteration)."""
        ...

    def release(self, seq_id: object) -> None:
        """Free all state held for ``seq_id``."""
        ...


class SimulatedBackend:
    """Cost-model backend: bills modelled GPU time, produces no logits.

    This is the old ``ServingSimulator`` behaviour re-expressed as one
    configuration of the backend API: prefill is billed the modelled
    time-to-first-token of the prompt, a decode iteration is billed the
    modelled step latency at the longest context in the batch.
    """

    produces_logits = False

    def __init__(self, latency: LatencySimulator) -> None:
        self.latency = latency
        self.work = BackendWork()
        self._context: dict[object, int] = {}

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Bill the modelled time-to-first-token for a fresh sequence's prompt."""
        if seq_id in self._context:
            raise ValueError(f"sequence {seq_id!r} already prefilled")
        n = int(np.asarray(token_ids).size)
        if n == 0:
            raise ValueError("token_ids must be non-empty")
        elapsed = self.latency.prefill_latency(n)
        self._context[seq_id] = n
        self.work.record_prefill(n, elapsed)
        return StepResult(logits=None, elapsed_s=elapsed)

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Bill one decode iteration at the longest context in the batch."""
        if not seq_ids:
            raise ValueError("decode_batch requires at least one sequence")
        for seq_id in seq_ids:
            if seq_id not in self._context:
                raise KeyError(f"unknown sequence {seq_id!r}")
        context = max(self._context[s] for s in seq_ids)
        elapsed = self.latency.decode_step_latency(context, batch=len(seq_ids))
        for seq_id in seq_ids:
            self._context[seq_id] += 1
        self.work.record_decode(len(seq_ids), elapsed)
        return StepResult(logits=None, elapsed_s=elapsed)

    def release(self, seq_id: object) -> None:
        """Forget the sequence's modelled context length (idempotent)."""
        self._context.pop(seq_id, None)


class LServeBackend:
    """Real-compute backend: drives an :class:`LServeEngine`.

    Tokens flow through the actual sparse-attention model.  Time is billed
    from ``latency`` (the GPU cost model) when provided — keeping the virtual
    clock comparable with :class:`SimulatedBackend` runs — and from measured
    wall-clock time otherwise.  ``prefill_chunk_size`` enables the engine's
    chunked prefill.
    """

    produces_logits = True

    def __init__(
        self,
        engine: LServeEngine,
        latency: LatencySimulator | None = None,
        prefill_chunk_size: int | None = None,
    ) -> None:
        if prefill_chunk_size is not None:
            q_block = engine.config.q_block_size
            page = engine.config.physical_page_size
            if (
                prefill_chunk_size < 1
                or prefill_chunk_size % q_block != 0
                or prefill_chunk_size % page != 0
            ):
                raise ValueError(
                    f"prefill_chunk_size ({prefill_chunk_size}) must be a positive "
                    f"multiple of q_block_size ({q_block}) and physical_page_size "
                    f"({page}); misaligned chunks silently tile the sparse masks at "
                    "shifted boundaries and change model outputs"
                )
        self.engine = engine
        self.latency = latency
        self.prefill_chunk_size = prefill_chunk_size
        self.work = BackendWork()

    @property
    def stats(self):
        """The wrapped engine's :class:`~repro.core.engine.EngineStats`."""
        return self.engine.stats

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Run real (optionally chunked) prefill; returns last-position logits."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        wall_start = time.perf_counter()
        logits = self.engine.prefill(seq_id, token_ids, chunk_size=self.prefill_chunk_size)
        wall = time.perf_counter() - wall_start
        elapsed = (
            self.latency.prefill_latency(int(token_ids.size))
            if self.latency is not None
            else wall
        )
        self.work.record_prefill(int(token_ids.size), elapsed)
        return StepResult(logits=logits[-1], elapsed_s=elapsed)

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Advance every sequence by one token through the real engine."""
        context = max(self.engine.context_length(s) for s in seq_ids)
        wall_start = time.perf_counter()
        logits = self.engine.decode_batch(seq_ids, token_ids)
        wall = time.perf_counter() - wall_start
        elapsed = (
            self.latency.decode_step_latency(context, batch=len(seq_ids))
            if self.latency is not None
            else wall
        )
        self.work.record_decode(len(seq_ids), elapsed)
        return StepResult(logits=logits, elapsed_s=elapsed)

    def release(self, seq_id: object) -> None:
        """Free the engine's KV pages and cached page selections for ``seq_id``."""
        self.engine.release(seq_id)
