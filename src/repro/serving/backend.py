"""The serving back door: one ``InferenceBackend`` API, two implementations.

Everything behind the :class:`~repro.serving.engine.ServingEngine` front door
speaks this protocol:

* :class:`LServeBackend` wraps the real :class:`~repro.core.engine.LServeEngine`
  — tokens actually flow through the sparse-attention model, decode iterations
  run as true multi-sequence batches, and prefill can be chunked.
* :class:`SimulatedBackend` wraps the :class:`~repro.gpu.simulator.LatencySimulator`
  cost model — no logits are produced, but every call is billed the modelled
  GPU time, so scheduler-level experiments run in virtual time at any scale.

Both report work through the same :class:`BackendWork` counters and both bill
time through :class:`StepResult.elapsed_s`, which is what lets TTFT /
throughput metrics and engine statistics come from the *same* run regardless
of which backend is plugged in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.engine import LServeEngine
from repro.gpu.cost_model import TransferCostModel
from repro.gpu.simulator import LatencySimulator
from repro.kvcache.prefix_index import PrefixIndex
from repro.kvcache.tiering import (
    ColdTierError,
    ColdTierStore,
    KVTieringConfig,
    compress_page_images,
    make_eviction_policy,
)

__all__ = [
    "StepResult",
    "SpecStepResult",
    "SpecBatchResult",
    "BackendWork",
    "InferenceBackend",
    "KVHandoff",
    "SimulatedBackend",
    "LServeBackend",
]


@dataclass(frozen=True)
class KVHandoff:
    """A sequence's KV state in flight between two backends.

    Produced by a backend's ``handoff_out`` and consumed by another backend's
    ``handoff_in`` (the prefill→decode migration of a disaggregated cluster).
    The geometry fields describe the wire payload for a
    :class:`~repro.gpu.cost_model.TransferCostModel`; ``payload`` is the
    backend-specific state (page images + streaming stores for
    :class:`LServeBackend`, the modelled context length for
    :class:`SimulatedBackend`) and is opaque to the cluster layer.
    """

    n_tokens: int
    n_pages: int
    page_size: int
    n_layers: int
    n_kv_heads: int
    head_dim: int
    kv_bits: int
    payload: object

    def transfer_bytes(self, model: TransferCostModel) -> float:
        """Wire bytes of this hand-off under ``model``."""
        return model.transfer_bytes(
            self.n_pages, self.page_size, self.n_layers,
            self.n_kv_heads, self.head_dim, self.kv_bits,
        )

    def transfer_latency_s(self, model: TransferCostModel) -> float:
        """Modeled migration latency of this hand-off under ``model``."""
        return model.transfer_latency_s(
            self.n_pages, self.page_size, self.n_layers,
            self.n_kv_heads, self.head_dim, self.kv_bits,
        )


@dataclass(frozen=True)
class StepResult:
    """Outcome of one backend call.

    ``logits`` is the next-token distribution — ``(vocab_size,)`` for the last
    prompt position after :meth:`InferenceBackend.prefill`, ``(batch,
    vocab_size)`` after :meth:`InferenceBackend.decode_batch` — or ``None``
    for backends that model time but not content.  ``elapsed_s`` is the time
    the call is billed on the serving clock (modelled GPU seconds for the
    simulator, measured or modelled seconds for the real engine).
    ``prefix_hit_tokens`` reports how many prompt tokens a prefill attached
    from a shared prefix instead of computing (0 when sharing is off); the
    serving engine uses it to account only *unique* KV against the
    scheduler's watermarks.  ``restored_pages`` / ``restore_s`` report pages
    brought back from the cold KV tier by this call and the modeled transfer
    latency folded into ``elapsed_s`` for them.
    """

    logits: np.ndarray | None
    elapsed_s: float
    prefix_hit_tokens: int = 0
    restored_pages: int = 0
    restore_s: float = 0.0


@dataclass(frozen=True)
class SpecStepResult:
    """Outcome of one speculative verification chunk.

    ``logits`` holds one next-token distribution per chunk position —
    ``(m, vocab_size)``, where row ``j`` is the distribution after consuming
    the chunk's first ``j + 1`` tokens — or ``None`` for content-free
    backends.  ``elapsed_s`` is the chunk's billed time (one amortized
    forward over ``m`` positions, not ``m`` sequential steps — that gap *is*
    the speculation speedup).  ``chunk`` is the backend-private verified
    state to pass to ``commit_speculative``; nothing has been committed to
    the real sequence yet.
    """

    logits: np.ndarray | None
    elapsed_s: float
    chunk: object


@dataclass(frozen=True)
class SpecBatchResult:
    """Outcome of one *fused* batch of speculative verification chunks.

    ``logits[i]`` is the ``(m_i, vocab_size)`` per-position logits of batch
    member ``i`` (``None`` entries for content-free backends), bitwise equal
    to what a solo ``decode_speculative`` call would have returned;
    ``chunks[i]`` is the member's backend-private verified state for
    ``commit_speculative`` — members commit independently, so one member's
    commit failure never disturbs another.  ``elapsed_s`` bills the whole
    fused pass **once**: all members' chunk rows share a single weight pass
    per layer, which is the cross-request amortization that makes
    speculation win at saturated batching.
    """

    logits: list[np.ndarray | None]
    elapsed_s: float
    chunks: list[object]


@dataclass
class BackendWork:
    """Uniform work/latency accounting every backend maintains."""

    prefill_calls: int = 0
    prefill_tokens: int = 0
    prefill_time_s: float = 0.0
    decode_iterations: int = 0
    decode_tokens: int = 0
    decode_time_s: float = 0.0
    #: Prompt tokens served from a shared prefix (not counted in
    #: ``prefill_tokens``, which tracks *computed* prefill work).
    prefix_hit_tokens: int = 0
    #: Speculative verification chunks run (each counted in
    #: ``decode_iterations`` too, with its positions in ``decode_tokens``).
    spec_chunks: int = 0

    @property
    def total_time_s(self) -> float:
        """Total billed backend seconds (prefill + decode)."""
        return self.prefill_time_s + self.decode_time_s

    @property
    def mean_decode_batch_size(self) -> float:
        """Average number of sequences per decode iteration."""
        if self.decode_iterations == 0:
            return 0.0
        return self.decode_tokens / self.decode_iterations

    def record_prefill(self, n_tokens: int, elapsed_s: float) -> None:
        """Account one prefill call of ``n_tokens`` prompt tokens."""
        self.prefill_calls += 1
        self.prefill_tokens += n_tokens
        self.prefill_time_s += elapsed_s

    def record_decode(self, batch: int, elapsed_s: float) -> None:
        """Account one decode iteration over ``batch`` sequences."""
        self.decode_iterations += 1
        self.decode_tokens += batch
        self.decode_time_s += elapsed_s


@runtime_checkable
class InferenceBackend(Protocol):
    """What the serving front door needs from an execution engine.

    A backend owns per-sequence KV state keyed by ``seq_id``: ``prefill``
    creates it, ``decode_batch`` advances every listed sequence by one token,
    and ``release`` frees it.  ``work`` accumulates the uniform accounting.

    Implementations should also expose a ``produces_logits`` class attribute:
    ``True`` when calls return real next-token distributions (requests must
    then carry ``prompt_token_ids``), ``False`` for content-free cost models
    (the serving engine records placeholder tokens and refuses ``generate()``).

    Optionally, a backend may expose ``kv_tokens_in_use() -> int`` reporting
    the KV tokens it currently materialises across all live sequences; the
    serving engine surfaces it as the ground-truth occupancy gauge in
    :meth:`~repro.serving.engine.ServingEngine.live_gauges` (the scheduler's
    own count is an estimate that excludes shared prefix pages).

    Backends that support disaggregated serving additionally expose the
    migration hooks ``handoff_out(seq_id) -> KVHandoff`` (extract a
    sequence's KV and release it locally; a second hand-off of the same
    sequence raises ``KeyError``) and ``handoff_in(seq_id, handoff)``
    (install a migrated sequence; an existing ``seq_id`` raises
    ``ValueError``).  Neither hook bills time — the cluster layer charges the
    modeled transfer latency on the receiving replica's clock.

    Backends that support speculative decoding expose
    ``decode_speculative(seq_id, token_ids) -> SpecStepResult`` (verify a
    chunk of candidate tokens in one amortized forward pass, without
    committing anything) and ``commit_speculative(seq_id, chunk, n_commit)``
    (append the accepted prefix; must leave the sequence bit-identical to
    having decoded those tokens one at a time).  Both raise
    :class:`~repro.core.engine.DecodeOutOfPagesError` cleanly — the real
    sequence is never left half-advanced.  A backend may additionally expose
    ``decode_speculative_batch(requests) -> SpecBatchResult`` — one *fused*
    verification pass over every speculating sequence's chunk, billed once
    (cross-request amortization) with per-member results bitwise equal to
    solo calls; the serving engine prefers it whenever two or more batch
    members speculate in the same step.
    """

    work: BackendWork
    produces_logits: bool

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Ingest a prompt for a fresh sequence."""
        ...

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Advance each sequence by one token (one continuous-batching iteration)."""
        ...

    def release(self, seq_id: object) -> None:
        """Free all state held for ``seq_id``."""
        ...


class SimulatedBackend:
    """Cost-model backend: bills modelled GPU time, produces no logits.

    This is the original cost-model-only serving loop re-expressed as one
    configuration of the backend API: prefill is billed the modelled
    time-to-first-token of the prompt, a decode iteration is billed the
    modelled step latency at the longest context in the batch.
    """

    produces_logits = False

    def __init__(
        self,
        latency: LatencySimulator,
        prefix_block_tokens: int | None = None,
        tiering: KVTieringConfig | None = None,
    ) -> None:
        """``prefix_block_tokens`` enables a prefix-cache cost model.

        When set, the backend keeps a token-block index of every prompt it
        has prefilled (the same :class:`~repro.kvcache.prefix_index.PrefixIndex`
        the real engine uses, with no pages to pin); a later prompt is billed
        only for its unmatched tail.  Requests must then carry real
        ``prompt_token_ids`` — length-only requests all share the placeholder
        prompt and would spuriously match each other; the serving engine
        rejects them at submit via :attr:`requires_token_content`.

        ``tiering`` enables the cold KV tier: :meth:`demote` parks a
        sequence's modeled KV host-side and :meth:`restore` brings it back,
        billing the config's transfer cost model.
        """
        if prefix_block_tokens is not None and prefix_block_tokens < 1:
            raise ValueError("prefix_block_tokens must be >= 1 when set")
        self.latency = latency
        self.prefix_block_tokens = prefix_block_tokens
        self.tiering = tiering
        self.work = BackendWork()
        self._context: dict[object, int] = {}
        self._cold = ColdTierStore(tiering.max_cold_pages) if tiering is not None else None
        # Per-sequence attend stamps for LRU victim ranking (the simulator has
        # no allocator access clock; a monotone counter plays its role).
        self._attend_clock = 0
        self._attend: dict[object, int] = {}
        self._prefix_index = (
            PrefixIndex(page_size=prefix_block_tokens)
            if prefix_block_tokens is not None
            else None
        )

    @property
    def requires_token_content(self) -> bool:
        """Whether requests must carry real token ids (prefix model enabled)."""
        return self._prefix_index is not None

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Bill the modelled time-to-first-token for a fresh sequence's prompt.

        With the prefix-cache cost model enabled, only the unmatched prompt
        tail is billed and the hit is reported in the result.
        """
        if seq_id in self._context:
            raise ValueError(f"sequence {seq_id!r} already prefilled")
        token_ids = np.asarray(token_ids)
        n = int(token_ids.size)
        if n == 0:
            raise ValueError("token_ids must be non-empty")
        hit = 0
        if self._prefix_index is not None:
            block = self.prefix_block_tokens
            limit = (n - 1) // block * block  # leave one token computed
            hit = len(self._prefix_index.match(token_ids, max_tokens=limit)) * block
            n_blocks = n // block
            self._prefix_index.register(
                token_ids, [None] * n_blocks, lambda i: None, lambda i: (None, None)
            )
        elapsed = self.latency.prefill_latency(n - hit)
        self._context[seq_id] = n
        self._attend_clock += 1
        self._attend[seq_id] = self._attend_clock
        self.work.record_prefill(n - hit, elapsed)
        self.work.prefix_hit_tokens += hit
        return StepResult(logits=None, elapsed_s=elapsed, prefix_hit_tokens=hit)

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Bill one decode iteration at the longest context in the batch."""
        if not seq_ids:
            raise ValueError("decode_batch requires at least one sequence")
        for seq_id in seq_ids:
            if seq_id not in self._context:
                raise KeyError(f"unknown sequence {seq_id!r}")
        context = max(self._context[s] for s in seq_ids)
        elapsed = self.latency.decode_step_latency(context, batch=len(seq_ids))
        self._attend_clock += 1
        for seq_id in seq_ids:
            self._context[seq_id] += 1
            self._attend[seq_id] = self._attend_clock
        self.work.record_decode(len(seq_ids), elapsed)
        return StepResult(logits=None, elapsed_s=elapsed)

    def decode_speculative(
        self, seq_id: object, token_ids: list[int] | np.ndarray
    ) -> SpecStepResult:
        """Bill one amortized verification chunk of ``m`` candidate positions.

        The chunk is billed like a decode iteration of batch ``m`` at the
        sequence's current context — one weight pass amortized over the
        chunk, which is exactly the cost structure that makes speculation a
        decode-latency win.  No modelled state advances until
        :meth:`commit_speculative`.
        """
        if seq_id not in self._context:
            raise KeyError(f"unknown sequence {seq_id!r}")
        m = int(np.asarray(token_ids).size)
        if m == 0:
            raise ValueError("decode_speculative requires at least one token")
        context = self._context[seq_id]
        elapsed = self.latency.decode_step_latency(context, batch=m)
        self._attend_clock += 1
        self._attend[seq_id] = self._attend_clock
        self.work.record_decode(m, elapsed)
        self.work.spec_chunks += 1
        return SpecStepResult(logits=None, elapsed_s=elapsed, chunk=m)

    def decode_speculative_batch(self, requests: list) -> SpecBatchResult:
        """Bill one fused verification pass over every member's chunk rows.

        The fused pass is billed as **one** decode iteration of batch
        ``sum(m_i)`` at the longest member context — all members share a
        single weight load and per-step overhead per layer, instead of each
        paying its own as the per-sequence :meth:`decode_speculative` loop
        does.  That gap is exactly the cross-request amortization a saturated
        batch loses under per-sequence verification.
        """
        if not requests:
            raise ValueError("decode_speculative_batch requires at least one sequence")
        ms = []
        for seq_id, token_ids in requests:
            if seq_id not in self._context:
                raise KeyError(f"unknown sequence {seq_id!r}")
            m = int(np.asarray(token_ids).size)
            if m == 0:
                raise ValueError("decode_speculative requires at least one token")
            ms.append(m)
        context = max(self._context[seq_id] for seq_id, _ in requests)
        total = sum(ms)
        elapsed = self.latency.decode_step_latency(context, batch=total)
        self._attend_clock += 1
        for seq_id, _ in requests:
            self._attend[seq_id] = self._attend_clock
        self.work.record_decode(total, elapsed)
        self.work.spec_chunks += len(requests)
        return SpecBatchResult(logits=[None] * len(requests), elapsed_s=elapsed, chunks=ms)

    def commit_speculative(self, seq_id: object, chunk: object, n_commit: int) -> None:
        """Advance the modelled context by the accepted prefix length."""
        if seq_id not in self._context:
            raise KeyError(f"unknown sequence {seq_id!r}")
        if not 1 <= int(n_commit) <= int(chunk):
            raise ValueError(f"n_commit must be in [1, {chunk}], got {n_commit}")
        self._context[seq_id] += int(n_commit)

    def kv_tokens_in_use(self) -> int:
        """Modelled KV tokens across all live sequences (live-gauge support)."""
        return int(sum(self._context.values()))

    def handoff_out(self, seq_id: object) -> KVHandoff:
        """Extract the sequence's modelled KV for migration and drop it here.

        The hand-off geometry comes from the cost model's model config and
        system policy, so :class:`~repro.gpu.cost_model.TransferCostModel`
        latencies line up with the same timing units every other
        ``SimulatedBackend`` call bills.  Raises ``KeyError`` for an unknown
        (or already handed-off) sequence.
        """
        if seq_id not in self._context:
            raise KeyError(f"unknown sequence {seq_id!r}")
        n_tokens = self._context.pop(seq_id)
        model = self.latency.model
        policy = self.latency.policy
        page_size = policy.page_size
        return KVHandoff(
            n_tokens=n_tokens,
            n_pages=-(-n_tokens // page_size),
            page_size=page_size,
            n_layers=model.n_layers,
            n_kv_heads=model.n_kv_heads,
            head_dim=model.head_dim,
            kv_bits=policy.kv_bits,
            payload=n_tokens,
        )

    def handoff_in(self, seq_id: object, handoff: KVHandoff) -> None:
        """Adopt a migrated sequence's modelled context length.

        Raises ``ValueError`` when ``seq_id`` already exists on this backend.
        """
        if seq_id in self._context:
            raise ValueError(f"sequence {seq_id!r} already exists")
        self._context[seq_id] = int(handoff.payload)

    # -- cold KV tier ------------------------------------------------------------
    def last_attended(self, seq_id: object) -> int:
        """Monotone stamp of the sequence's last prefill/decode (0 = never)."""
        return self._attend.get(seq_id, 0)

    def demotion_order(self, seq_ids: list[object]) -> list[object]:
        """Rank live demotion candidates, least-recently-attended first."""
        live = [s for s in seq_ids if s in self._context]
        return sorted(live, key=lambda s: self._attend.get(s, 0))

    def demote(self, seq_id: object) -> int:
        """Park a sequence's modeled KV in the cold tier; returns pages moved.

        Raises :class:`~repro.kvcache.tiering.ColdTierError` when tiering is
        off or the cold tier cannot take the pages (the engine then falls
        back to classic recompute preemption), ``KeyError`` for an unknown
        sequence.  The capacity check runs *before* the hand-off so a refusal
        leaves the sequence untouched.
        """
        if self.tiering is None or self._cold is None:
            raise ColdTierError("KV tiering is not enabled on this backend")
        if seq_id not in self._context:
            raise KeyError(f"unknown sequence {seq_id!r}")
        n_pages = -(-self._context[seq_id] // self.latency.policy.page_size)
        if not self._cold.can_accept(n_pages):
            raise ColdTierError(
                f"cold tier full: cannot accept {n_pages} pages for {seq_id!r}"
            )
        handoff = self.handoff_out(seq_id)
        self._cold.put(seq_id, handoff, n_pages=handoff.n_pages, n_tokens=handoff.n_tokens)
        self._attend.pop(seq_id, None)
        return handoff.n_pages

    def restore(self, seq_id: object) -> StepResult:
        """Re-attach a demoted sequence, billing the modeled restore transfer.

        Raises ``KeyError`` when the sequence has no cold entry.
        """
        if self._cold is None:
            raise ColdTierError("KV tiering is not enabled on this backend")
        entry = self._cold.pop(seq_id)
        handoff: KVHandoff = entry.payload
        try:
            self.handoff_in(seq_id, handoff)
        except Exception:
            self._cold.unpop(seq_id, entry)
            raise
        cold_bits = self.tiering.cold_bits(handoff.kv_bits)
        elapsed = self.tiering.restore_cost.transfer_latency_s(
            handoff.n_pages, handoff.page_size, handoff.n_layers,
            handoff.n_kv_heads, handoff.head_dim, cold_bits,
        )
        self._attend_clock += 1
        self._attend[seq_id] = self._attend_clock
        return StepResult(
            logits=None,
            elapsed_s=elapsed,
            restored_pages=handoff.n_pages,
            restore_s=elapsed,
        )

    def cold_pages(self) -> int:
        """Pages currently parked in the cold tier (live-gauge support)."""
        return self._cold.num_pages if self._cold is not None else 0

    def cold_kv_tokens(self) -> int:
        """KV tokens currently parked in the cold tier (live-gauge support)."""
        return self._cold.num_tokens if self._cold is not None else 0

    @property
    def cold_store(self) -> ColdTierStore | None:
        """The cold tier itself (``None`` when tiering is off)."""
        return self._cold

    def release(self, seq_id: object) -> None:
        """Forget the sequence's modelled context length (idempotent).

        Any cold-tier snapshot is dropped too (abort of a demoted request).
        """
        self._context.pop(seq_id, None)
        self._attend.pop(seq_id, None)
        if self._cold is not None:
            self._cold.discard(seq_id)


class LServeBackend:
    """Real-compute backend: drives an :class:`LServeEngine`.

    Tokens flow through the actual sparse-attention model.  Time is billed
    from ``latency`` (the GPU cost model) when provided — keeping the virtual
    clock comparable with :class:`SimulatedBackend` runs — and from measured
    wall-clock time otherwise.  ``prefill_chunk_size`` enables the engine's
    chunked prefill.
    """

    produces_logits = True

    def __init__(
        self,
        engine: LServeEngine,
        latency: LatencySimulator | None = None,
        prefill_chunk_size: int | None = None,
        tiering: KVTieringConfig | None = None,
    ) -> None:
        """``tiering`` enables the cold KV tier on this backend.

        :meth:`demote` then round-trips real page images (bit-exact in
        ``"offload"`` mode, re-quantized in ``"quantized"`` mode) through a
        host-side :class:`~repro.kvcache.tiering.ColdTierStore`, and idle
        prefix-index pages demote before they are hard-dropped
        (``tiering.prefix_demotion``).
        """
        if prefill_chunk_size is not None:
            q_block = engine.config.q_block_size
            page = engine.config.physical_page_size
            if (
                prefill_chunk_size < 1
                or prefill_chunk_size % q_block != 0
                or prefill_chunk_size % page != 0
            ):
                raise ValueError(
                    f"prefill_chunk_size ({prefill_chunk_size}) must be a positive "
                    f"multiple of q_block_size ({q_block}) and physical_page_size "
                    f"({page}); misaligned chunks silently tile the sparse masks at "
                    "shifted boundaries and change model outputs"
                )
        self.engine = engine
        self.latency = latency
        self.prefill_chunk_size = prefill_chunk_size
        self.tiering = tiering
        self.work = BackendWork()
        self._live_seq_ids: set = set()
        self._cold = ColdTierStore(tiering.max_cold_pages) if tiering is not None else None
        self._eviction = (
            make_eviction_policy(tiering.eviction_policy) if tiering is not None else None
        )
        if tiering is not None and tiering.prefix_demotion:
            engine.prefix_demote_enabled = True

    @property
    def stats(self):
        """The wrapped engine's :class:`~repro.core.engine.EngineStats`."""
        return self.engine.stats

    def prefill(self, seq_id: object, token_ids: np.ndarray) -> StepResult:
        """Run real (optionally chunked) prefill; returns last-position logits.

        When the engine's prefix cache attaches part of the prompt, only the
        computed tail is billed (modelled time scales with computed tokens)
        and the hit size is reported in the result.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hits_before = self.engine.stats.prefix_hit_tokens
        restored_before = self.engine.stats.restored_prefix_pages
        wall_start = time.perf_counter()
        logits = self.engine.prefill(seq_id, token_ids, chunk_size=self.prefill_chunk_size)
        wall = time.perf_counter() - wall_start
        hit = self.engine.stats.prefix_hit_tokens - hits_before
        computed = int(token_ids.size) - hit
        elapsed = (
            self.latency.prefill_latency(computed) if self.latency is not None else wall
        )
        # Prefix pages re-attached from the cold tier owe their restore
        # transfer on the serving clock (the hit tokens they cover were
        # *not* billed as computed prefill).
        restored = self.engine.stats.restored_prefix_pages - restored_before
        restore_s = 0.0
        if restored > 0 and self.tiering is not None:
            restore_s = self.tiering.restore_cost.transfer_latency_s(
                restored, *self._page_geometry(),
            )
            elapsed += restore_s
        self.work.record_prefill(computed, elapsed)
        self.work.prefix_hit_tokens += hit
        self._live_seq_ids.add(seq_id)
        return StepResult(
            logits=logits[-1],
            elapsed_s=elapsed,
            prefix_hit_tokens=hit,
            restored_pages=restored,
            restore_s=restore_s,
        )

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> StepResult:
        """Advance every sequence by one token through the real engine."""
        context = max(self.engine.context_length(s) for s in seq_ids)
        wall_start = time.perf_counter()
        logits = self.engine.decode_batch(seq_ids, token_ids)
        wall = time.perf_counter() - wall_start
        elapsed = (
            self.latency.decode_step_latency(context, batch=len(seq_ids))
            if self.latency is not None
            else wall
        )
        self.work.record_decode(len(seq_ids), elapsed)
        return StepResult(logits=logits, elapsed_s=elapsed)

    def decode_speculative(
        self, seq_id: object, token_ids: list[int] | np.ndarray
    ) -> SpecStepResult:
        """Verify a candidate chunk through the real engine's scratch fork.

        Returns per-position logits bit-identical to sequential decode (see
        :meth:`~repro.core.engine.LServeEngine.decode_speculative`).  Billed
        as one decode iteration of batch ``m`` at the pre-chunk context when
        the cost model is attached (the chunk's GEMMs are amortized exactly
        like a batched decode), measured wall-clock otherwise.
        """
        context = self.engine.context_length(seq_id)
        m = int(np.asarray(token_ids).size)
        wall_start = time.perf_counter()
        logits, chunk = self.engine.decode_speculative(seq_id, token_ids)
        wall = time.perf_counter() - wall_start
        elapsed = (
            self.latency.decode_step_latency(context, batch=m)
            if self.latency is not None
            else wall
        )
        self.work.record_decode(m, elapsed)
        self.work.spec_chunks += 1
        return SpecStepResult(logits=logits, elapsed_s=elapsed, chunk=chunk)

    def decode_speculative_batch(self, requests: list) -> SpecBatchResult:
        """Verify every member's chunk in one fused engine pass.

        Per-member logits and chunks are bitwise identical to solo
        :meth:`decode_speculative` calls (see
        :meth:`~repro.core.engine.LServeEngine.decode_speculative_batch`);
        the cost model bills the whole pass **once** as a decode iteration of
        batch ``sum(m_i)`` at the longest pre-chunk context — one shared
        weight pass instead of one per member.  A pool too small for some
        members raises :class:`~repro.core.engine.DecodeOutOfPagesError`
        naming them, with every sequence untouched.
        """
        if not requests:
            raise ValueError("decode_speculative_batch requires at least one sequence")
        context = max(self.engine.context_length(s) for s, _ in requests)
        total = sum(int(np.asarray(t).size) for _, t in requests)
        wall_start = time.perf_counter()
        results = self.engine.decode_speculative_batch(requests)
        wall = time.perf_counter() - wall_start
        elapsed = (
            self.latency.decode_step_latency(context, batch=total)
            if self.latency is not None
            else wall
        )
        self.work.record_decode(total, elapsed)
        self.work.spec_chunks += len(requests)
        return SpecBatchResult(
            logits=[logits for logits, _ in results],
            elapsed_s=elapsed,
            chunks=[chunk for _, chunk in results],
        )

    def commit_speculative(self, seq_id: object, chunk: object, n_commit: int) -> None:
        """Append the accepted prefix to the real sequence (bit-exact replay).

        Commit is bookkeeping (saved-row appends + selector replay), not a
        forward pass — no time is billed, matching the hand-off hooks.
        """
        self.engine.commit_speculative(seq_id, chunk, n_commit)

    def kv_tokens_in_use(self) -> int:
        """KV tokens the engine holds across live sequences (live-gauge support)."""
        return int(
            sum(self.engine.context_length(s) for s in self._live_seq_ids)
        )

    def handoff_out(self, seq_id: object) -> KVHandoff:
        """Export the sequence's real KV (bit-exact page images) and release it.

        The local dense pages are decref'd to zero (freed unless the prefix
        index pins them); the snapshot travels in the hand-off payload.
        Raises ``KeyError`` for an unknown (or already handed-off) sequence.
        """
        engine = self.engine
        n_tokens = engine.context_length(seq_id)  # KeyError when unknown
        export = engine.handoff_out(seq_id)
        self._live_seq_ids.discard(seq_id)
        cfg = engine.model.config
        dense = export.dense
        return KVHandoff(
            n_tokens=n_tokens,
            n_pages=export.n_pages,
            page_size=engine.config.physical_page_size,
            n_layers=cfg.n_layers,
            n_kv_heads=dense.n_kv_heads if dense is not None else cfg.n_kv_heads,
            head_dim=cfg.head_dim,
            kv_bits=engine.config.kv_bits,
            payload=export,
        )

    def handoff_in(self, seq_id: object, handoff: KVHandoff) -> None:
        """Install a migrated sequence on this backend's engine.

        Fresh pages are attached on the local allocator (refcount 1 each) and
        the page images bit-copied, so decode continues numerically identical
        to a local prefill.  Raises ``ValueError`` when ``seq_id`` already
        exists.
        """
        self.engine.handoff_in(seq_id, handoff.payload)
        self._live_seq_ids.add(seq_id)

    # -- cold KV tier ------------------------------------------------------------
    def _page_geometry(self) -> tuple[int, int, int, int, int]:
        """``(page_size, n_layers, n_kv_heads, head_dim, cold_bits)`` for restores."""
        cfg = self.engine.model.config
        dense = self.engine.cache.dense_cache
        n_kv_heads = dense.config.n_kv_heads if dense is not None else cfg.n_kv_heads
        cold_bits = (
            self.tiering.cold_bits(self.engine.config.kv_bits)
            if self.tiering is not None
            else self.engine.config.kv_bits
        )
        return (
            self.engine.config.physical_page_size,
            cfg.n_layers,
            n_kv_heads,
            cfg.head_dim,
            cold_bits,
        )

    def last_attended(self, seq_id: object) -> int:
        """Allocator access-clock stamp of the sequence's last attended KV read."""
        return self.engine.last_attended(seq_id)

    def demotion_order(self, seq_ids: list[object]) -> list[object]:
        """Rank live demotion candidates via the configured eviction policy.

        Owners holding pinned (prefix-index) pages are filtered out by the
        policy — those sequences fall back to recompute preemption.
        """
        live = [s for s in seq_ids if s in self._live_seq_ids]
        dense = self.engine.cache.dense_cache
        if dense is None or self._eviction is None:
            return live
        owners = {s: dense.sequence_pages(s) for s in live}
        return self._eviction.order(dense.allocator, owners)

    def demote(self, seq_id: object) -> int:
        """Move a sequence's real KV pages to the cold tier; returns pages moved.

        The hot pages return to the pool.  In ``"quantized"`` mode the parked
        dense page images are round-tripped through ``cold_kv_bits``
        quantization (lossy); ``"offload"`` keeps them bit-exact.  The
        sequence's cached page selections travel with the snapshot so a later
        :meth:`restore` resumes with the exact reuse-interval phase — without
        that, restored decode outputs would diverge from an uninterrupted
        run.  Raises :class:`~repro.kvcache.tiering.ColdTierError` when
        tiering is off or the tier cannot take the pages (checked *before*
        any state is touched), ``KeyError`` for an unknown sequence.
        """
        if self.tiering is None or self._cold is None:
            raise ColdTierError("KV tiering is not enabled on this backend")
        self.engine.context_length(seq_id)  # KeyError when unknown
        dense = self.engine.cache.dense_cache
        expected_pages = len(dense.sequence_pages(seq_id)) if dense is not None else 0
        if not self._cold.can_accept(expected_pages):
            raise ColdTierError(
                f"cold tier full: cannot accept {expected_pages} pages for {seq_id!r}"
            )
        selector_state = self.engine.selector.export_sequence(seq_id)
        handoff = self.handoff_out(seq_id)
        export = handoff.payload
        if self.tiering.mode == "quantized" and export.dense is not None:
            bits = self.tiering.cold_kv_bits
            export.dense.k_pages = compress_page_images(export.dense.k_pages, bits)
            export.dense.v_pages = compress_page_images(export.dense.v_pages, bits)
        self._cold.put(
            seq_id,
            (handoff, selector_state),
            n_pages=handoff.n_pages,
            n_tokens=handoff.n_tokens,
        )
        return handoff.n_pages

    def restore(self, seq_id: object) -> StepResult:
        """Re-attach a demoted sequence's pages, billing the restore transfer.

        Atomic: if the pool cannot hold the pages
        (:class:`~repro.kvcache.allocator.OutOfPagesError`), the snapshot is
        reinstalled in the cold tier and the error propagates — the request
        simply stays demoted.  Raises ``KeyError`` when no cold entry exists.
        """
        if self.tiering is None or self._cold is None:
            raise ColdTierError("KV tiering is not enabled on this backend")
        entry = self._cold.pop(seq_id)
        handoff, selector_state = entry.payload
        try:
            self.handoff_in(seq_id, handoff)
        except Exception:
            self._cold.unpop(seq_id, entry)
            raise
        self.engine.selector.import_sequence(selector_state)
        elapsed = self.tiering.restore_cost.transfer_latency_s(
            handoff.n_pages, *self._page_geometry(),
        )
        return StepResult(
            logits=None,
            elapsed_s=elapsed,
            restored_pages=handoff.n_pages,
            restore_s=elapsed,
        )

    def cold_pages(self) -> int:
        """Pages currently parked in the cold tier (live-gauge support)."""
        return self._cold.num_pages if self._cold is not None else 0

    def cold_kv_tokens(self) -> int:
        """KV tokens currently parked in the cold tier (live-gauge support)."""
        return self._cold.num_tokens if self._cold is not None else 0

    @property
    def cold_store(self) -> ColdTierStore | None:
        """The cold tier itself (``None`` when tiering is off)."""
        return self._cold

    def release(self, seq_id: object) -> None:
        """Free the engine's KV pages and cached page selections for ``seq_id``.

        A demoted sequence's cold snapshot is dropped too (abort path); a
        sequence that only has a cold entry holds no engine state, so the
        engine release is skipped for it.
        """
        had_cold = self._cold is not None and self._cold.discard(seq_id)
        if seq_id in self._live_seq_ids:
            self._live_seq_ids.discard(seq_id)
            self.engine.release(seq_id)
        elif not had_cold:
            self.engine.release(seq_id)
