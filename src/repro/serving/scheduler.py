"""Policy-driven preemptive continuous-batching scheduler.

Models the iteration-level scheduling behaviour of vLLM / Orca / LServe with
three orthogonal knobs:

* **Admission policy** — which waiting request is admitted next.  Pluggable
  via :class:`SchedulingPolicy`: FCFS (arrival order, no overtaking),
  shortest-prompt-first (SJF on the prompt length), and priority classes
  (:attr:`~repro.serving.request.Request.priority`, lower = more urgent).
* **Best-effort KV admission with watermarks** — instead of reserving
  ``prompt + max_new_tokens`` up front (whole-budget reservation, which lets
  one long-context request starve the pool), admission only requires the
  request's *materialised* KV (prompt, plus already-generated tokens when
  resuming) to fit under :attr:`SchedulerConfig.kv_high_watermark`.
  Generation growth is not reserved, so the pool can overcommit.
* **Preemption under KV pressure** — when the next decode iteration would not
  fit in ``kv_token_capacity``, running requests are evicted (recompute style:
  their KV is released and rebuilt on re-admission) until the iteration fits
  *and* usage has drained to :attr:`SchedulerConfig.kv_low_watermark`.  The
  low watermark is hysteresis: draining below the trigger point keeps the
  next few iterations from immediately re-triggering a preemption storm.

The scheduler only moves requests between queues; the
:class:`~repro.serving.engine.ServingEngine` owns the status transitions and
the backend KV release/rebuild that make preemption real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.request import Request, RequestState, RequestStatus

__all__ = [
    "SchedulerConfig",
    "SchedulingPolicy",
    "FCFSPolicy",
    "ShortestPromptFirstPolicy",
    "PriorityPolicy",
    "POLICIES",
    "make_policy",
    "ContinuousBatchingScheduler",
]


class SchedulingPolicy:
    """Order of admission (and of preemption victims) for waiting requests.

    A policy is a pure ordering: :meth:`admission_key` ranks waiting requests
    (smallest key is admitted first) and :meth:`victim_order` ranks running
    requests for eviction under KV pressure.  The default victim order is the
    reverse of the admission order — the request the policy values least is
    preempted first; policies may override it (SJF evicts by materialised KV
    instead).
    """

    #: Registry name of the policy (the ``SchedulerConfig.policy`` string).
    name: str = "abstract"

    def admission_key(self, state: RequestState) -> tuple:
        """Sort key for the waiting queue; the smallest key is admitted next."""
        raise NotImplementedError

    def victim_order(self, states: list[RequestState]) -> list[RequestState]:
        """Running requests ordered most-evictable first (reverse admission order)."""
        return sorted(states, key=self.admission_key, reverse=True)


class FCFSPolicy(SchedulingPolicy):
    """First-come-first-served: strict submission order, no overtaking.

    A preempted request keeps its original submission number, so it re-enters
    ahead of every later arrival.  Victims are chosen newest-first.
    """

    name = "fcfs"

    def admission_key(self, state: RequestState) -> tuple:
        """Order by submission sequence number (arrival order)."""
        return (state.submit_seq,)


class ShortestPromptFirstPolicy(SchedulingPolicy):
    """Shortest-prompt-first (SJF on prompt length, FCFS tie-break).

    Short requests overtake long ones at admission, so a long-context request
    at the head of the queue cannot head-of-line-block short interactive
    traffic.  The flip side is that a *continuous* stream of short requests
    can starve a long one indefinitely — this policy deliberately does not
    age requests; use ``"fcfs"`` or ``"priority"`` when long-job liveness
    matters more than short-job latency.  Victims are largest-materialised-KV
    first (prompt plus generated tokens), so each eviction frees the most
    pages.
    """

    name = "sjf"

    def admission_key(self, state: RequestState) -> tuple:
        """Order by prompt length, then submission order."""
        return (state.request.prompt_tokens, state.submit_seq)

    def victim_order(self, states: list[RequestState]) -> list[RequestState]:
        """Largest materialised KV first: each eviction frees the most pages."""
        return sorted(
            states, key=lambda s: (s.resume_kv_tokens, s.submit_seq), reverse=True
        )


class PriorityPolicy(SchedulingPolicy):
    """Priority classes: lower :attr:`Request.priority` values admit first.

    Within a class, order is FCFS.  Victims are lowest-importance-first
    (numerically highest priority, newest submission breaks ties), so when
    KV pressure forces an eviction, background traffic is preempted before
    interactive traffic and never the reverse.  Note that preemption is only
    ever *triggered* by KV pressure — a newly arrived urgent request does not
    evict a running background one; it merely goes to the head of the queue.
    """

    name = "priority"

    def admission_key(self, state: RequestState) -> tuple:
        """Order by priority class (lower = more urgent), then submission order."""
        return (state.request.priority, state.submit_seq)


#: Registry of built-in policies, keyed by :attr:`SchedulingPolicy.name`.
POLICIES: dict[str, type[SchedulingPolicy]] = {
    cls.name: cls for cls in (FCFSPolicy, ShortestPromptFirstPolicy, PriorityPolicy)
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered scheduling policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown scheduling policy {name!r}; known policies: {known}") from None


@dataclass(frozen=True)
class SchedulerConfig:
    """Static limits and knobs of the scheduler.

    ``max_batch_size`` caps the number of concurrently running requests.
    ``kv_token_capacity`` is the KV page pool, in tokens.

    Admission is **best-effort**: a request is admitted when its materialised
    KV (prompt tokens, plus already-generated tokens when resuming from
    preemption) fits under ``kv_high_watermark`` tokens — the generation
    budget is *not* reserved up front, so concurrent decode growth can
    overcommit the pool and trigger preemption.  (Before the watermark
    design, admission reserved the whole ``prompt + max_new_tokens`` budget;
    that reservation no longer exists.)  When the next decode iteration would
    exceed ``kv_token_capacity``, running requests are preempted until usage
    drains to ``kv_low_watermark`` tokens.

    Watermark invariant (validated): ``0 <= kv_low_watermark <
    kv_high_watermark <= kv_token_capacity``.  Defaults are 50% / 90% of
    capacity.  Keep ``kv_token_capacity - kv_high_watermark`` at least
    ``max_batch_size`` tokens so a freshly admitted batch can always run one
    decode iteration before any preemption triggers.

    ``policy`` selects the admission policy by registry name
    (``"fcfs"``, ``"sjf"``, ``"priority"`` — see :data:`POLICIES`).
    """

    max_batch_size: int = 8
    kv_token_capacity: int = 1_048_576
    policy: str = "fcfs"
    kv_high_watermark: int | None = None
    kv_low_watermark: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.kv_token_capacity <= 0:
            raise ValueError("kv_token_capacity must be positive")
        make_policy(self.policy)  # validates the policy name
        if self.kv_high_watermark is None:
            object.__setattr__(
                self, "kv_high_watermark", max(1, int(0.9 * self.kv_token_capacity))
            )
        if self.kv_high_watermark <= 0:
            raise ValueError(
                f"kv_high_watermark ({self.kv_high_watermark}) must be positive"
            )
        if self.kv_low_watermark is None:
            object.__setattr__(
                self,
                "kv_low_watermark",
                min(int(0.5 * self.kv_token_capacity), self.kv_high_watermark - 1),
            )
        if self.kv_low_watermark < 0:
            raise ValueError(
                f"kv_low_watermark ({self.kv_low_watermark}) must be non-negative"
            )
        if self.kv_low_watermark >= self.kv_high_watermark:
            raise ValueError(
                f"kv_low_watermark ({self.kv_low_watermark}) must be strictly below "
                f"kv_high_watermark ({self.kv_high_watermark}); the gap is the "
                "hysteresis band that stops admission/preemption thrashing"
            )
        if self.kv_high_watermark > self.kv_token_capacity:
            raise ValueError(
                f"kv_high_watermark ({self.kv_high_watermark}) must not exceed "
                f"kv_token_capacity ({self.kv_token_capacity})"
            )

    def make_policy(self) -> SchedulingPolicy:
        """Instantiate this config's admission policy."""
        return make_policy(self.policy)

    def validate_request_fits(self, request: Request) -> None:
        """Reject a request whose worst-case KV could never fit the pool.

        ``prompt + max_new_tokens <= kv_token_capacity`` is the bound every
        capacity-safety argument in the scheduler leans on; both the serving
        engine (at submit) and the scheduler (at enqueue) enforce it through
        this single check.
        """
        need = request.prompt_tokens + request.max_new_tokens
        if need > self.kv_token_capacity:
            raise ValueError(
                f"request {request.request_id!r} needs {need} KV tokens but "
                f"kv_token_capacity is {self.kv_token_capacity}; it could "
                "never be admitted"
            )


class ContinuousBatchingScheduler:
    """Preemptive continuous batching under a pluggable admission policy.

    Requests live in three pools: *waiting* (not yet admitted, or preempted
    and awaiting re-admission — ordered by the policy), *running* (admitted;
    their KV is materialised once prefilled), and *finished*.  The scheduler
    decides admission (:meth:`schedule_prefill`) and eviction
    (:meth:`preempt_for_pressure`); the serving engine performs the backend
    work those decisions imply.
    """

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self.policy = config.make_policy()
        self._waiting: list[RequestState] = []
        self._running: list[RequestState] = []
        self._finished: list[RequestState] = []
        self._submit_counter = 0
        self._total_preemptions = 0
        self._total_demotions = 0

    # -- queue management -------------------------------------------------------
    def submit(self, request: Request) -> RequestState:
        """Wrap a request in a fresh state and enqueue it."""
        return self.submit_state(RequestState(request=request))

    def submit_state(self, state: RequestState) -> RequestState:
        """Enqueue an externally owned request state.

        First-time submissions must satisfy ``prompt + max_new_tokens <=
        kv_token_capacity`` (anything larger could never run even alone —
        every capacity-safety argument below leans on this bound) and are
        stamped with a monotonically increasing submission number (the FCFS
        order); re-submissions of preempted states keep their original number
        so they cannot lose their place to later arrivals.
        """
        if state.submit_seq is None:
            self.config.validate_request_fits(state.request)
            state.submit_seq = self._submit_counter
            self._submit_counter += 1
        self._waiting.append(state)
        return state

    @property
    def waiting(self) -> list[RequestState]:
        """Waiting (and preempted) requests in the policy's admission order."""
        return sorted(self._waiting, key=self.policy.admission_key)

    @property
    def waiting_count(self) -> int:
        """Number of waiting (and preempted) requests, without sorting a copy.

        Gauge/observability paths should use this instead of
        ``len(scheduler.waiting)`` — the :attr:`waiting` property sorts the
        whole queue for its admission-order contract.
        """
        return len(self._waiting)

    @property
    def running(self) -> list[RequestState]:
        """Requests currently admitted to the running batch."""
        return list(self._running)

    @property
    def finished(self) -> list[RequestState]:
        """Requests that have been retired from the running batch."""
        return list(self._finished)

    @property
    def has_work(self) -> bool:
        """Whether any request is still waiting or running."""
        return bool(self._waiting or self._running)

    @property
    def total_preemptions(self) -> int:
        """Preemption events since this scheduler was created."""
        return self._total_preemptions

    @property
    def total_demotions(self) -> int:
        """Cold-tier demotion events since this scheduler was created.

        Demotions are evictions whose KV moved to the cold tier instead of
        being released for recompute; they are counted separately from
        :attr:`total_preemptions` because their cost on re-admission is a
        transfer, not a recompute.
        """
        return self._total_demotions

    def reclassify_demotion_as_preemption(self, n: int = 1) -> None:
        """Recount ``n`` demotions as preemptions.

        The engine calls this when a victim taken with ``demote=True`` could
        not actually be demoted (cold tier full) and fell back to the classic
        release-and-recompute eviction.
        """
        if n < 0 or n > self._total_demotions:
            raise ValueError(f"cannot reclassify {n} of {self._total_demotions} demotions")
        self._total_demotions -= n
        self._total_preemptions += n

    def kv_tokens_in_use(self) -> int:
        """KV tokens currently materialised by running requests."""
        return sum(s.context_length for s in self._running)

    def kv_tokens_waiting(self) -> int:
        """KV tokens the waiting (and preempted) requests will materialise.

        The admission-time footprint of everything queued — prompt plus
        already-generated tokens for preempted requests.  Together with
        :meth:`kv_tokens_in_use` this is the scheduler's outstanding KV
        demand, the size-aware load signal
        :class:`~repro.serving.metrics.LiveGauges` exports for routing.
        """
        return sum(s.resume_kv_tokens for s in self._waiting)

    # -- admission --------------------------------------------------------------
    def schedule_prefill(self) -> RequestState | None:
        """Pop the next admissible waiting request (to be prefilled), if any.

        The policy chooses the head of the queue; the head is admitted when
        its materialised KV fits under the high watermark.  When nothing is
        running the head is admitted unconditionally — anything that passed
        the submit-time ``prompt + max_new_tokens <= kv_token_capacity`` check
        can always run alone, which rules out deadlock.  Policies do not skip
        over an oversized head (no bypass), so FCFS keeps its no-overtaking
        guarantee.
        """
        if not self._waiting or len(self._running) >= self.config.max_batch_size:
            return None
        head = min(self._waiting, key=self.policy.admission_key)
        if self._running:
            projected = self.kv_tokens_in_use() + head.resume_kv_tokens
            if projected > self.config.kv_high_watermark:
                return None
        self._waiting.remove(head)
        self._running.append(head)
        return head

    # -- decode + preemption -----------------------------------------------------
    def decode_batch(self) -> list[RequestState]:
        """The requests that take part in the next decode iteration."""
        return [s for s in self._running if s.status is RequestStatus.DECODING]

    def preempt_for_pressure(
        self, victim_order=None, demote: bool = False
    ) -> list[RequestState]:
        """Evict running requests so the next decode iteration fits; may be empty.

        A decode iteration appends one KV token per decoding request.  If
        ``kv_tokens_in_use() + batch`` would exceed ``kv_token_capacity``,
        victims are taken in the policy's :meth:`~SchedulingPolicy.victim_order`
        until the iteration fits *and* usage has drained to the low watermark
        (hysteresis).  At least one decoding request always survives, which —
        together with the submit-time capacity check — guarantees forward
        progress.  Victims are moved back to the waiting queue; the caller
        (the serving engine) must release their backend KV and mark the
        states preempted.

        ``victim_order`` overrides the policy's ranking (a callable from a
        list of decoding states to the same states most-evictable first) —
        the tiering-enabled engine passes the backend's LRU-by-last-attended
        order.  With ``demote=True`` the evictions count as demotions rather
        than preemptions (the caller parks the KV in the cold tier instead of
        releasing it).
        """
        decoding = self.decode_batch()
        in_use = self.kv_tokens_in_use()
        incoming = len(decoding)
        if in_use + incoming <= self.config.kv_token_capacity:
            return []
        ordered = (
            victim_order(decoding) if victim_order is not None
            else self.policy.victim_order(decoding)
        )
        victims: list[RequestState] = []
        for victim in ordered:
            if len(decoding) - len(victims) <= 1:
                break
            victims.append(victim)
            in_use -= victim.context_length
            incoming -= 1
            if (
                in_use + incoming <= self.config.kv_token_capacity
                and in_use <= self.config.kv_low_watermark
            ):
                break
        for victim in victims:
            self._running.remove(victim)
            self._waiting.append(victim)
        if demote:
            self._total_demotions += len(victims)
        else:
            self._total_preemptions += len(victims)
        return victims

    def force_preempt(self, states: list[RequestState], demote: bool = False) -> None:
        """Evict specific running requests (backend-reported KV exhaustion).

        Token-level watermarks are an *estimate* of page-pool pressure; the
        backend's page allocator is the ground truth.  When a decode
        iteration reports that specific sequences could not reserve their
        pages, the serving engine evicts exactly those — the caller releases
        their backend KV and marks the states preempted, as with
        :meth:`preempt_for_pressure` victims.  ``demote=True`` counts the
        evictions as cold-tier demotions instead of preemptions.
        """
        for state in states:
            self._running.remove(state)
            self._waiting.append(state)
        if demote:
            self._total_demotions += len(states)
        else:
            self._total_preemptions += len(states)

    def remove(self, state: RequestState) -> bool:
        """Withdraw a request from the scheduler entirely (caller abort).

        Unlike preemption the state does not re-enter the waiting queue —
        it simply stops being the scheduler's problem.  Returns ``True`` when
        the request was running (the caller must then release its backend KV)
        and ``False`` when it was only waiting/preempted (no KV materialised).
        Raises ``ValueError`` for a request the scheduler does not hold.
        """
        if state in self._waiting:
            self._waiting.remove(state)
            return False
        if state in self._running:
            self._running.remove(state)
            return True
        raise ValueError(
            f"request {state.request.request_id!r} is not waiting or running"
        )

    def retire_finished(self) -> list[RequestState]:
        """Move finished requests out of the running batch, freeing their KV."""
        done = [s for s in self._running if s.is_finished]
        self._running = [s for s in self._running if not s.is_finished]
        self._finished.extend(done)
        return done
