"""FCFS continuous-batching scheduler with KV-memory admission control.

Models the scheduling behaviour shared by vLLM / QServe / LServe: new requests
are admitted in arrival order whenever (a) a decode batch slot is free and
(b) their KV cache fits in the remaining page pool; admitted requests are
prefilled one at a time and then join the running decode batch (iteration-level
/ continuous batching, as in Orca).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.serving.request import Request, RequestState, RequestStatus

__all__ = ["SchedulerConfig", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Static limits of the scheduler."""

    max_batch_size: int = 8
    kv_token_capacity: int = 1_048_576

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.kv_token_capacity <= 0:
            raise ValueError("kv_token_capacity must be positive")


class ContinuousBatchingScheduler:
    """First-come-first-served continuous batching."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self._waiting: deque[RequestState] = deque()
        self._running: list[RequestState] = []
        self._finished: list[RequestState] = []

    # -- queue management -------------------------------------------------------
    def submit(self, request: Request) -> RequestState:
        return self.submit_state(RequestState(request=request))

    def submit_state(self, state: RequestState) -> RequestState:
        """Enqueue an externally owned request state (FCFS order preserved)."""
        self._waiting.append(state)
        return state

    @property
    def waiting(self) -> list[RequestState]:
        return list(self._waiting)

    @property
    def running(self) -> list[RequestState]:
        return list(self._running)

    @property
    def finished(self) -> list[RequestState]:
        return list(self._finished)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def kv_tokens_in_use(self) -> int:
        """KV tokens currently materialised by running requests."""
        return sum(s.context_length for s in self._running)

    def kv_tokens_reserved(self) -> int:
        """KV tokens reserved by admitted requests (prompt + generation budget).

        Admission reserves the whole prompt plus the generation budget so a
        running request can never run out of pages mid-generation.
        """
        return sum(
            s.request.prompt_tokens + s.request.max_new_tokens for s in self._running
        )

    def _kv_tokens_if_admitted(self, state: RequestState) -> int:
        return (
            self.kv_tokens_reserved()
            + state.request.prompt_tokens
            + state.request.max_new_tokens
        )

    def schedule_prefill(self) -> RequestState | None:
        """Pop the next admissible waiting request (to be prefilled), if any."""
        if not self._waiting or len(self._running) >= self.config.max_batch_size:
            return None
        head = self._waiting[0]
        if self._kv_tokens_if_admitted(head) > self.config.kv_token_capacity:
            return None
        self._waiting.popleft()
        self._running.append(head)
        return head

    def decode_batch(self) -> list[RequestState]:
        """The requests that take part in the next decode iteration."""
        return [s for s in self._running if s.status is RequestStatus.DECODING]

    def retire_finished(self) -> list[RequestState]:
        """Move finished requests out of the running batch, freeing their KV."""
        done = [s for s in self._running if s.is_finished]
        self._running = [s for s in self._running if not s.is_finished]
        self._finished.extend(done)
        return done
