"""The serving front door: submit requests, step the system, collect metrics.

:class:`ServingEngine` is the single entry point for serving under continuous
batching.  It owns the policy-driven preemptive scheduler, a virtual clock,
and an :class:`~repro.serving.backend.InferenceBackend` that does the work —
the real :class:`~repro.serving.backend.LServeBackend` or the cost-model
:class:`~repro.serving.backend.SimulatedBackend`.  Token ids flow through the
backend on every scheduler decision, so TTFT / throughput metrics, scheduler
decisions, and engine work statistics all come from the *same* run.

Preemption is **recompute-style**: when the scheduler evicts a running
request under KV pressure the engine releases its backend KV; on
re-admission it re-prefills the prompt and *replays* the already-generated
tokens through the backend (billing the recompute time) so the rebuilt KV
state — and therefore every subsequent token — is byte-identical to an
uninterrupted run.

Typical use::

    engine = ServingEngine(backend)
    handle = engine.submit(Request.from_prompt("req-0", prompt_ids, max_new_tokens=64))
    metrics = engine.run_until_complete()
    print(handle.output_tokens, metrics.mean_ttft_s())
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.engine import DecodeOutOfPagesError
from repro.kvcache.allocator import OutOfPagesError
from repro.kvcache.tiering import ColdTierError
from repro.serving.backend import InferenceBackend
from repro.serving.metrics import LiveGauges, RequestRecord, ServingMetrics
from repro.serving.request import Request, RequestState, RequestStatus
from repro.serving.sampling import SamplingParams, sample_token
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerConfig

__all__ = ["RequestHandle", "StepOutcome", "ServingEngine"]

#: Token id fed through content-free backends (no logits to sample from).
PLACEHOLDER_TOKEN = 0


@dataclass
class RequestHandle:
    """Live view of one submitted request.

    ``transfer_ms`` / ``migrated_pages`` carry the modeled KV hand-off cost
    for requests adopted from another serving tier (see
    :meth:`ServingEngine.adopt`); both are zero for ordinary submissions.
    ``retain_kv`` marks a request whose backend KV must survive retirement
    because a disaggregated cluster will hand it off to a decode tier
    (:meth:`ServingEngine.retain_kv_on_finish`).  ``restored_pages`` /
    ``restore_ms`` accumulate the request's cold-KV-tier restore traffic
    (sequence restores plus cold prefix pages re-attached at prefill).
    ``draft_tokens_proposed`` / ``draft_tokens_accepted`` /
    ``spec_decode_steps`` accumulate the request's speculative-decoding
    activity (all zero without a draft source).
    """

    request: Request
    state: RequestState
    output_tokens: list[int] = field(default_factory=list)
    record: RequestRecord | None = None
    transfer_ms: float = 0.0
    migrated_pages: int = 0
    retain_kv: bool = False
    restored_pages: int = 0
    restore_ms: float = 0.0
    draft_tokens_proposed: int = 0
    draft_tokens_accepted: int = 0
    spec_decode_steps: int = 0
    _rng: np.random.Generator | None = None
    #: Resolved sampling parameters (request override or engine default),
    #: computed once at submission so the per-token decode loop never
    #: re-resolves them.
    _params: SamplingParams | None = None

    @property
    def request_id(self) -> str:
        """The request's unique id."""
        return self.request.request_id

    @property
    def finished(self) -> bool:
        """Whether the request is terminal (all tokens produced, or aborted)."""
        return self.state.is_terminal

    @property
    def cancelled(self) -> bool:
        """Whether the request was aborted before finishing."""
        return self.state.is_cancelled

    @property
    def seq_id(self) -> str:
        """The backend sequence id this request's KV lives under."""
        return self.request.request_id


@dataclass(frozen=True)
class StepOutcome:
    """What one call to :meth:`ServingEngine.step` did.

    ``kind`` is ``"prefill"`` (a fresh request was admitted and prefilled),
    ``"resume"`` (a preempted request was re-admitted and its KV recomputed),
    ``"restore"`` (a demoted request's KV was transferred back from the cold
    tier), ``"decode"`` (one decode iteration over the running batch),
    ``"attach"`` (an adopted request's migrated KV joined the decode batch,
    see :meth:`ServingEngine.adopt`), or ``"idle"`` (the clock jumped to the
    next arrival).  ``preempted_ids`` lists requests evicted under KV
    pressure immediately before a decode iteration (KV released, recompute on
    re-admission); ``demoted_ids`` lists requests whose KV was instead parked
    in the cold tier (transfer-restore on re-admission).

    ``emitted_tokens`` reports every token the step produced, in order, as
    ``(request_id, token_id)`` pairs — one pair for a prefill (the first
    token), one *or more* per batch member for a decode (a speculative
    request emits its verified token plus every accepted draft), none for
    resume/idle steps (recompute replays previously emitted tokens; it never
    re-emits them).  This is what streaming front ends consume: each step's
    emissions can be delivered to per-request streams the moment the step
    returns.

    ``draft_proposed`` / ``draft_accepted`` count the step's speculative
    draft tokens (both 0 on non-speculative steps) — the per-step acceptance
    bookkeeping behind the engine's lifetime gauges.
    """

    kind: str  # "prefill" | "resume" | "restore" | "decode" | "attach" | "idle"
    clock_s: float
    elapsed_s: float
    request_ids: tuple[str, ...] = ()
    finished_ids: tuple[str, ...] = ()
    preempted_ids: tuple[str, ...] = ()
    demoted_ids: tuple[str, ...] = ()
    emitted_tokens: tuple[tuple[str, int], ...] = ()
    draft_proposed: int = 0
    draft_accepted: int = 0


class ServingEngine:
    """Continuous-batching serving loop over any :class:`InferenceBackend`."""

    def __init__(
        self,
        backend: InferenceBackend,
        scheduler_config: SchedulerConfig | None = None,
        default_sampling: SamplingParams | None = None,
        draft_source=None,
        adaptive_k=None,
    ) -> None:
        """``draft_source`` enables speculative decoding.

        Any :class:`~repro.serving.speculative.DraftSource`; requests opt in
        per-request via ``SamplingParams.speculation_k > 0``.  Speculation
        needs a backend exposing ``decode_speculative`` /
        ``commit_speculative`` — without them the draft source is ignored
        and every request decodes plainly.  When the backend additionally
        exposes ``decode_speculative_batch``, steps where two or more batch
        members speculate verify all their chunks in one fused call.

        ``adaptive_k`` is an optional
        :class:`~repro.serving.speculative.AdaptiveKPolicy`: each request's
        effective speculation depth follows its rolling acceptance rate
        instead of staying pinned at ``SamplingParams.speculation_k``.  The
        policy only reshapes *scheduling* (chunk sizes); emitted tokens stay
        byte-identical because verification samples from the request's own
        rng either way.
        """
        self.backend = backend
        self.scheduler = ContinuousBatchingScheduler(scheduler_config or SchedulerConfig())
        self.default_sampling = default_sampling or SamplingParams()
        self.draft_source = draft_source
        self.adaptive_k = adaptive_k
        #: Lifetime speculative-decoding counters (live-gauge support).
        self.draft_tokens_proposed = 0
        self.draft_tokens_accepted = 0
        self.spec_decode_steps = 0
        self._backend_spec = getattr(backend, "decode_speculative", None)
        self._backend_spec_batch = getattr(backend, "decode_speculative_batch", None)
        self._backend_commit = getattr(backend, "commit_speculative", None)
        #: Last effective speculation k per live speculating request — the
        #: source for the ``speculation_k`` live-gauge series.
        self._spec_k_last: dict[str, int] = {}
        self.clock_s = 0.0
        self.metrics = ServingMetrics()
        #: Scheduler decision trace ("prefill:<id>" / "resume:<id>" /
        #: "preempt:<id>" / "decode:<id>,<id>,..."), identical across backends
        #: for the same request trace.
        self.decision_log: list[str] = []
        #: Tokens re-prefilled / re-decoded to rebuild preempted requests' KV.
        #: Replay calls are real backend work and are counted in
        #: ``backend.work`` like any other prefill/decode call; these counters
        #: let analyses separate recompute overhead from first-pass serving
        #: work (e.g. ``work.decode_tokens - recompute_decode_tokens``).
        self.recompute_prefill_tokens = 0
        self.recompute_decode_tokens = 0
        #: Ids of requests withdrawn via :meth:`abort`, in abort order.
        self.aborted_ids: list[str] = []
        self._handles: dict[str, RequestHandle] = {}
        # Optional backend gauge accessors, resolved once (the backend is
        # fixed for the engine's lifetime; live_gauges runs per step).  The
        # bound methods read live state at call time; ``cold_store`` is a
        # property whose value changes, so only its presence is cached.
        self._backend_kv_gauge = getattr(backend, "kv_tokens_in_use", None)
        self._cold_tokens_gauge = getattr(backend, "cold_kv_tokens", None)
        self._cold_pages_gauge = getattr(backend, "cold_pages", None)
        self._has_cold_store = hasattr(backend, "cold_store")
        self._arrivals: list[Request] = []  # sorted by arrival time (FCFS ties stable)
        #: Ids adopted via :meth:`adopt` whose migrated KV is materialised on
        #: the backend but not yet attached to the decode batch.
        self._adopted_ready: set[str] = set()

    # -- submission ---------------------------------------------------------------
    def submit(self, request: Request) -> RequestHandle:
        """Register a request; it is admitted once the clock reaches its arrival."""
        if request.request_id in self._handles:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._validate_token_content(request)
        self.scheduler.config.validate_request_fits(request)
        handle = RequestHandle(request=request, state=RequestState(request=request))
        params = request.sampling or self.default_sampling
        handle._params = params
        handle._rng = np.random.default_rng(params.seed)
        self._handles[request.request_id] = handle
        insort(self._arrivals, request, key=lambda r: r.arrival_time_s)
        return handle

    def adopt(
        self,
        request: Request,
        *,
        output_tokens: list[int],
        rng: np.random.Generator | None = None,
        prefill_finish_time_s: float,
        ready_time_s: float,
        transfer_ms: float = 0.0,
        migrated_pages: int = 0,
    ) -> RequestHandle:
        """Take over a request whose prompt KV was migrated from another tier.

        The disaggregated-serving hand-off path: a *prefill* replica computed
        the prompt KV and the first token(s); the pages were imported into
        this engine's backend (``backend.handoff_in``) and this engine now
        owns the decode phase.  ``output_tokens`` are the tokens already
        produced (at least the prefill token), ``rng`` is the request's
        sampling generator carried over so later sampled tokens match a
        single-replica run, ``prefill_finish_time_s`` preserves the true
        first-token timestamp, and ``ready_time_s`` is when the migrated KV
        becomes usable here (prefill finish + modeled transfer latency) — the
        request joins the decode batch no earlier than that, so the transfer
        delay is realised on this engine's virtual clock.

        The returned handle keeps the *original* request (true arrival time),
        so its eventual :class:`~repro.serving.metrics.RequestRecord` reports
        end-to-end TTFT/TPOT across both tiers plus ``transfer_ms`` /
        ``migrated_pages``.  The backend KV must already exist under the
        request id; it is accounted by the scheduler once the request attaches
        (a one-step accounting gap that mirrors in-flight transfers).
        """
        if request.request_id in self._handles:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        if not output_tokens:
            raise ValueError("adopt() requires at least the prefill token")
        if len(output_tokens) >= request.max_new_tokens:
            raise ValueError(
                f"request {request.request_id!r} already produced all "
                f"{request.max_new_tokens} tokens; nothing to decode"
            )
        self._validate_token_content(request)
        self.scheduler.config.validate_request_fits(request)
        state = RequestState(request=request)
        state.generated_tokens = len(output_tokens)
        state.prefill_finish_time_s = prefill_finish_time_s
        handle = RequestHandle(
            request=request,
            state=state,
            output_tokens=[int(t) for t in output_tokens],
            transfer_ms=float(transfer_ms),
            migrated_pages=int(migrated_pages),
        )
        handle._params = request.sampling or self.default_sampling
        if rng is None:
            rng = np.random.default_rng(handle._params.seed)
        handle._rng = rng
        self._handles[request.request_id] = handle
        self._adopted_ready.add(request.request_id)
        shadow = replace(request, arrival_time_s=max(0.0, ready_time_s))
        insort(self._arrivals, shadow, key=lambda r: r.arrival_time_s)
        return handle

    def retain_kv_on_finish(self, request_id: str) -> None:
        """Keep the request's backend KV alive when it retires.

        Used by disaggregated clusters on the *prefill* tier: the request
        finishes there after its first token, but its KV pages must survive
        retirement so ``backend.handoff_out`` can export them to a decode
        replica.  The caller owns the eventual release (hand-off or explicit
        ``backend.release``).  Unknown ids raise ``KeyError``.
        """
        self._handles[request_id].retain_kv = True

    def handle(self, request_id: str) -> RequestHandle:
        """Look up the live handle of a submitted request."""
        return self._handles[request_id]

    def clear_finished(self) -> int:
        """Drop handles of finished requests; returns how many were evicted.

        A long-lived engine keeps every handle (with its output tokens) so
        callers can read results after a run; call this between runs to bound
        memory and allow request-id reuse.  Completed ``ServingMetrics``
        records are kept.
        """
        done = [rid for rid, h in self._handles.items() if h.finished]
        for rid in done:
            del self._handles[rid]
        return len(done)

    @property
    def has_work(self) -> bool:
        """Whether any submitted request has not yet finished."""
        return bool(self._arrivals) or self.scheduler.has_work

    def abort(self, request_id: str) -> bool:
        """Withdraw a request, releasing its backend KV if any is materialised.

        Works from any non-terminal point in the lifecycle: still on the
        arrivals list, waiting for admission, preempted, or mid-decode (the
        KV pages it holds are released through the same path preemption uses,
        so shared prefix pages are decref'd, never pulled out from under a
        sibling).  Tokens generated so far stay on the handle; no
        :class:`~repro.serving.metrics.RequestRecord` is emitted (aggregate
        metrics describe *completed* requests).  Returns ``True`` if the
        request was live, ``False`` if it had already finished (abort after
        completion is a no-op, not an error).  Unknown ids raise ``KeyError``.
        """
        handle = self._handles[request_id]
        state = handle.state
        if state.is_terminal:
            return False
        for i, pending in enumerate(self._arrivals):
            if pending.request_id == request_id:
                del self._arrivals[i]
                break
        else:
            was_running = self.scheduler.remove(state)
            if was_running and state.status is RequestStatus.DECODING:
                self.backend.release(handle.seq_id)
            elif state.status is RequestStatus.DEMOTED:
                # The KV lives in the backend's cold tier, not the hot pool;
                # release drops the cold snapshot.
                self.backend.release(handle.seq_id)
        if request_id in self._adopted_ready:
            # Adopted-but-unattached: the migrated KV is already materialised
            # on the backend even though the state never left WAITING.
            self._adopted_ready.discard(request_id)
            self.backend.release(handle.seq_id)
        state.mark_cancelled(self.clock_s)
        self.aborted_ids.append(request_id)
        self._release_draft(request_id)
        self.decision_log.append(f"abort:{request_id}")
        return True

    def live_gauges(self) -> LiveGauges:
        """Snapshot the engine's instantaneous state (queue/batch/KV gauges)."""
        backend_kv = self._backend_kv_gauge
        cold_tokens = self._cold_tokens_gauge
        cold_pages = self._cold_pages_gauge
        cold_store = self.backend.cold_store if self._has_cold_store else None
        kv_in_use = self.scheduler.kv_tokens_in_use()
        spec_ks = list(self._spec_k_last.values())
        return LiveGauges(
            clock_s=self.clock_s,
            queue_depth=self.scheduler.waiting_count,
            pending_arrivals=len(self._arrivals),
            running=len(self.scheduler.running),
            kv_tokens_in_use=kv_in_use,
            kv_token_capacity=self.scheduler.config.kv_token_capacity,
            backend_kv_tokens=backend_kv() if backend_kv is not None else -1,
            completed=len(self.metrics),
            aborted=len(self.aborted_ids),
            preemptions=self.scheduler.total_preemptions,
            kv_tokens_demand=kv_in_use
            + self.scheduler.kv_tokens_waiting()
            + sum(r.prompt_tokens for r in self._arrivals),
            kv_tokens_cold=cold_tokens() if cold_tokens is not None else 0,
            cold_pages=cold_pages() if cold_pages is not None else 0,
            demotions=self.scheduler.total_demotions,
            restores=cold_store.total_restores if cold_store is not None else 0,
            draft_tokens_proposed=self.draft_tokens_proposed,
            draft_tokens_accepted=self.draft_tokens_accepted,
            spec_decode_steps=self.spec_decode_steps,
            speculation_k_min=min(spec_ks) if spec_ks else 0,
            speculation_k_mean=sum(spec_ks) / len(spec_ks) if spec_ks else 0.0,
            speculation_k_max=max(spec_ks) if spec_ks else 0,
        )

    # -- the serving loop ---------------------------------------------------------
    def step(self) -> StepOutcome | None:
        """Run one scheduler iteration; returns ``None`` when nothing is left.

        Mirrors vLLM-style iteration-level scheduling: admit arrived requests
        (fresh prefill, or recompute-resume for preempted ones), otherwise
        preempt under KV pressure and run one decode iteration over the
        surviving batch, otherwise jump the clock to the next arrival.
        Preemption and the subsequent decode happen in the same step, so
        every pressure event is immediately followed by forward progress.
        """
        self._admit_arrived()

        state = self.scheduler.schedule_prefill()
        if state is not None:
            if state.request.request_id in self._adopted_ready:
                return self._step_attach(state)
            if state.status is RequestStatus.DEMOTED:
                return self._step_restore(state)
            if state.status is RequestStatus.PREEMPTED:
                return self._step_resume(state)
            return self._step_prefill(state)

        preempted, demoted = self._preempt_for_pressure()
        batch = self.scheduler.decode_batch()
        if batch:
            return self._step_decode(batch, preempted, demoted)

        if self._arrivals:
            next_arrival = self._arrivals[0].arrival_time_s
            elapsed = max(0.0, next_arrival - self.clock_s)
            self.clock_s = max(self.clock_s, next_arrival)
            return StepOutcome(kind="idle", clock_s=self.clock_s, elapsed_s=elapsed)
        return None

    def run_until_complete(self) -> ServingMetrics:
        """Drive :meth:`step` until every submitted request has finished."""
        while self.step() is not None:
            pass
        return self.metrics

    def run(self, requests: list[Request]) -> ServingMetrics:
        """Serve a batch of requests to completion (submit + run)."""
        if not requests:
            raise ValueError("at least one request is required")
        for request in requests:
            self.submit(request)
        return self.run_until_complete()

    def generate(
        self,
        prompt_ids,
        max_new_tokens: int,
        sampling: SamplingParams | None = None,
        request_id: str | None = None,
    ) -> list[int]:
        """Single-prompt convenience: serve one request, return its tokens.

        Requires a backend that produces real logits; cost-model backends have
        no token content to return — use :meth:`run` / :meth:`submit` and read
        the timing metrics instead.
        """
        if not getattr(self.backend, "produces_logits", False):
            raise ValueError(
                "generate() needs a backend that produces real logits; "
                f"{type(self.backend).__name__} is content-free — use run()/submit() "
                "and read ServingMetrics instead"
            )
        if request_id is None:
            request_id = f"generate-{len(self._handles)}"
        handle = self.submit(
            Request.from_prompt(
                request_id,
                prompt_ids,
                max_new_tokens=max_new_tokens,
                arrival_time_s=self.clock_s,
                sampling=sampling,
            )
        )
        self.run_until_complete()
        return list(handle.output_tokens)

    # -- internals ----------------------------------------------------------------
    def _validate_token_content(self, request: Request) -> None:
        """Reject length-only requests on backends that need real token ids."""
        if request.prompt_token_ids is not None:
            return
        if getattr(self.backend, "produces_logits", False):
            raise ValueError(
                f"request {request.request_id!r} carries no prompt_token_ids but the "
                "backend produces real logits; a length-only request would silently "
                "generate from a placeholder prompt. Build it with Request.from_prompt()."
            )
        if getattr(self.backend, "requires_token_content", False):
            raise ValueError(
                f"request {request.request_id!r} carries no prompt_token_ids but the "
                "backend's prefix-cache model matches on token content; length-only "
                "requests all share the placeholder prompt and would spuriously hit. "
                "Generate the trace with with_token_ids=True."
            )

    def _admit_arrived(self) -> None:
        while self._arrivals and self._arrivals[0].arrival_time_s <= self.clock_s:
            self.scheduler.submit_state(
                self._handles[self._arrivals.pop(0).request_id].state
            )

    def _step_prefill(self, state: RequestState) -> StepOutcome:
        handle = self._handles[state.request.request_id]
        state.record_scheduled(self.clock_s)
        token_ids = self._prompt_ids(handle.request)
        result = self.backend.prefill(handle.seq_id, token_ids)
        self.clock_s += result.elapsed_s
        self.decision_log.append(f"prefill:{handle.request_id}")
        state.shared_prefix_tokens = result.prefix_hit_tokens
        handle.restored_pages += result.restored_pages
        handle.restore_ms += result.restore_s * 1e3
        state.record_prefill(self.clock_s)
        # Prefill yields the first generated token.
        self._record_token(handle, result.logits)
        finished = self._retire()
        return StepOutcome(
            kind="prefill",
            clock_s=self.clock_s,
            elapsed_s=result.elapsed_s,
            request_ids=(handle.request_id,),
            finished_ids=finished,
            emitted_tokens=((handle.request_id, handle.output_tokens[-1]),),
        )

    def _step_attach(self, state: RequestState) -> StepOutcome:
        """Attach an adopted request's migrated KV to the decode batch.

        The KV pages already live on this backend (imported by
        ``backend.handoff_in`` before :meth:`adopt`), so no backend work runs
        and no time elapses; the step flips the request to ``DECODING`` while
        *preserving* the prefill-tier first-token timestamp — calling
        ``record_prefill`` here would restamp TTFT with the attach time.  No
        token is emitted: everything in ``output_tokens`` was already
        delivered by the prefill tier.
        """
        handle = self._handles[state.request.request_id]
        state.record_scheduled(self.clock_s)
        self._adopted_ready.discard(state.request.request_id)
        state.status = RequestStatus.DECODING
        self.decision_log.append(f"attach:{handle.request_id}")
        return StepOutcome(
            kind="attach",
            clock_s=self.clock_s,
            elapsed_s=0.0,
            request_ids=(handle.request_id,),
        )

    def _step_resume(self, state: RequestState) -> StepOutcome:
        """Recompute a preempted request's KV: re-prefill, then replay its tokens.

        The prompt is prefilled from scratch and every already-generated token
        except the last is fed back through single-sequence decode calls —
        exactly the calls an uninterrupted run made — so the rebuilt KV (and
        any selector state) is bit-identical and the next sampled token matches
        the no-preemption run.  No new token is recorded and the sampling rng
        is untouched; the whole recompute is billed on the serving clock.
        """
        handle = self._handles[state.request.request_id]
        result = self.backend.prefill(handle.seq_id, self._prompt_ids(handle.request))
        elapsed = result.elapsed_s
        state.shared_prefix_tokens = result.prefix_hit_tokens
        handle.restored_pages += result.restored_pages
        handle.restore_ms += result.restore_s * 1e3
        self.recompute_prefill_tokens += handle.request.prompt_tokens - result.prefix_hit_tokens
        for token in handle.output_tokens[:-1]:
            replay = self.backend.decode_batch([handle.seq_id], [token])
            elapsed += replay.elapsed_s
            self.recompute_decode_tokens += 1
        self.clock_s += elapsed
        self.decision_log.append(f"resume:{handle.request_id}")
        state.record_resume(self.clock_s)
        return StepOutcome(
            kind="resume",
            clock_s=self.clock_s,
            elapsed_s=elapsed,
            request_ids=(handle.request_id,),
        )

    def _step_restore(self, state: RequestState) -> StepOutcome:
        """Transfer a demoted request's KV back from the cold tier.

        The snapshot is re-attached bit-exactly (modeled context for the
        simulated backend) and the modeled restore transfer is billed on the
        serving clock — no recompute runs and no token is emitted.  When the
        hot pool cannot actually hold the pages
        (:class:`~repro.kvcache.allocator.OutOfPagesError` — the watermark
        admitted on token estimates, the allocator is ground truth), the
        snapshot is dropped and the request falls back to recompute-resume,
        recounted as a preemption.
        """
        handle = self._handles[state.request.request_id]
        try:
            result = self.backend.restore(handle.seq_id)
        except OutOfPagesError:
            # The atomic restore reinstalled the snapshot; drop it and rebuild
            # by recompute instead (the prefill path can evict prefix pages).
            cold = getattr(self.backend, "cold_store", None)
            if cold is not None:
                cold.discard(handle.seq_id)
            self.scheduler.reclassify_demotion_as_preemption()
            state.demote_to_preempt()
            return self._step_resume(state)
        self.clock_s += result.elapsed_s
        self.decision_log.append(f"restore:{handle.request_id}")
        handle.restored_pages += result.restored_pages
        handle.restore_ms += result.restore_s * 1e3
        state.record_restore(self.clock_s)
        return StepOutcome(
            kind="restore",
            clock_s=self.clock_s,
            elapsed_s=result.elapsed_s,
            request_ids=(handle.request_id,),
        )

    @property
    def _tiering_active(self) -> bool:
        """Whether the backend carries a cold KV tier to demote into."""
        return getattr(self.backend, "tiering", None) is not None and hasattr(
            self.backend, "demote"
        )

    def _demotion_victim_order(self):
        """LRU victim ranking for demotion, or ``None`` for the policy default.

        Asks the backend to rank the decoding batch least-recently-attended
        first (via its eviction policy / attend stamps); sequences the policy
        filters out (e.g. holders of pinned prefix pages) are appended in the
        scheduler policy's own victim order, so they remain preemptable.
        """
        order_fn = getattr(self.backend, "demotion_order", None)
        if order_fn is None:
            return None

        def victim_order(decoding: list[RequestState]) -> list[RequestState]:
            by_seq = {
                self._handles[s.request.request_id].seq_id: s for s in decoding
            }
            ranked = [by_seq[sid] for sid in order_fn(list(by_seq)) if sid in by_seq]
            seen = set(id(s) for s in ranked)
            rest = [
                s
                for s in self.scheduler.policy.victim_order(decoding)
                if id(s) not in seen
            ]
            return ranked + rest

        return victim_order

    def _evict_states(
        self, victims: list[RequestState]
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Demote-or-preempt each victim the scheduler evicted.

        With tiering active each victim's KV is parked in the cold tier; when
        the tier refuses (full, or the sequence is not demotable) that victim
        falls back to the classic release-and-recompute preemption and the
        scheduler's wholesale demotion count is corrected.
        """
        demote_active = self._tiering_active
        preempted: list[str] = []
        demoted: list[str] = []
        for state in victims:
            handle = self._handles[state.request.request_id]
            if demote_active:
                try:
                    self.backend.demote(handle.seq_id)
                except ColdTierError:
                    self.scheduler.reclassify_demotion_as_preemption()
                else:
                    state.record_demote(self.clock_s)
                    self.decision_log.append(f"demote:{handle.request_id}")
                    demoted.append(handle.request_id)
                    continue
            state.record_preempt(self.clock_s)
            self.backend.release(handle.seq_id)
            self.decision_log.append(f"preempt:{handle.request_id}")
            preempted.append(handle.request_id)
        return tuple(preempted), tuple(demoted)

    def _preempt_for_pressure(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Evict running requests under KV pressure; returns (preempted, demoted) ids."""
        demote = self._tiering_active
        victims = self.scheduler.preempt_for_pressure(
            victim_order=self._demotion_victim_order() if demote else None,
            demote=demote,
        )
        return self._evict_states(victims)

    def _drafts_for(self, handle: RequestHandle) -> list[int]:
        """Candidate tokens to speculate for one decode-batch member (may be [])."""
        if (
            self.draft_source is None
            or self._backend_spec is None
            or self._backend_commit is None
        ):
            return []
        params = handle._params or self.default_sampling
        if params.speculation_k <= 0 or not handle.output_tokens:
            return []
        k_requested = params.speculation_k
        if self.adaptive_k is not None:
            k_requested = self.adaptive_k.effective_k(handle.request_id, k_requested)
        self._spec_k_last[handle.request_id] = k_requested
        # Keep at least one position for the verified token itself: the
        # pending token plus k drafts emit at most k + 1 tokens.
        remaining = handle.request.max_new_tokens - handle.state.generated_tokens
        k = min(k_requested, remaining - 1)
        if k <= 0:
            return []
        drafts = self.draft_source.propose(
            handle.request_id,
            handle.request.prompt_token_ids,
            handle.output_tokens,
            k,
        )
        return [int(t) for t in drafts[:k]]

    def _verify_tokens(
        self,
        handle: RequestHandle,
        fed: list[int],
        logits_rows: np.ndarray | None,
    ) -> list[int]:
        """Accept the longest matching prefix of a verified chunk.

        Row ``j`` of ``logits_rows`` is the real next-token distribution
        after consuming ``fed[:j+1]``; sampling it with the request's own
        rng draws exactly the draw a non-speculative step would have made,
        so the emitted stream — and the rng stream — are byte-identical at
        any acceptance rate.  Verification advances to row ``j+1`` only
        while the sampled token equals the draft that was fed there.
        """
        params = handle._params or self.default_sampling
        budget = handle.request.max_new_tokens - handle.state.generated_tokens
        sampled: list[int] = []
        for j in range(len(fed)):
            if logits_rows is None:
                token = PLACEHOLDER_TOKEN
            else:
                token = sample_token(logits_rows[j], params, handle._rng)
            sampled.append(token)
            if len(sampled) >= budget:
                break
            if logits_rows is not None and params.is_stop(token):
                break
            if j + 1 >= len(fed) or fed[j + 1] != token:
                break
        return sampled

    def _evict_one_for_oom(
        self, state: RequestState
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Evict one request the allocator refused pages for; (preempted, demoted)."""
        self.scheduler.force_preempt([state], demote=self._tiering_active)
        return self._evict_states([state])

    def _spec_fallback_plain(
        self,
        state: RequestState,
        handle: RequestHandle,
        emitted: list[tuple[str, int]],
        request_ids: list[str],
    ) -> tuple[float, tuple[tuple[str, ...], tuple[str, ...]]]:
        """Verify-OOM fallback: one plain token at minimal footprint.

        The speculative chunk did not fit (scratch fork + m positions) but
        the sequence itself is untouched, so a plain single-token decode
        keeps byte-identity and forward progress.  Returns the fallback's
        elapsed time plus ``(preempted, demoted)`` ids when even the single
        token does not fit and the request is evicted instead.
        """
        pending = handle.output_tokens[-1]
        try:
            fallback = self.backend.decode_batch([handle.seq_id], [pending])
        except DecodeOutOfPagesError:
            return 0.0, self._evict_one_for_oom(state)
        self.clock_s += fallback.elapsed_s
        logits = None if fallback.logits is None else fallback.logits[0]
        self._record_token(handle, logits)
        emitted.append((handle.request_id, handle.output_tokens[-1]))
        request_ids.append(handle.request_id)
        return fallback.elapsed_s, ((), ())

    def _finish_spec_member(
        self,
        state: RequestState,
        handle: RequestHandle,
        drafts: list[int],
        fed: list[int],
        logits_rows: np.ndarray | None,
        chunk,
        emitted: list[tuple[str, int]],
        request_ids: list[str],
    ) -> tuple[tuple[tuple[str, ...], tuple[str, ...]], tuple[int, int]]:
        """Verify, commit, and emit one speculating member's chunk.

        Shared tail of the fused and per-sequence speculative paths (the
        caller has already billed the verify call's elapsed time).  Returns
        ``((preempted, demoted), (proposed, accepted))`` — eviction ids when
        the commit OOMs (nothing emitted, rng rewound), counters otherwise.
        """
        # Snapshot the rng before sampling: if the commit below OOMs,
        # nothing may be emitted, and the rng must rewind so the replay
        # after preemption re-draws the same stream.
        rng_state = (
            handle._rng.bit_generator.state if handle._rng is not None else None
        )
        sampled = self._verify_tokens(handle, fed, logits_rows)
        try:
            self._backend_commit(handle.seq_id, chunk, len(sampled))
        except DecodeOutOfPagesError:
            if rng_state is not None:
                handle._rng.bit_generator.state = rng_state
            return self._evict_one_for_oom(state), (0, 0)
        has_logits = logits_rows is not None
        for token in sampled:
            self._emit_token(handle, token, has_logits)
            emitted.append((handle.request_id, token))
        accepted = len(sampled) - 1
        handle.draft_tokens_proposed += len(drafts)
        handle.draft_tokens_accepted += accepted
        handle.spec_decode_steps += 1
        self.draft_tokens_proposed += len(drafts)
        self.draft_tokens_accepted += accepted
        self.spec_decode_steps += 1
        if self.adaptive_k is not None:
            self.adaptive_k.observe(handle.request_id, len(drafts), accepted)
        request_ids.append(handle.request_id)
        self.decision_log.append(f"spec:{handle.request_id}:+{len(sampled)}")
        return ((), ()), (len(drafts), accepted)

    def _step_decode(
        self,
        batch: list[RequestState],
        preempted: tuple[str, ...] = (),
        demoted: tuple[str, ...] = (),
    ) -> StepOutcome:
        # Partition the batch: members with draft proposals run speculative
        # verify chunks, the rest run the plain batched decode.  The plain
        # group goes FIRST — its OOM handler retries the *whole* batch
        # recursively, which is only safe while no speculative chunk has
        # advanced any sequence or rng this step.
        plain: list[RequestState] = []
        spec: list[tuple[RequestState, list[int]]] = []
        for s in batch:
            drafts = self._drafts_for(self._handles[s.request.request_id])
            if drafts:
                spec.append((s, drafts))
            else:
                plain.append(s)

        elapsed = 0.0
        emitted: list[tuple[str, int]] = []
        request_ids: list[str] = []
        step_proposed = 0
        step_accepted = 0

        if plain:
            handles = []
            seq_ids = []
            tokens = []
            for s in plain:
                h = self._handles[s.request.request_id]
                handles.append(h)
                seq_ids.append(h.seq_id)
                tokens.append(h.output_tokens[-1] if h.output_tokens else PLACEHOLDER_TOKEN)
            try:
                result = self.backend.decode_batch(seq_ids, tokens)
            except DecodeOutOfPagesError as exc:
                return self._step_decode_oom(batch, preempted, demoted, exc)
            self.clock_s += result.elapsed_s
            elapsed += result.elapsed_s
            for i, handle in enumerate(handles):
                logits = None if result.logits is None else result.logits[i]
                self._record_token(handle, logits)
                emitted.append((handle.request_id, handle.output_tokens[-1]))
                request_ids.append(handle.request_id)

        if len(spec) >= 2 and self._backend_spec_batch is not None:
            # Fused path: all speculating members verify their chunks in one
            # grouped backend call.  A verify-OOM fails atomically (the
            # backend raises before mutating anything), naming exactly the
            # members whose scratch chunks did not fit; those fall back to a
            # plain single-token step and the survivors retry fused.
            group = spec
            spec = []
            while group:
                if len(group) == 1:
                    spec = group  # a lone survivor rides the per-sequence path
                    break
                feds = [
                    [self._handles[s.request.request_id].output_tokens[-1], *drafts]
                    for s, drafts in group
                ]
                requests = [
                    (self._handles[s.request.request_id].seq_id, fed)
                    for (s, _), fed in zip(group, feds)
                ]
                try:
                    batch_result = self._backend_spec_batch(requests)
                except DecodeOutOfPagesError as exc:
                    failed_ids = {str(sid) for sid in exc.failed_seq_ids}
                    failed = [m for m in group if m[0].request.request_id in failed_ids]
                    group = [m for m in group if m[0].request.request_id not in failed_ids]
                    if not failed:
                        raise
                    for s, _ in failed:
                        handle = self._handles[s.request.request_id]
                        fb_elapsed, (p2, d2) = self._spec_fallback_plain(
                            s, handle, emitted, request_ids
                        )
                        elapsed += fb_elapsed
                        preempted += p2
                        demoted += d2
                    continue
                self.clock_s += batch_result.elapsed_s
                elapsed += batch_result.elapsed_s
                for i, (s, drafts) in enumerate(group):
                    handle = self._handles[s.request.request_id]
                    (p2, d2), (prop, acc) = self._finish_spec_member(
                        s,
                        handle,
                        drafts,
                        feds[i],
                        batch_result.logits[i],
                        batch_result.chunks[i],
                        emitted,
                        request_ids,
                    )
                    preempted += p2
                    demoted += d2
                    step_proposed += prop
                    step_accepted += acc
                group = []

        for s, drafts in spec:
            handle = self._handles[s.request.request_id]
            pending = handle.output_tokens[-1]
            fed = [pending, *drafts]
            try:
                spec_result = self._backend_spec(handle.seq_id, fed)
            except DecodeOutOfPagesError:
                # The chunk did not fit (scratch fork + m positions).  The
                # sequence is untouched, so a plain single-token step keeps
                # byte-identity and forward progress at minimal footprint.
                fb_elapsed, (p2, d2) = self._spec_fallback_plain(
                    s, handle, emitted, request_ids
                )
                elapsed += fb_elapsed
                preempted += p2
                demoted += d2
                continue
            self.clock_s += spec_result.elapsed_s
            elapsed += spec_result.elapsed_s
            (p2, d2), (prop, acc) = self._finish_spec_member(
                s, handle, drafts, fed, spec_result.logits, spec_result.chunk,
                emitted, request_ids,
            )
            preempted += p2
            demoted += d2
            step_proposed += prop
            step_accepted += acc

        if request_ids:
            self.decision_log.append("decode:" + ",".join(request_ids))
        finished = self._retire()
        return StepOutcome(
            kind="decode",
            clock_s=self.clock_s,
            elapsed_s=elapsed,
            request_ids=tuple(request_ids),
            finished_ids=finished,
            preempted_ids=preempted,
            demoted_ids=demoted,
            emitted_tokens=tuple(emitted),
            draft_proposed=step_proposed,
            draft_accepted=step_accepted,
        )

    def _step_decode_oom(
        self,
        batch: list[RequestState],
        preempted: tuple[str, ...],
        demoted: tuple[str, ...],
        exc: DecodeOutOfPagesError,
    ) -> StepOutcome:
        """Evict exactly the sequences the backend could not reserve pages for.

        The backend raised *before* mutating any KV state, so the failed
        sequences can be evicted (demoted to the cold tier when tiering is
        active, recompute-preempted otherwise — like watermark victims) and
        the surviving batch retried within the same step.  If every sequence
        failed, nothing can make progress — the pool is genuinely too small
        for one request — and the error propagates.
        """
        failed_ids = {str(s) for s in exc.failed_seq_ids}
        victims = [s for s in batch if s.request.request_id in failed_ids]
        survivors = [s for s in batch if s.request.request_id not in failed_ids]
        if not victims or not survivors:
            raise exc
        self.scheduler.force_preempt(victims, demote=self._tiering_active)
        newly_preempted, newly_demoted = self._evict_states(victims)
        return self._step_decode(
            survivors, preempted + newly_preempted, demoted + newly_demoted
        )

    def _prompt_ids(self, request: Request) -> np.ndarray:
        if request.prompt_token_ids is not None:
            return np.asarray(request.prompt_token_ids, dtype=np.int64)
        # Length-only request (cost-model backends ignore token content).
        return np.full(request.prompt_tokens, PLACEHOLDER_TOKEN, dtype=np.int64)

    def _record_token(self, handle: RequestHandle, logits: np.ndarray | None) -> None:
        params = handle._params or self.default_sampling
        if logits is None:
            token = PLACEHOLDER_TOKEN
        else:
            token = sample_token(logits, params, handle._rng)
        self._emit_token(handle, token, has_logits=logits is not None)

    def _emit_token(self, handle: RequestHandle, token: int, has_logits: bool) -> None:
        """Append one already-sampled token to the handle (shared by both paths)."""
        handle.output_tokens.append(int(token))
        handle.state.record_decode_token(self.clock_s)
        # Stop-token handling only applies to real content, not placeholders.
        params = handle._params or self.default_sampling
        if has_logits and not handle.state.is_finished and params.is_stop(token):
            handle.state.mark_finished(self.clock_s)

    def _retire(self) -> tuple[str, ...]:
        finished_ids = []
        for state in self.scheduler.retire_finished():
            handle = self._handles[state.request.request_id]
            if not handle.retain_kv:
                self.backend.release(handle.seq_id)
            handle.record = RequestRecord(
                request_id=handle.request_id,
                arrival_time_s=handle.request.arrival_time_s,
                prefill_finish_time_s=state.prefill_finish_time_s or self.clock_s,
                finish_time_s=state.finish_time_s or self.clock_s,
                prompt_tokens=handle.request.prompt_tokens,
                generated_tokens=state.generated_tokens,
                priority=handle.request.priority,
                preemptions=state.preemptions,
                scheduled_time_s=state.scheduled_time_s,
                preempted_stall_s=state.preempted_stall_s,
                transfer_ms=handle.transfer_ms,
                migrated_pages=handle.migrated_pages,
                demotions=state.demotions,
                demoted_stall_s=state.demoted_stall_s,
                restored_pages=handle.restored_pages,
                restore_ms=handle.restore_ms,
                draft_tokens_proposed=handle.draft_tokens_proposed,
                draft_tokens_accepted=handle.draft_tokens_accepted,
                spec_decode_steps=handle.spec_decode_steps,
            )
            self.metrics.add(handle.record)
            self._release_draft(handle.request_id)
            finished_ids.append(handle.request_id)
        return tuple(finished_ids)

    def _release_draft(self, request_id: str) -> None:
        """Drop the draft source's (and adaptive-k policy's) per-request state."""
        if self.draft_source is not None:
            self.draft_source.release(request_id)
        if self.adaptive_k is not None:
            self.adaptive_k.release(request_id)
        self._spec_k_last.pop(request_id, None)
