"""Asyncio serving front end: live submission, per-token streaming, cancellation.

:class:`AsyncServingEngine` turns the synchronous
:class:`~repro.serving.engine.ServingEngine` step loop into a *live* service:
a background asyncio task drives ``step()`` whenever there is work, and every
token a step emits (:attr:`~repro.serving.engine.StepOutcome.emitted_tokens`)
is delivered to its request's stream the moment the step returns.  Callers
get continuous batching for free — requests submitted while others are
mid-decode join the very next scheduler iteration — and observe TTFT at the
first ``async for`` yield rather than after the whole generation finishes.

The engine, scheduler, backend, and metrics are exactly the synchronous ones;
this module adds *delivery*, not policy.  Everything runs on one event loop
(the step loop is cooperative, yielding between iterations), so there are no
threads and no locks — the same determinism guarantees as the batch API hold,
including byte-identical outputs through preemption.

Typical use::

    async with AsyncServingEngine(backend) as server:
        handle = server.submit(Request.from_prompt("r0", prompt, max_new_tokens=64))
        async for token in handle.stream():   # first yield == TTFT
            print(token)

Lifecycle contract (see ``docs/async_serving.md``):

* ``submit()`` — register a request; the drive loop wakes and serves it.
* ``handle.stream()`` — async-iterate tokens as they are emitted.
* ``await handle.result()`` — await completion, get the full token list.
* ``handle.cancel()`` — abort mid-flight; backend KV is released through the
  same decref path preemption uses, the stream ends early.
* ``await drain()`` — refuse new submissions, serve everything in flight.
* ``await shutdown()`` — abort everything still in flight, stop the loop.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.serving.backend import InferenceBackend
from repro.serving.engine import RequestHandle, ServingEngine, StepOutcome
from repro.serving.metrics import LiveGauges, ServingMetrics
from repro.serving.request import Request
from repro.serving.sampling import SamplingParams

__all__ = ["RequestAborted", "AsyncRequestHandle", "AsyncServingEngine"]

#: Stream sentinel: pushed into a handle's queue when no more tokens will come.
_DONE = object()


class RequestAborted(Exception):
    """Raised by :meth:`AsyncRequestHandle.result` when the request was cancelled.

    Carries the tokens generated before the abort in :attr:`partial_tokens`.
    """

    def __init__(self, request_id: str, partial_tokens: list[int]) -> None:
        super().__init__(
            f"request {request_id!r} was aborted after {len(partial_tokens)} token(s)"
        )
        self.request_id = request_id
        self.partial_tokens = partial_tokens


class AsyncRequestHandle:
    """Async view of one in-flight request: stream, await, or cancel it.

    Wraps the synchronous :class:`~repro.serving.engine.RequestHandle` (which
    keeps accumulating ``output_tokens``) with an asyncio delivery queue fed
    by the engine's drive loop.  One consumer per handle: ``stream()`` and
    ``result()`` may be combined (stream first, then await the result), but
    two concurrent ``stream()`` iterations would steal tokens from each other.
    """

    def __init__(self, sync_handle: RequestHandle, engine: "AsyncServingEngine") -> None:
        self._sync = sync_handle
        self._engine = engine
        self._queue: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()

    @property
    def request_id(self) -> str:
        """The request's unique id."""
        return self._sync.request_id

    @property
    def request(self) -> Request:
        """The immutable request this handle tracks."""
        return self._sync.request

    @property
    def output_tokens(self) -> list[int]:
        """Tokens generated so far (a snapshot copy)."""
        return list(self._sync.output_tokens)

    @property
    def finished(self) -> bool:
        """Whether the request is terminal (completed or cancelled)."""
        return self._sync.finished

    @property
    def cancelled(self) -> bool:
        """Whether the request was aborted before completing."""
        return self._sync.cancelled

    async def stream(self):
        """Async-iterate tokens as the engine emits them.

        The first yield is the request's first token — time-to-first-token is
        observable here, long before the generation finishes.  The iterator
        ends after the last token, or early (without error) when the request
        is cancelled; check :attr:`cancelled` afterwards to tell the two
        apart.  Tokens emitted before ``stream()`` was called are not lost —
        delivery is queued from submission.
        """
        while True:
            token = await self._queue.get()
            if token is _DONE:
                return
            yield token

    async def result(self) -> list[int]:
        """Await completion and return the full output token list.

        Raises :class:`RequestAborted` (carrying the partial tokens) when the
        request was cancelled before finishing.
        """
        await self._done.wait()
        if self.cancelled:
            raise RequestAborted(self.request_id, self.output_tokens)
        return self.output_tokens

    def cancel(self) -> bool:
        """Abort the request (idempotent); returns ``True`` if it was live.

        Mid-decode, the request's backend KV is released immediately through
        the same path preemption uses; any active ``stream()`` ends at the
        next iteration and ``result()`` raises :class:`RequestAborted`.
        """
        if self.finished:
            return False
        return self._engine.abort(self.request_id)

    # -- engine-side delivery ---------------------------------------------------
    def _push(self, token: int) -> None:
        self._queue.put_nowait(token)

    def _finish(self) -> None:
        if not self._done.is_set():
            self._queue.put_nowait(_DONE)
            self._done.set()


class AsyncServingEngine:
    """Continuous-batching serving with live arrivals and streamed delivery.

    Wraps a synchronous :class:`~repro.serving.engine.ServingEngine` (same
    backend/scheduler/metrics semantics — see that class for the policy
    story) in a background *drive loop*: an asyncio task that calls
    ``step()`` while there is work and sleeps on an event otherwise.  The
    loop yields to the event loop between steps, so submissions, stream
    consumers, and HTTP handlers interleave with the serving iterations of a
    single thread.

    Use as an async context manager (``async with AsyncServingEngine(...)``),
    or call :meth:`start` / :meth:`shutdown` yourself.  All methods must be
    called from the event loop that runs the engine — the front end is
    single-loop by design (no cross-thread synchronisation, same determinism
    as the batch API).
    """

    def __init__(
        self,
        backend: InferenceBackend,
        scheduler_config=None,
        default_sampling: SamplingParams | None = None,
        draft_source=None,
        adaptive_k=None,
    ) -> None:
        self.engine = ServingEngine(
            backend,
            scheduler_config,
            default_sampling,
            draft_source=draft_source,
            adaptive_k=adaptive_k,
        )
        self._handles: dict[str, AsyncRequestHandle] = {}
        self._wake = asyncio.Event()
        self._drive_task: asyncio.Task | None = None
        self._draining = False
        #: Exception that killed the drive loop, if any; re-raised by
        #: drain()/shutdown() and blocks further submissions.
        self._failure: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Start the background drive loop (idempotent; needs a running loop)."""
        if self._draining:
            raise RuntimeError("engine is draining or shut down; create a new one")
        if self._drive_task is None or self._drive_task.done():
            self._drive_task = asyncio.get_running_loop().create_task(
                self._drive(), name="serving-drive-loop"
            )

    async def __aenter__(self) -> "AsyncServingEngine":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    async def drain(self) -> ServingMetrics:
        """Serve everything in flight to completion, refusing new submissions.

        Returns the engine's aggregate metrics once the last request retires.
        After ``drain()`` the engine is stopped; a new engine must be created
        to serve again.  If the drive loop died on a backend/scheduler
        exception, that exception is re-raised here.
        """
        self._draining = True
        self._wake.set()
        if self._drive_task is not None:
            await self._drive_task
        if self._failure is not None:
            raise RuntimeError("the serving drive loop failed") from self._failure
        # Streams of already-finished requests are flushed by the drive loop;
        # nothing else to wait for.
        return self.engine.metrics

    async def shutdown(self) -> None:
        """Abort everything still in flight and stop the drive loop.

        Re-raises the drive loop's exception if it died on one.
        """
        self._draining = True
        for request_id, handle in list(self._handles.items()):
            if not handle.finished:
                self.abort(request_id)
        self._wake.set()
        if self._drive_task is not None:
            await self._drive_task
            self._drive_task = None
        if self._failure is not None:
            raise RuntimeError("the serving drive loop failed") from self._failure

    # -- submission --------------------------------------------------------------
    def submit(self, request: Request, *, arrive_now: bool = False) -> AsyncRequestHandle:
        """Register a request and wake the drive loop; returns a stream handle.

        With ``arrive_now=True`` the request's ``arrival_time_s`` is replaced
        by the engine's current virtual clock — the right stamp for *live*
        traffic (an HTTP request "arrives" when it is submitted, so queueing
        delay and TTFT are measured from now).  Leave it ``False`` when
        replaying a trace whose arrival times are the experiment: the virtual
        clock then reproduces exactly the schedule the batch API would run.
        """
        if self._failure is not None:
            raise RuntimeError(
                "the serving drive loop failed; submission refused"
            ) from self._failure
        if self._draining:
            raise RuntimeError("engine is draining or shut down; submission refused")
        if arrive_now:
            request = dataclasses.replace(
                request, arrival_time_s=max(request.arrival_time_s, self.engine.clock_s)
            )
        sync_handle = self.engine.submit(request)
        handle = AsyncRequestHandle(sync_handle, self)
        self._handles[request.request_id] = handle
        self.start()
        self._wake.set()
        return handle

    def adopt(self, request: Request, **kwargs) -> AsyncRequestHandle:
        """Adopt a request whose KV was migrated here from another tier.

        Async wrapper over :meth:`ServingEngine.adopt` (same keyword
        arguments): registers a stream handle, wakes the drive loop, and
        returns the handle.  Only tokens generated *on this tier* are
        delivered through :meth:`AsyncRequestHandle.stream` — the prefill
        tier already delivered the earlier ones — while ``output_tokens`` /
        ``result()`` report the complete sequence.
        """
        if self._failure is not None:
            raise RuntimeError(
                "the serving drive loop failed; adoption refused"
            ) from self._failure
        if self._draining:
            raise RuntimeError("engine is draining or shut down; adoption refused")
        sync_handle = self.engine.adopt(request, **kwargs)
        handle = AsyncRequestHandle(sync_handle, self)
        self._handles[request.request_id] = handle
        self.start()
        self._wake.set()
        return handle

    def handle(self, request_id: str) -> AsyncRequestHandle:
        """Look up the async handle of an *in-flight* request.

        Terminal requests are pruned from the engine's maps the moment their
        last token is delivered (a long-lived server must not accumulate one
        handle per request forever), so look-ups are only valid while the
        request is live — keep the handle ``submit()`` returned to read
        results afterwards.
        """
        return self._handles[request_id]

    def abort(self, request_id: str) -> bool:
        """Abort an in-flight request by id; ``False`` if it is not in flight.

        Also terminates the request's stream (the async iterator ends early).
        Unlike :meth:`ServingEngine.abort`, an unknown id returns ``False``
        rather than raising: terminal requests are pruned from the live maps,
        so "finished just now" and "never existed" are indistinguishable here.
        """
        handle = self._handles.pop(request_id, None)
        if handle is None:
            return False
        aborted = self.engine.abort(request_id)
        self.engine.clear_finished()
        handle._finish()
        return aborted

    # -- observability -----------------------------------------------------------
    @property
    def metrics(self) -> ServingMetrics:
        """Aggregate metrics over completed requests (same as the batch API)."""
        return self.engine.metrics

    @property
    def default_sampling(self) -> SamplingParams:
        """The engine-wide sampling default (used when a request carries none)."""
        return self.engine.default_sampling

    @property
    def failure(self) -> BaseException | None:
        """The exception that killed the drive loop, or ``None`` while healthy.

        A failed engine has terminated every live stream and refuses new
        submissions; ``drain()``/``shutdown()`` re-raise this exception.  A
        :class:`~repro.serving.cluster.ServingCluster` uses it to tell a
        replica failure apart from an ordinary cancellation.
        """
        return self._failure

    def live_gauges(self) -> LiveGauges:
        """Instantaneous queue/batch/KV gauges (see :class:`LiveGauges`)."""
        return self.engine.live_gauges()

    def prometheus_metrics(self) -> str:
        """The live gauges in Prometheus text format (the ``/metrics`` body)."""
        return self.live_gauges().to_prometheus()

    # -- the drive loop ----------------------------------------------------------
    async def _drive(self) -> None:
        """Step the sync engine while work exists; sleep on the wake event otherwise.

        Exactly one drive loop runs per engine.  Each iteration performs one
        scheduler step (one prefill, one resume, or one batched decode), then
        yields control so submissions and stream consumers run; when the
        engine goes idle the loop parks on the wake event until the next
        ``submit()`` (or ``drain()``/``shutdown()``, which let it exit).

        A step exception (backend bug, genuinely unservable pool, ...) must
        not strand consumers on streams that will never end: the loop records
        the failure, terminates every live stream, and stops accepting work;
        ``drain()``/``shutdown()`` re-raise the failure to the caller.
        """
        try:
            while True:
                if self.engine.has_work:
                    outcome = self.engine.step()
                    if outcome is not None:
                        self._publish(outcome)
                    await asyncio.sleep(0)
                    continue
                if self._draining:
                    break
                self._wake.clear()
                # Re-check after clearing: a submit() between the has_work
                # check and clear() would otherwise be missed.
                if self.engine.has_work or self._draining:
                    continue
                await self._wake.wait()
        except Exception as exc:
            self._failure = exc
            self._draining = True
            for request_id, handle in list(self._handles.items()):
                if not handle.finished:
                    try:
                        self.engine.abort(request_id)
                    except Exception:
                        # The engine may be mid-step inconsistent; ending the
                        # stream is what matters now.
                        pass
                handle._finish()

    def _publish(self, outcome: StepOutcome) -> None:
        """Deliver one step's emissions, then prune the finished requests.

        Pruning bounds memory in a long-lived server: the engine-side maps
        (this front end's and the sync engine's, each holding the full output
        token list) drop a request as soon as its last token is delivered.
        The ``AsyncRequestHandle`` returned by ``submit()`` keeps working —
        it owns its queue and its reference to the tokens.
        """
        for request_id, token in outcome.emitted_tokens:
            handle = self._handles.get(request_id)
            if handle is not None:
                handle._push(token)
        for request_id in outcome.finished_ids:
            handle = self._handles.pop(request_id, None)
            if handle is not None:
                handle._finish()
        if outcome.finished_ids:
            self.engine.clear_finished()
