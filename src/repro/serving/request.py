"""Request and per-sequence state for the serving engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.serving.sampling import SamplingParams

__all__ = ["Request", "RequestStatus", "RequestState"]


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the serving system."""

    WAITING = "waiting"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass(frozen=True)
class Request:
    """An inference request: a prompt and a generation budget.

    ``prompt_token_ids`` carries the actual prompt for real-compute backends;
    cost-model backends only need ``prompt_tokens`` (the length), so the ids
    are optional.  ``sampling`` overrides the serving engine's default
    :class:`SamplingParams` for this request.
    """

    request_id: str
    prompt_tokens: int
    max_new_tokens: int
    arrival_time_s: float = 0.0
    prompt_token_ids: tuple[int, ...] | None = None
    sampling: SamplingParams | None = None

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time_s < 0:
            raise ValueError("arrival_time_s must be non-negative")
        if self.prompt_token_ids is not None:
            ids = tuple(int(t) for t in self.prompt_token_ids)
            if len(ids) != self.prompt_tokens:
                raise ValueError(
                    f"prompt_token_ids has {len(ids)} tokens but prompt_tokens is "
                    f"{self.prompt_tokens}"
                )
            object.__setattr__(self, "prompt_token_ids", ids)

    @classmethod
    def from_prompt(
        cls,
        request_id: str,
        token_ids,
        max_new_tokens: int,
        arrival_time_s: float = 0.0,
        sampling: SamplingParams | None = None,
    ) -> "Request":
        """Build a request straight from a prompt token sequence."""
        ids = tuple(int(t) for t in token_ids)
        return cls(
            request_id=request_id,
            prompt_tokens=len(ids),
            max_new_tokens=max_new_tokens,
            arrival_time_s=arrival_time_s,
            prompt_token_ids=ids,
            sampling=sampling,
        )


@dataclass
class RequestState:
    """Mutable serving state of one request."""

    request: Request
    status: RequestStatus = RequestStatus.WAITING
    generated_tokens: int = 0
    prefill_finish_time_s: float | None = None
    finish_time_s: float | None = None

    @property
    def context_length(self) -> int:
        """Tokens currently held in the KV cache for this request."""
        if self.status is RequestStatus.WAITING:
            return 0
        return self.request.prompt_tokens + self.generated_tokens

    @property
    def is_finished(self) -> bool:
        return self.status is RequestStatus.FINISHED

    def record_prefill(self, now_s: float) -> None:
        if self.status is not RequestStatus.WAITING:
            raise ValueError(f"cannot prefill request in status {self.status}")
        self.status = RequestStatus.DECODING
        self.prefill_finish_time_s = now_s

    def record_decode_token(self, now_s: float) -> None:
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot decode request in status {self.status}")
        self.generated_tokens += 1
        if self.generated_tokens >= self.request.max_new_tokens:
            self.status = RequestStatus.FINISHED
            self.finish_time_s = now_s

    def mark_finished(self, now_s: float) -> None:
        """Terminate generation early (EOS / stop token) before the budget."""
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot finish request in status {self.status}")
        self.status = RequestStatus.FINISHED
        self.finish_time_s = now_s
