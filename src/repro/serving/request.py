"""Request and per-sequence state for the serving engine.

A :class:`Request` is the immutable description of one unit of work (prompt,
generation budget, arrival time, priority class); a :class:`RequestState` is
its mutable serving-side lifecycle, which the scheduler moves through
:class:`RequestStatus`:

``WAITING -> DECODING -> FINISHED`` in the simple case, with a
``DECODING -> PREEMPTED -> DECODING`` detour every time the scheduler evicts
the request under KV pressure (recompute-style preemption: the KV cache is
released and rebuilt on re-admission, see
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`).  With a cold
KV tier enabled the cheaper ``DECODING -> DEMOTED -> DECODING`` detour is
taken instead: the KV pages move to the host tier and are *restored* (a
modeled transfer, not a recompute) on re-admission.  Any
non-terminal state can transition to ``CANCELLED`` when the caller aborts the
request (:meth:`~repro.serving.engine.ServingEngine.abort`); cancelled
requests keep whatever tokens they had already generated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.serving.sampling import SamplingParams

__all__ = ["Request", "RequestStatus", "RequestState"]


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the serving system."""

    WAITING = "waiting"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    DEMOTED = "demoted"
    FINISHED = "finished"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class Request:
    """An inference request: a prompt and a generation budget.

    ``prompt_token_ids`` carries the actual prompt for real-compute backends;
    cost-model backends only need ``prompt_tokens`` (the length), so the ids
    are optional.  ``sampling`` overrides the serving engine's default
    :class:`SamplingParams` for this request.  ``priority`` is the request's
    scheduling class — **lower values are more urgent** (0 = interactive
    default); it is consulted by the ``"priority"`` scheduler policy and
    carried into per-class :class:`~repro.serving.metrics.ServingMetrics`.
    """

    request_id: str
    prompt_tokens: int
    max_new_tokens: int
    arrival_time_s: float = 0.0
    prompt_token_ids: tuple[int, ...] | None = None
    sampling: SamplingParams | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time_s < 0:
            raise ValueError("arrival_time_s must be non-negative")
        if self.priority < 0:
            raise ValueError("priority must be non-negative (0 = most urgent)")
        if self.prompt_token_ids is not None:
            ids = tuple(int(t) for t in self.prompt_token_ids)
            if len(ids) != self.prompt_tokens:
                raise ValueError(
                    f"prompt_token_ids has {len(ids)} tokens but prompt_tokens is "
                    f"{self.prompt_tokens}"
                )
            object.__setattr__(self, "prompt_token_ids", ids)

    @classmethod
    def from_prompt(
        cls,
        request_id: str,
        token_ids,
        max_new_tokens: int,
        arrival_time_s: float = 0.0,
        sampling: SamplingParams | None = None,
        priority: int = 0,
    ) -> "Request":
        """Build a request straight from a prompt token sequence."""
        ids = tuple(int(t) for t in token_ids)
        return cls(
            request_id=request_id,
            prompt_tokens=len(ids),
            max_new_tokens=max_new_tokens,
            arrival_time_s=arrival_time_s,
            prompt_token_ids=ids,
            sampling=sampling,
            priority=priority,
        )


@dataclass
class RequestState:
    """Mutable serving state of one request.

    ``submit_seq`` is the scheduler's monotonically increasing submission
    number (assigned on first enqueue) used for FCFS ordering and tie-breaks;
    it is preserved across preemptions so a preempted request keeps its place
    relative to later arrivals.  ``preemptions`` counts how many times this
    request was evicted under KV pressure and ``preempted_stall_s`` the total
    virtual seconds it spent evicted (preempt to resume).  ``scheduled_time_s``
    is the virtual clock (seconds) at which the request was *first* admitted
    for prefill — ``scheduled_time_s - request.arrival_time_s`` is the
    queueing delay.
    """

    request: Request
    status: RequestStatus = RequestStatus.WAITING
    generated_tokens: int = 0
    prefill_finish_time_s: float | None = None
    finish_time_s: float | None = None
    scheduled_time_s: float | None = None
    submit_seq: int | None = None
    preemptions: int = 0
    preempted_stall_s: float = 0.0
    last_preempt_time_s: float | None = None
    #: Cold-tier evictions: times this request's KV was demoted to the host
    #: tier (cheaper than a preemption — restore is a transfer, not a
    #: recompute) and the total virtual seconds spent demoted.
    demotions: int = 0
    demoted_stall_s: float = 0.0
    last_demote_time_s: float | None = None
    #: Prompt tokens whose KV is shared with a cached prefix (set after each
    #: prefill/resume from the backend's ``StepResult.prefix_hit_tokens``).
    #: Shared pages are physical storage once, so they are excluded from this
    #: request's KV accounting — admission and preemption watermarks charge
    #: each request only for its *unique* pages.
    shared_prefix_tokens: int = 0

    @property
    def context_length(self) -> int:
        """Unique KV tokens currently materialised for this request.

        ``0`` while the request is waiting, preempted, or demoted (preempted
        KV pages were released; demoted pages live in the cold tier, and the
        watermarks count only the hot tier).  Tokens attached from a shared
        prefix are not charged to this request.
        """
        if self.status in (
            RequestStatus.WAITING,
            RequestStatus.PREEMPTED,
            RequestStatus.DEMOTED,
        ):
            return 0
        return max(
            0,
            self.request.prompt_tokens + self.generated_tokens - self.shared_prefix_tokens,
        )

    @property
    def resume_kv_tokens(self) -> int:
        """KV tokens (re-)admission will materialise: prompt + generated so far.

        Deliberately conservative: whether a prefix hit will shrink the
        *unique* footprint is only known after the prefill runs, so admission
        budgets the full size and the watermark accounting tightens once
        ``shared_prefix_tokens`` is known.
        """
        return self.request.prompt_tokens + self.generated_tokens

    @property
    def is_finished(self) -> bool:
        """Whether the request has produced its last token."""
        return self.status is RequestStatus.FINISHED

    @property
    def is_cancelled(self) -> bool:
        """Whether the request was aborted before producing its last token."""
        return self.status is RequestStatus.CANCELLED

    @property
    def is_terminal(self) -> bool:
        """Whether the request will never produce another token (done or aborted)."""
        return self.status in (RequestStatus.FINISHED, RequestStatus.CANCELLED)

    def record_scheduled(self, now_s: float) -> None:
        """Stamp the first admission time (idempotent across preemptions)."""
        if self.scheduled_time_s is None:
            self.scheduled_time_s = now_s

    def record_prefill(self, now_s: float) -> None:
        """Transition ``WAITING -> DECODING`` once the prompt has been prefilled."""
        if self.status is not RequestStatus.WAITING:
            raise ValueError(f"cannot prefill request in status {self.status}")
        self.status = RequestStatus.DECODING
        self.prefill_finish_time_s = now_s

    def record_decode_token(self, now_s: float) -> None:
        """Account one generated token; finishes when the budget is exhausted."""
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot decode request in status {self.status}")
        self.generated_tokens += 1
        if self.generated_tokens >= self.request.max_new_tokens:
            self.status = RequestStatus.FINISHED
            self.finish_time_s = now_s

    def record_preempt(self, now_s: float) -> None:
        """Transition ``DECODING -> PREEMPTED`` (KV released, back to the queue).

        Generated tokens are kept — on re-admission the engine re-prefills the
        prompt and replays them so generation continues byte-identically.
        """
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot preempt request in status {self.status}")
        self.status = RequestStatus.PREEMPTED
        self.preemptions += 1
        self.last_preempt_time_s = now_s

    def record_resume(self, now_s: float) -> None:
        """Transition ``PREEMPTED -> DECODING`` after recompute (re-prefill + replay).

        Accumulates the evicted interval into ``preempted_stall_s``.
        """
        if self.status is not RequestStatus.PREEMPTED:
            raise ValueError(f"cannot resume request in status {self.status}")
        self.status = RequestStatus.DECODING
        if self.last_preempt_time_s is not None:
            self.preempted_stall_s += now_s - self.last_preempt_time_s
            self.last_preempt_time_s = None

    def record_demote(self, now_s: float) -> None:
        """Transition ``DECODING -> DEMOTED`` (KV parked in the cold tier).

        Unlike :meth:`record_preempt`, nothing is recomputed later: the
        backend keeps a restorable snapshot, so re-admission pays only a
        modeled transfer (:meth:`record_restore`).
        """
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot demote request in status {self.status}")
        self.status = RequestStatus.DEMOTED
        self.demotions += 1
        self.last_demote_time_s = now_s

    def demote_to_preempt(self) -> None:
        """Reclassify an in-flight demotion as a preemption (restore fell through).

        Taken when a demoted request's cold snapshot cannot be re-attached
        (e.g. the page pool cannot hold it) and the engine falls back to
        recompute: the request's history must then read as one preemption,
        not a demotion, and the pending stall interval carries over.
        """
        if self.status is not RequestStatus.DEMOTED:
            raise ValueError(f"cannot reclassify request in status {self.status}")
        self.status = RequestStatus.PREEMPTED
        self.demotions -= 1
        self.preemptions += 1
        self.last_preempt_time_s = self.last_demote_time_s
        self.last_demote_time_s = None

    def record_restore(self, now_s: float) -> None:
        """Transition ``DEMOTED -> DECODING`` after the cold-tier restore.

        Accumulates the demoted interval into ``demoted_stall_s``.
        """
        if self.status is not RequestStatus.DEMOTED:
            raise ValueError(f"cannot restore request in status {self.status}")
        self.status = RequestStatus.DECODING
        if self.last_demote_time_s is not None:
            self.demoted_stall_s += now_s - self.last_demote_time_s
            self.last_demote_time_s = None

    def mark_finished(self, now_s: float) -> None:
        """Terminate generation early (EOS / stop token) before the budget."""
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot finish request in status {self.status}")
        self.status = RequestStatus.FINISHED
        self.finish_time_s = now_s

    def mark_cancelled(self, now_s: float) -> None:
        """Abort the request from any non-terminal state (caller cancellation).

        Unlike preemption, cancellation is terminal: the request never re-enters
        the waiting queue and its generated-so-far tokens are simply what the
        caller keeps.  The engine owns releasing any backend KV first.
        """
        if self.is_terminal:
            raise ValueError(f"cannot cancel request in status {self.status}")
        self.status = RequestStatus.CANCELLED
        self.finish_time_s = now_s
