"""Request and per-sequence state for the serving simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Request", "RequestStatus", "RequestState"]


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the serving system."""

    WAITING = "waiting"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass(frozen=True)
class Request:
    """An inference request: a prompt length and a generation budget."""

    request_id: str
    prompt_tokens: int
    max_new_tokens: int
    arrival_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time_s < 0:
            raise ValueError("arrival_time_s must be non-negative")


@dataclass
class RequestState:
    """Mutable serving state of one request."""

    request: Request
    status: RequestStatus = RequestStatus.WAITING
    generated_tokens: int = 0
    prefill_finish_time_s: float | None = None
    finish_time_s: float | None = None

    @property
    def context_length(self) -> int:
        """Tokens currently held in the KV cache for this request."""
        if self.status is RequestStatus.WAITING:
            return 0
        return self.request.prompt_tokens + self.generated_tokens

    @property
    def is_finished(self) -> bool:
        return self.status is RequestStatus.FINISHED

    def record_prefill(self, now_s: float) -> None:
        if self.status is not RequestStatus.WAITING:
            raise ValueError(f"cannot prefill request in status {self.status}")
        self.status = RequestStatus.DECODING
        self.prefill_finish_time_s = now_s

    def record_decode_token(self, now_s: float) -> None:
        if self.status is not RequestStatus.DECODING:
            raise ValueError(f"cannot decode request in status {self.status}")
        self.generated_tokens += 1
        if self.generated_tokens >= self.request.max_new_tokens:
            self.status = RequestStatus.FINISHED
            self.finish_time_s = now_s
