"""Serving framework: requests, continuous-batching scheduler, metrics, and a
serving-loop simulator driven by the GPU cost model."""

from repro.serving.request import Request, RequestState, RequestStatus
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerConfig
from repro.serving.metrics import ServingMetrics, RequestRecord
from repro.serving.server import ServingSimulator

__all__ = [
    "Request",
    "RequestState",
    "RequestStatus",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "ServingMetrics",
    "RequestRecord",
    "ServingSimulator",
]
