"""Serving framework: one backend API, one front door, one metrics path.

The package is organised around the :class:`~repro.serving.backend.InferenceBackend`
protocol — ``prefill(seq_id, tokens)``, ``decode_batch(seq_ids, token_ids)``,
``release(seq_id)`` plus uniform :class:`~repro.serving.backend.BackendWork`
accounting.  Two implementations exist:

* :class:`~repro.serving.backend.LServeBackend` — the real
  :class:`~repro.core.engine.LServeEngine` with multi-sequence batched decode
  and chunked prefill; tokens actually flow through the sparse-attention model.
* :class:`~repro.serving.backend.SimulatedBackend` — the GPU cost model on a
  virtual clock, for scheduler-level experiments at paper scale.

:class:`~repro.serving.engine.ServingEngine` is the front door on top:
``submit(Request) -> RequestHandle``, ``step()``, ``run_until_complete()``,
and a ``generate()`` convenience with :class:`~repro.serving.sampling.SamplingParams`
(greedy / temperature / top-k, EOS and stop-token handling).  Scheduling is
policy-driven and preemptive: the
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` admits requests
under a pluggable policy (FCFS / shortest-prompt-first / priority classes)
with best-effort high/low-watermark KV admission, and evicts running requests
under KV pressure (recompute-style preemption, replayed byte-identically on
resume).  Prefix sharing threads through the whole stack: backends report
``StepResult.prefix_hit_tokens`` for prompts attached from the KV prefix
cache, watermarks charge each request only for its *unique* KV, and a
backend-reported page exhaustion
(:class:`~repro.core.engine.DecodeOutOfPagesError`) preempts exactly the
failed sequences.  With a cold KV tier configured
(:class:`~repro.kvcache.tiering.KVTieringConfig` on either backend), pressure
victims are *demoted* instead — their KV pages move to a simulated host tier
(bit-exact ``"offload"`` or lossy ``"quantized"``) and re-admission pays a
modeled :class:`~repro.gpu.cost_model.TransferCostModel` restore instead of a
full recompute; see ``docs/kv_tiering.md``.  :mod:`repro.serving.workload`
generates seeded
Poisson/bursty request traces from scenario presets (including the
``"shared_prefix"`` multi-tenant/multi-turn regime), and TTFT / per-token
latency / throughput / SLO attainment are reported through the same
:class:`~repro.serving.metrics.ServingMetrics` records for every backend and
policy.

**Speculative decoding** (:mod:`repro.serving.speculative`) rides on the same
front door: attach a :class:`~repro.serving.speculative.DraftSource` to the
engine and opt requests in with ``SamplingParams.speculation_k`` — each decode
step then verifies up to ``k`` drafted tokens in one amortized chunk
(:meth:`~repro.core.engine.LServeEngine.decode_speculative` on a copy-on-write
scratch fork), accepts the longest byte-exact prefix, and rolls rejected draft
KV back through the ref-counted release path.  When two or more batch members
speculate in the same step their chunks verify in one *fused* call
(:meth:`~repro.core.engine.LServeEngine.decode_speculative_batch`), recovering
cross-request GEMM amortization at saturation, and an optional
:class:`~repro.serving.speculative.AdaptiveKPolicy` follows each request's
rolling acceptance rate to pick its effective speculation depth.  Outputs are
byte-identical to a non-speculative run at any acceptance rate; acceptance
rate, effective tokens per step, and the live ``speculation_k`` spread surface
through :class:`~repro.serving.metrics.LiveGauges`, per-request records, and
Prometheus.  See ``docs/speculative.md``.

On top of the synchronous front door sits the **async serving layer**
(:mod:`repro.serving.frontend`): :class:`~repro.serving.frontend.AsyncServingEngine`
drives the step loop from a background asyncio task, accepts live submissions
mid-run, streams tokens per request (``async for token in handle.stream()``),
and supports cancellation and graceful drain/shutdown.
:class:`~repro.serving.http.CompletionServer` exposes it over dependency-free
HTTP (OpenAI-style ``POST /v1/completions`` with SSE streaming, plus
``/healthz`` and ``/metrics`` live gauges), and :mod:`repro.serving.client`
provides the matching async client and the open-loop trace load generator.

Horizontal scale-out lives in :mod:`repro.serving.cluster`:
:class:`~repro.serving.cluster.ServingCluster` routes requests across N
independent engine replicas under pluggable routing policies
(``round_robin`` / ``least_kv`` / ``prefix_affinity``), quarantines failed
replicas and resubmits their in-flight requests with byte-identical streams,
and merges per-replica metrics into fleet-wide
:class:`~repro.serving.cluster.ClusterMetrics` — servable over the same
HTTP front end.  :class:`~repro.serving.cluster.DisaggregatedCluster`
splits the fleet into prefill and decode tiers with modeled KV hand-off
(``backend.handoff_out`` → :class:`~repro.serving.backend.KVHandoff` →
``backend.handoff_in``, priced by
:class:`~repro.gpu.cost_model.TransferCostModel`), isolating decode latency
from long-prefill interference.
"""

from repro.serving.backend import (
    BackendWork,
    InferenceBackend,
    KVHandoff,
    LServeBackend,
    SimulatedBackend,
    SpecBatchResult,
    SpecStepResult,
    StepResult,
)
from repro.serving.client import CompletionClient, CompletionResult, replay_trace
from repro.serving.cluster import (
    ROUTING_POLICIES,
    ClusterMetrics,
    ClusterRequestHandle,
    DisaggMetrics,
    DisaggregatedCluster,
    LeastKVPolicy,
    PrefixAffinityPolicy,
    Replica,
    RoundRobinPolicy,
    RoutingPolicy,
    ServingCluster,
    make_routing_policy,
    merge_live_gauges,
    render_cluster_prometheus,
)
from repro.kvcache.tiering import (
    ColdTierError,
    ColdTierStore,
    KVTieringConfig,
)
from repro.serving.engine import RequestHandle, ServingEngine, StepOutcome
from repro.serving.frontend import (
    AsyncRequestHandle,
    AsyncServingEngine,
    RequestAborted,
)
from repro.serving.http import CompletionServer
from repro.serving.metrics import LiveGauges, RequestRecord, ServingMetrics
from repro.serving.request import Request, RequestState, RequestStatus
from repro.serving.sampling import SamplingParams, sample_token
from repro.serving.speculative import (
    AdaptiveKPolicy,
    CheapEngineDraft,
    DraftSource,
    ModeledDraft,
    NGramDraft,
    PrerecordedDraft,
)
from repro.serving.scheduler import (
    POLICIES,
    ContinuousBatchingScheduler,
    FCFSPolicy,
    PriorityPolicy,
    SchedulerConfig,
    SchedulingPolicy,
    ShortestPromptFirstPolicy,
    make_policy,
)
from repro.serving.workload import (
    SCENARIOS,
    RequestClass,
    WorkloadGenerator,
    WorkloadSpec,
    arrival_offsets,
    scenario,
)

__all__ = [
    "BackendWork",
    "InferenceBackend",
    "KVHandoff",
    "LServeBackend",
    "SimulatedBackend",
    "StepResult",
    "SpecStepResult",
    "SpecBatchResult",
    "AdaptiveKPolicy",
    "DraftSource",
    "NGramDraft",
    "CheapEngineDraft",
    "ModeledDraft",
    "PrerecordedDraft",
    "KVTieringConfig",
    "ColdTierStore",
    "ColdTierError",
    "RequestHandle",
    "ServingEngine",
    "StepOutcome",
    "AsyncRequestHandle",
    "AsyncServingEngine",
    "RequestAborted",
    "ServingCluster",
    "DisaggregatedCluster",
    "ClusterRequestHandle",
    "Replica",
    "ClusterMetrics",
    "DisaggMetrics",
    "merge_live_gauges",
    "render_cluster_prometheus",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastKVPolicy",
    "PrefixAffinityPolicy",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "CompletionServer",
    "CompletionClient",
    "CompletionResult",
    "replay_trace",
    "LiveGauges",
    "Request",
    "RequestState",
    "RequestStatus",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "SchedulingPolicy",
    "FCFSPolicy",
    "ShortestPromptFirstPolicy",
    "PriorityPolicy",
    "POLICIES",
    "make_policy",
    "SamplingParams",
    "sample_token",
    "ServingMetrics",
    "RequestRecord",
    "WorkloadSpec",
    "RequestClass",
    "WorkloadGenerator",
    "SCENARIOS",
    "scenario",
    "arrival_offsets",
]
