"""Unified block-sparse attention for prefilling and decoding (paper §3.1).

Both stages share one formulation: attention is computed tile by tile
(``TQ × TK``), and a tile is either fully computed or fully skipped.

* **Prefilling** (``TQ = q_block_size``): dense (retrieval) heads use the full
  causal block mask, streaming heads use the Λ-shaped block mask; both are
  fused into a single call to the block-wise kernel model.
* **Decoding** (``TQ = 1``): streaming heads attend over the constant-size
  sink+local store, dense heads attend over the physical pages chosen by the
  page selector.  Computing softmax over exactly the gathered tokens is
  numerically identical to running the full kernel with skipped blocks, so the
  decode path is expressed as ordinary attention over gathered subsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.dense import dense_attention
from repro.attention.flash_reference import BlockAttentionResult, blockwise_attention
from repro.core.streaming import StreamingConfig, build_prefill_block_masks

__all__ = [
    "PrefillAttentionStats",
    "prefill_sparse_attention",
    "decode_group_attention",
    "decode_batched_attention",
]


@dataclass
class PrefillAttentionStats:
    """Work accounting for one fused prefill attention call."""

    visited_blocks: int
    total_blocks: int

    @property
    def sparsity(self) -> float:
        if self.total_blocks == 0:
            return 0.0
        return 1.0 - self.visited_blocks / self.total_blocks

    @property
    def theoretical_speedup(self) -> float:
        return 1.0 / max(1e-12, 1.0 - self.sparsity)


def prefill_sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    head_is_streaming: np.ndarray,
    streaming: StreamingConfig,
    q_block: int,
    kv_block: int,
) -> tuple[np.ndarray, PrefillAttentionStats]:
    """Fused prefill attention over dense and streaming heads.

    ``q`` is ``(n_q, n_heads, head_dim)``, ``k``/``v`` are
    ``(n_kv, n_kv_heads, head_dim)`` (GQA supported), and
    ``head_is_streaming`` is a boolean array over *query* heads.
    Returns ``(output, stats)``.
    """
    q = np.asarray(q, dtype=np.float64)
    head_is_streaming = np.asarray(head_is_streaming, dtype=bool)
    if head_is_streaming.shape != (q.shape[1],):
        raise ValueError(
            f"head_is_streaming must have shape ({q.shape[1]},), got {head_is_streaming.shape}"
        )
    n_q, _, _ = q.shape
    n_kv = np.asarray(k).shape[0]
    block_masks = build_prefill_block_masks(
        n_q, n_kv, q_block, kv_block, head_is_streaming, streaming
    )
    result: BlockAttentionResult = blockwise_attention(
        q, k, v, q_block=q_block, kv_block=kv_block, block_mask=block_masks, causal=True
    )
    stats = PrefillAttentionStats(
        visited_blocks=result.visited_blocks, total_blocks=result.total_blocks
    )
    return result.output, stats


def decode_batched_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, gqa_group_size: int = 1
) -> np.ndarray:
    """Decode attention for a batch of sequences over all their KV heads at once.

    ``q`` is ``(batch, n_q_heads, head_dim)`` (one decode query per sequence);
    ``k``/``v`` are **head-major** gathered KV subsets of shape
    ``(batch, n_kv_heads, n_tokens, head_dim)`` — every sequence in the batch
    must have gathered the same number of tokens per head (callers group
    sequences by shape first).  Every gathered token is causally visible to
    the decode query by construction, so no mask is applied.  Returns
    ``(batch, n_q_heads, head_dim)``.

    The whole computation is expressed as stacked matmuls and per-row
    reductions over the last axis, so each sequence's slice is bitwise
    independent of the batch composition: decoding a sequence alone or inside
    any batch produces byte-identical output (padding across sequences would
    change numpy's pairwise-summation grouping and break this, which is why
    callers group by shape instead of padding).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if q.ndim != 3 or k.ndim != 4 or v.shape != k.shape:
        raise ValueError("bad shapes for decode_batched_attention")
    batch, n_q_heads, head_dim = q.shape
    n_kv_heads, n_tokens = k.shape[1], k.shape[2]
    if k.shape[0] != batch or n_q_heads != n_kv_heads * gqa_group_size:
        raise ValueError(
            f"q heads ({n_q_heads}) must equal kv heads ({n_kv_heads}) x "
            f"group ({gqa_group_size}) over a matching batch"
        )
    if n_tokens == 0:
        return np.zeros_like(q)
    scale = 1.0 / np.sqrt(head_dim)
    q_g = q.reshape(batch, n_kv_heads, gqa_group_size, head_dim)
    scores = (q_g @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, g, T)
    shift = scores.max(axis=-1, keepdims=True)
    p = np.exp(scores - shift)
    denom = p.sum(axis=-1, keepdims=True)
    out = (p / denom) @ v  # (B, H, g, d)
    return out.reshape(batch, n_q_heads, head_dim)


def decode_group_attention(
    q_group: np.ndarray, k_head: np.ndarray, v_head: np.ndarray
) -> np.ndarray:
    """Decode-stage attention of one GQA group over a gathered KV subset.

    ``q_group`` is ``(n_group_heads, head_dim)`` (the query heads sharing one
    KV head), ``k_head``/``v_head`` are ``(n_selected_tokens, head_dim)``.
    Every gathered token is causally visible to the decode query by
    construction, so no mask is applied.  Returns ``(n_group_heads, head_dim)``.
    """
    q_group = np.asarray(q_group, dtype=np.float64)
    k_head = np.asarray(k_head, dtype=np.float64)
    v_head = np.asarray(v_head, dtype=np.float64)
    if q_group.ndim != 2 or k_head.ndim != 2 or v_head.shape != k_head.shape:
        raise ValueError("bad shapes for decode_group_attention")
    if k_head.shape[0] == 0:
        return np.zeros_like(q_group)
    out = dense_attention(
        q_group[None, :, :],  # (1, n_group_heads, head_dim)
        k_head[:, None, :],  # (n_sel, 1, head_dim)
        v_head[:, None, :],
        causal=False,
    )
    return out[0]
