"""Dynamic page selection with hierarchical paging and selection reuse.

:class:`PageSelector` implements the query-centric selection of §3.5.2: score
logical pages with Eq. 2, max-reduce onto physical pages, keep the top-K
physical pages under the token budget (sink and local pages always retained).

:class:`ReusablePageSelector` implements §3.5.3: because adjacent decode
queries attend to similar history, the selection is recomputed only at the
start of every ``reuse_interval``-token chunk and reused for the queries in
between, cutting selector overhead by the reuse interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hierarchical_paging import (
    HierarchicalPagingConfig,
    logical_page_scores,
    physical_page_scores,
    select_top_pages,
)

__all__ = ["PageSelection", "PageSelector", "ReusablePageSelector"]


@dataclass
class PageSelection:
    """Outcome of one page-selection invocation.

    ``pages_per_kv_head[h]`` is a sorted array of selected physical page
    positions (indices into the sequence's page table) for KV head ``h``.
    ``n_logical_pages`` records how many logical pages the scored key stats
    covered — the reuse cache keys freshness on it, because new tokens can
    open a fresh *logical* page (changing the kmin/kmax set) without growing
    the physical page count.
    """

    pages_per_kv_head: list[np.ndarray]
    n_physical_pages: int
    n_logical_pages: int = 0

    def pages_matrix(self) -> np.ndarray | None:
        """Stacked ``(n_kv_heads, n_selected)`` page positions, or ``None``.

        ``None`` means the selection is ragged (heads kept different page
        counts) and batched gathering does not apply.  Cached — selections are
        reused across ``reuse_interval`` decode steps, so the hot path stacks
        each selection once.
        """
        cached = getattr(self, "_pages_matrix", None)
        if cached is None:
            if not self.pages_per_kv_head or any(
                len(p) != len(self.pages_per_kv_head[0]) or len(p) == 0
                for p in self.pages_per_kv_head
            ):
                cached = (None,)
            else:
                cached = (np.stack(self.pages_per_kv_head).astype(np.int64),)
            self._pages_matrix = cached
        return cached[0]

    def selected_fraction(self) -> float:
        """Average fraction of physical pages kept across KV heads."""
        if self.n_physical_pages == 0 or not self.pages_per_kv_head:
            return 1.0
        kept = np.mean([len(p) for p in self.pages_per_kv_head])
        return float(kept / self.n_physical_pages)


class PageSelector:
    """Stateless hierarchical page selector (one invocation per decode query)."""

    def __init__(
        self,
        config: HierarchicalPagingConfig,
        sink_pages: int = 1,
        local_pages: int = 1,
    ) -> None:
        self.config = config
        self.sink_pages = sink_pages
        self.local_pages = local_pages
        self.num_invocations = 0

    def select(
        self,
        query: np.ndarray,
        kmin: np.ndarray,
        kmax: np.ndarray,
        gqa_group_size: int = 1,
    ) -> PageSelection:
        """Select physical pages for the current decode query.

        ``query`` is ``(n_heads, head_dim)``; ``kmin``/``kmax`` are the
        per-logical-page key statistics ``(n_logical_pages, n_kv_heads,
        head_dim)`` maintained by the paged cache.
        """
        self.num_invocations += 1
        logical = logical_page_scores(query, kmin, kmax, gqa_group_size=gqa_group_size)
        physical = physical_page_scores(logical, self.config.logical_pages_per_physical)
        pages = select_top_pages(
            physical,
            budget_pages=self.config.budget_pages,
            sink_pages=self.sink_pages,
            local_pages=self.local_pages,
        )
        return PageSelection(
            pages_per_kv_head=pages,
            n_physical_pages=physical.shape[1],
            n_logical_pages=int(np.asarray(kmin).shape[0]),
        )


@dataclass
class _CacheEntry:
    selection: PageSelection
    queries_served: int = 0


class ReusablePageSelector:
    """Page selector that reuses its decision across a chunk of decode steps.

    A cached selection is reused for up to ``reuse_interval`` consecutive
    queries of the same sequence; the cache is also refreshed whenever the
    number of physical *or logical* pages grows (a new page — or new key
    statistics inside the same physical page — appeared since the cached
    decision, which the cached decision cannot cover).
    """

    def __init__(self, selector: PageSelector, reuse_interval: int = 4) -> None:
        if reuse_interval < 1:
            raise ValueError("reuse_interval must be >= 1")
        self.selector = selector
        self.reuse_interval = reuse_interval
        self.num_queries = 0
        self._cache: dict[object, _CacheEntry] = {}
        # seq_id -> cache keys belonging to it, so releasing/exporting one
        # sequence is O(its own keys) instead of a scan of the whole cache.
        self._seq_keys: dict[object, set[object]] = {}

    @staticmethod
    def _seq_of(key: object) -> object:
        """The sequence a cache key belongs to (engine keys are (seq, layer))."""
        if isinstance(key, tuple) and len(key) > 0:
            return key[0]
        return key

    def _index_key(self, key: object) -> None:
        self._seq_keys.setdefault(self._seq_of(key), set()).add(key)

    @property
    def num_selector_calls(self) -> int:
        return self.selector.num_invocations

    def overhead_reduction(self) -> float:
        """Measured ratio of queries served per selector invocation."""
        if self.num_selector_calls == 0:
            return 1.0
        return self.num_queries / self.num_selector_calls

    def reset(self, key: object | None = None) -> None:
        """Drop cached selections (all of them, or one cache key's)."""
        if key is None:
            self._cache.clear()
            self._seq_keys.clear()
        elif self._cache.pop(key, None) is not None:
            keys = self._seq_keys.get(self._seq_of(key))
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._seq_keys[self._seq_of(key)]

    def release_sequence(self, seq_id: object) -> None:
        """Drop every cached selection belonging to one sequence.

        The engine keys its selections as ``(seq_id, layer)``; releasing a
        sequence must only evict those keys, leaving the cached selections of
        every other live sequence untouched.  Bare ``seq_id`` keys are evicted
        too, for callers that do not key by layer.
        """
        for key in self._seq_keys.pop(seq_id, ()):
            self._cache.pop(key, None)

    def export_sequence(self, seq_id: object) -> dict:
        """Snapshot one sequence's cached selections (KV-tiering demote support).

        A demoted-then-restored sequence must resume with the *same* cached
        selections and reuse phase it had, or the reuse-interval boundaries
        shift and decode outputs diverge from an uninterrupted run.  Returns a
        private copy keyed exactly like the cache.
        """
        out: dict[object, _CacheEntry] = {}
        for key in self._seq_keys.get(seq_id, ()):
            entry = self._cache.get(key)
            if entry is not None:
                out[key] = _CacheEntry(
                    selection=entry.selection, queries_served=entry.queries_served
                )
        return out

    def import_sequence(self, state: dict) -> None:
        """Reinstall cache entries captured by :meth:`export_sequence`."""
        for key, entry in state.items():
            self._cache[key] = _CacheEntry(
                selection=entry.selection, queries_served=entry.queries_served
            )
            self._index_key(key)

    def clone_sequence(self, src_seq: object, dst_seq: object) -> None:
        """Copy ``src_seq``'s cached selections onto ``dst_seq``'s cache keys.

        Speculative verification runs a sequence's chunk on a copy-on-write
        *scratch* fork; the scratch must start with the parent's cached
        selections **and reuse phase**, or its first dense-head query would
        recompute a selection the non-speculative run would have reused —
        shifting the reuse-interval boundaries and changing the logits.
        Engine keys ``(src_seq, layer)`` are remapped to ``(dst_seq, layer)``;
        bare ``src_seq`` keys map to bare ``dst_seq``.  Each clone is a
        private :class:`_CacheEntry`, so queries served by the scratch never
        advance the parent's phase.
        """
        for key in self._seq_keys.get(src_seq, ()):
            entry = self._cache.get(key)
            if entry is None:
                continue
            if isinstance(key, tuple) and len(key) > 0:
                new_key: object = (dst_seq, *key[1:])
            else:
                new_key = dst_seq
            self._cache[new_key] = _CacheEntry(
                selection=entry.selection, queries_served=entry.queries_served
            )
            self._index_key(new_key)

    def lookup(self, key: object, n_logical_pages: int) -> PageSelection | None:
        """Serve a cached selection without touching the key statistics.

        The freshness test only needs the logical-page count (the physical
        count is derived from it), so hot decode paths can check the cache
        *before* stacking kmin/kmax — the stats are only materialised on a
        miss, which then goes through :meth:`select`.  A hit counts as one
        served query; a miss counts nothing (the follow-up ``select`` call
        does), so exactly one query is recorded either way.
        """
        n_logical = int(n_logical_pages)
        n_physical = -(-n_logical // self.selector.config.logical_pages_per_physical)
        entry = self._cache.get(key)
        if (
            entry is not None
            and entry.queries_served < self.reuse_interval
            and entry.selection.n_physical_pages == n_physical
            and entry.selection.n_logical_pages == n_logical
        ):
            self.num_queries += 1
            entry.queries_served += 1
            return entry.selection
        return None

    def select(
        self,
        key: object,
        query: np.ndarray,
        kmin: np.ndarray,
        kmax: np.ndarray,
        gqa_group_size: int = 1,
    ) -> PageSelection:
        """Return a (possibly cached) page selection for sequence ``key``."""
        self.num_queries += 1
        n_logical = np.asarray(kmin).shape[0]
        n_physical = -(-n_logical // self.selector.config.logical_pages_per_physical)
        entry = self._cache.get(key)
        # Freshness is keyed on *both* page counts: a new token can open a
        # fresh logical page inside the same physical page, changing the
        # kmin/kmax set (and thus the scores) without growing the physical
        # count — the cached decision would silently go stale.
        if (
            entry is not None
            and entry.queries_served < self.reuse_interval
            and entry.selection.n_physical_pages == n_physical
            and entry.selection.n_logical_pages == n_logical
        ):
            entry.queries_served += 1
            return entry.selection
        selection = self.selector.select(query, kmin, kmax, gqa_group_size=gqa_group_size)
        self._cache[key] = _CacheEntry(selection=selection, queries_served=1)
        self._index_key(key)
        return selection
