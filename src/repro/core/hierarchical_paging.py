"""Hierarchical paging and query-centric page importance (paper §3.5.2, Fig. 7).

Dynamic sparsity in LServe works at two granularities:

* *Logical pages* of ``NL`` tokens carry the channel-wise min/max key
  statistics used to estimate importance.  Keeping ``NL`` small (16) keeps the
  statistics representative.
* *Physical pages* of ``NP = g · NL`` tokens are the unit of memory layout and
  of attention computation (large pages keep the GPU memory bandwidth busy and
  play well with KV quantization).

The importance of a logical page for the current query is the Quest-style
upper bound on the query–key dot products it can contain (Eq. 2):

``S_j = Σ_i max(q_i · kmax_{j,i}, q_i · kmin_{j,i})``

and a physical page inherits the maximum of its logical pages' scores.  The
top-K physical pages under the token budget are selected, with the sink and
most recent (local) pages always retained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "HierarchicalPagingConfig",
    "logical_page_scores",
    "physical_page_scores",
    "select_top_pages",
]


@dataclass(frozen=True)
class HierarchicalPagingConfig:
    """Geometry of the hierarchical page selector."""

    physical_page_size: int = 64
    logical_page_size: int = 16
    token_budget: int = 4096

    def __post_init__(self) -> None:
        if self.physical_page_size <= 0 or self.logical_page_size <= 0:
            raise ValueError("page sizes must be positive")
        if self.physical_page_size % self.logical_page_size != 0:
            raise ValueError("physical_page_size must be a multiple of logical_page_size")
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")

    @property
    def logical_pages_per_physical(self) -> int:
        return self.physical_page_size // self.logical_page_size

    @property
    def budget_pages(self) -> int:
        """Token budget expressed in physical pages (at least one)."""
        return max(1, self.token_budget // self.physical_page_size)


def logical_page_scores(
    query: np.ndarray,
    kmin: np.ndarray,
    kmax: np.ndarray,
    gqa_group_size: int = 1,
) -> np.ndarray:
    """Per-KV-head, per-logical-page importance scores (Eq. 2).

    Parameters
    ----------
    query:
        Current decode query, shape ``(n_heads, head_dim)``.
    kmin, kmax:
        Per-logical-page key statistics, shape
        ``(n_logical_pages, n_kv_heads, head_dim)``.
    gqa_group_size:
        Number of query heads per KV head; the score of a KV head's page is the
        maximum over the query heads in its group (the page only needs to be
        important for one of them to be worth keeping).

    Returns
    -------
    Scores of shape ``(n_kv_heads, n_logical_pages)``.
    """
    query = np.asarray(query, dtype=np.float64)
    kmin = np.asarray(kmin, dtype=np.float64)
    kmax = np.asarray(kmax, dtype=np.float64)
    if query.ndim != 2:
        raise ValueError(f"query must be (n_heads, head_dim), got {query.shape}")
    if kmin.shape != kmax.shape or kmin.ndim != 3:
        raise ValueError("kmin/kmax must both be (n_logical_pages, n_kv_heads, head_dim)")
    n_heads, head_dim = query.shape
    n_pages, n_kv_heads, stat_dim = kmin.shape
    if stat_dim != head_dim:
        raise ValueError("head_dim mismatch between query and key stats")
    if n_heads != n_kv_heads * gqa_group_size:
        raise ValueError(
            f"n_heads ({n_heads}) must equal n_kv_heads ({n_kv_heads}) * "
            f"gqa_group_size ({gqa_group_size})"
        )
    if n_pages == 0:
        return np.zeros((n_kv_heads, 0))

    # q_grouped[kv_head, group, dim]
    q_grouped = query.reshape(n_kv_heads, gqa_group_size, head_dim)
    # Eq. 2: per-channel upper bound of q · k over the page, summed over channels.
    per_channel = np.maximum(
        q_grouped[None, :, :, :] * kmax[:, :, None, :],
        q_grouped[None, :, :, :] * kmin[:, :, None, :],
    )
    scores = per_channel.sum(axis=-1)  # (n_pages, n_kv_heads, group)
    return scores.max(axis=-1).T  # (n_kv_heads, n_pages)


def physical_page_scores(
    logical_scores: np.ndarray, logical_pages_per_physical: int
) -> np.ndarray:
    """Max-reduce logical-page scores onto their physical pages.

    ``logical_scores`` has shape ``(n_kv_heads, n_logical_pages)``; the result
    has shape ``(n_kv_heads, n_physical_pages)`` where the last physical page
    may cover fewer logical pages.
    """
    scores = np.asarray(logical_scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("logical_scores must be 2-D (n_kv_heads, n_logical_pages)")
    if logical_pages_per_physical <= 0:
        raise ValueError("logical_pages_per_physical must be positive")
    n_kv_heads, n_logical = scores.shape
    if n_logical == 0:
        return np.zeros((n_kv_heads, 0))
    n_physical = -(-n_logical // logical_pages_per_physical)
    padded = np.full((n_kv_heads, n_physical * logical_pages_per_physical), -np.inf)
    padded[:, :n_logical] = scores
    return padded.reshape(n_kv_heads, n_physical, logical_pages_per_physical).max(axis=-1)


def select_top_pages(
    phys_scores: np.ndarray,
    budget_pages: int,
    sink_pages: int = 1,
    local_pages: int = 1,
) -> list[np.ndarray]:
    """Select the top-K physical pages per KV head under the page budget.

    The sink pages (oldest) and local pages (newest) are always included and
    count against the budget; the remaining slots go to the highest-scoring
    pages.  Returns, per KV head, a sorted array of selected page positions.
    """
    scores = np.asarray(phys_scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("phys_scores must be 2-D (n_kv_heads, n_physical_pages)")
    if budget_pages <= 0:
        raise ValueError("budget_pages must be positive")
    if sink_pages < 0 or local_pages < 0:
        raise ValueError("sink_pages and local_pages must be non-negative")
    n_kv_heads, n_pages = scores.shape
    selections: list[np.ndarray] = []
    for h in range(n_kv_heads):
        if n_pages <= budget_pages:
            selections.append(np.arange(n_pages))
            continue
        always = set(range(min(sink_pages, n_pages)))
        always |= set(range(max(0, n_pages - local_pages), n_pages))
        remaining_budget = max(0, budget_pages - len(always))
        candidates = [p for p in range(n_pages) if p not in always]
        if remaining_budget and candidates:
            cand_scores = scores[h, candidates]
            order = np.argsort(-cand_scores, kind="stable")[:remaining_budget]
            chosen = {candidates[i] for i in order}
        else:
            chosen = set()
        selected = np.asarray(sorted(always | chosen), dtype=np.int64)
        # Enforce the budget even when sink+local alone exceed it (tiny budgets):
        # drop the lowest-scoring non-diagonal pages first.
        if selected.size > budget_pages:
            keep_last = n_pages - 1
            others = [p for p in selected if p != keep_last]
            others.sort(key=lambda p: scores[h, p], reverse=True)
            selected = np.asarray(
                sorted(others[: budget_pages - 1] + [keep_last]), dtype=np.int64
            )
        selections.append(selected)
    return selections
