"""Iterator-based block-sparse layout abstraction (paper §3.4).

The GPU kernels avoid branching inside the sequential KV loop by iterating
only over the blocks that must be computed; an *iterator* provides, for each
(head, query block), the ordered list of KV block indices to visit, and data
offsets follow from ``offset = iter(i + 1) - iter(i)``.  The same abstraction
expresses streaming heads (sink + local blocks), dynamically selected pages,
and fully dense causal attention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.masks import block_causal_mask

__all__ = [
    "BlockIterator",
    "dense_iterator",
    "streaming_iterator",
    "selected_pages_iterator",
    "BlockSparseLayout",
]


@dataclass(frozen=True)
class BlockIterator:
    """Ordered KV block indices one (head, query block) pair visits."""

    blocks: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b < 0 for b in self.blocks):
            raise ValueError("block indices must be non-negative")
        if list(self.blocks) != sorted(set(self.blocks)):
            raise ValueError("block indices must be strictly increasing")

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def __getitem__(self, i: int) -> int:
        return self.blocks[i]

    def offsets(self) -> np.ndarray:
        """Distance between consecutive visited blocks (kernel pointer strides)."""
        if not self.blocks:
            return np.zeros(0, dtype=np.int64)
        arr = np.asarray(self.blocks, dtype=np.int64)
        return np.diff(np.concatenate([[0], arr + 1]))

    def contains(self, block: int) -> bool:
        return block in self.blocks


def dense_iterator(diag_block: int) -> BlockIterator:
    """Visit every causal block up to and including the diagonal block."""
    if diag_block < 0:
        raise ValueError("diag_block must be non-negative")
    return BlockIterator(tuple(range(diag_block + 1)))


def streaming_iterator(diag_block: int, sink_blocks: int, local_blocks: int) -> BlockIterator:
    """Visit the sink blocks plus the ``local_blocks`` most recent blocks.

    The iterator jumps from the end of the sink region directly to the first
    local block — this is the pointer update described in §3.4.
    """
    if diag_block < 0 or sink_blocks < 0 or local_blocks < 1:
        raise ValueError("invalid streaming iterator geometry")
    sinks = set(range(min(sink_blocks, diag_block + 1)))
    locals_ = set(range(max(0, diag_block - local_blocks + 1), diag_block + 1))
    return BlockIterator(tuple(sorted(sinks | locals_)))


def selected_pages_iterator(
    selected: list[int] | np.ndarray, diag_block: int
) -> BlockIterator:
    """Visit dynamically selected pages, always including the newest block.

    The paper always computes the most recent KV block (it holds the current
    token), so the diagonal block is appended if the selector missed it.
    """
    blocks = set(int(b) for b in np.asarray(selected, dtype=np.int64).ravel())
    if any(b < 0 or b > diag_block for b in blocks):
        raise ValueError("selected block index out of causal range")
    blocks.add(diag_block)
    return BlockIterator(tuple(sorted(blocks)))


class BlockSparseLayout:
    """Per-head, per-query-block iterators describing a block-sparse pattern.

    Alongside the :class:`BlockIterator` API the layout precomputes flat
    CSR-style index arrays (one concatenated block-index vector plus row
    offsets over ``(head, q_block)`` cells), so mask materialisation, visit
    counting, and sparsity accounting are single vectorised numpy operations
    instead of nested Python loops.
    """

    def __init__(self, iterators: list[list[BlockIterator]], n_kv_blocks: int) -> None:
        if not iterators or not iterators[0]:
            raise ValueError("layout requires at least one head and one query block")
        n_q_blocks = len(iterators[0])
        if any(len(per_head) != n_q_blocks for per_head in iterators):
            raise ValueError("all heads must have the same number of query blocks")
        self._iterators = iterators
        self.n_heads = len(iterators)
        self.n_q_blocks = n_q_blocks
        self.n_kv_blocks = n_kv_blocks
        # Flat index arrays: _cell_counts[c] is the number of blocks cell
        # c = head * n_q_blocks + q_block visits; _block_indices holds the
        # visited KV block indices of every cell, concatenated in cell order.
        counts = [len(it) for per_head in iterators for it in per_head]
        self._cell_counts = np.asarray(counts, dtype=np.int64)
        if self._cell_counts.sum():
            self._block_indices = np.concatenate(
                [
                    np.asarray(it.blocks, dtype=np.int64)
                    for per_head in iterators
                    for it in per_head
                    if it.blocks
                ]
            )
        else:
            self._block_indices = np.zeros(0, dtype=np.int64)

    def iterator(self, head: int, q_block: int) -> BlockIterator:
        return self._iterators[head][q_block]

    @classmethod
    def from_block_mask(cls, block_mask: np.ndarray) -> "BlockSparseLayout":
        """Build a layout from a boolean block mask of shape
        ``(n_heads, n_q_blocks, n_kv_blocks)`` (or 2-D for head-shared masks)."""
        mask = np.asarray(block_mask, dtype=bool)
        if mask.ndim == 2:
            mask = mask[None]
        if mask.ndim != 3:
            raise ValueError("block mask must be 2-D or 3-D")
        iterators = [
            [BlockIterator(tuple(np.flatnonzero(mask[h, qb]).tolist())) for qb in range(mask.shape[1])]
            for h in range(mask.shape[0])
        ]
        return cls(iterators, n_kv_blocks=mask.shape[2])

    def to_block_mask(self) -> np.ndarray:
        """Boolean mask of shape ``(n_heads, n_q_blocks, n_kv_blocks)``."""
        mask = np.zeros((self.n_heads * self.n_q_blocks, self.n_kv_blocks), dtype=bool)
        if self._block_indices.size:
            rows = np.repeat(
                np.arange(self._cell_counts.size), self._cell_counts
            )
            mask[rows, self._block_indices] = True
        return mask.reshape(self.n_heads, self.n_q_blocks, self.n_kv_blocks)

    def visited_blocks(self) -> int:
        """Total number of tiles the kernel will compute."""
        return int(self._block_indices.size)

    def sparsity(self, n_q: int, n_kv: int, q_block: int, kv_block: int) -> float:
        """Fraction of causal tiles skipped relative to a dense causal kernel."""
        causal = block_causal_mask(n_q, n_kv, q_block, kv_block)
        total = int(np.count_nonzero(causal)) * self.n_heads
        if total == 0:
            return 0.0
        # Query-block row of every flat entry; one fancy-indexed lookup counts
        # the causally visible visited tiles across all heads at once.
        qb_of_entry = np.repeat(
            np.arange(self._cell_counts.size) % self.n_q_blocks, self._cell_counts
        )
        visited = int(np.count_nonzero(causal[qb_of_entry, self._block_indices]))
        return 1.0 - visited / total

    def theoretical_speedup(self, n_q: int, n_kv: int, q_block: int, kv_block: int) -> float:
        """``1 / (1 - r)`` speedup from block sparsity ``r`` (paper §3.1)."""
        r = self.sparsity(n_q, n_kv, q_block, kv_block)
        return 1.0 / max(1e-12, 1.0 - r)
