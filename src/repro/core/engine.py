"""The LServe engine: hybrid sparse attention serving over a two-way paged cache.

This is the functional counterpart of the system in Fig. 5.  It drives a
:class:`~repro.model.transformer.TinyTransformer`'s weights through LServe's
dataflow:

* **Prefill**: QKV projections, RoPE, then the fused block-sparse prefill
  attention (dense heads causal, streaming heads Λ-masked), writing quantized
  KV into the two-way paged cache (dense-head pages with key statistics,
  streaming-head store with only sink + local tokens).
* **Decode**: streaming heads attend over their constant-size store; dense
  heads go through the (reusable) hierarchical page selector and attend only
  over the selected physical pages.

The engine records work statistics (blocks visited, tokens attended, selector
invocations) that the analysis benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.attention.rope import apply_rope
from repro.core.config import LServeConfig
from repro.core.head_classifier import classify_heads, collect_head_gates
from repro.core.hierarchical_paging import HierarchicalPagingConfig
from repro.core.page_selector import PageSelector, ReusablePageSelector
from repro.core.streaming import StreamingConfig, expand_kv_head_mask
from repro.core.unified_sparse_attention import (
    decode_batched_attention,
    decode_group_attention,
    prefill_sparse_attention,
)
from repro.kvcache.allocator import OutOfPagesError
from repro.kvcache.dual_cache import DualPagedKVCache, DualSequenceExport
from repro.kvcache.paged_cache import PagedCacheConfig
from repro.kvcache.prefix_index import PrefixIndex
from repro.model.transformer import TinyTransformer, rms_norm, silu

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving wraps the engine)
    from repro.serving.sampling import SamplingParams

__all__ = [
    "DecodeOutOfPagesError",
    "EngineStats",
    "LServeEngine",
    "SpeculativeChunk",
]


class DecodeOutOfPagesError(OutOfPagesError):
    """A decode iteration could not reserve KV pages for some sequences.

    Raised by :meth:`LServeEngine.decode_batch` *before any KV data or token
    accounting is written*: the step's pages are reserved per sequence up
    front, so an exhausted pool surfaces as a clean per-sequence failure
    (``failed_seq_ids``) the scheduler can preempt on — never as a
    mid-batch, mid-layer corruption where some sequences already appended
    their token and others did not.  (Sequences that reserved successfully
    before the failure keep their pre-allocated pages; they hold no tokens
    and are consumed by the next append or returned at release.)
    """

    def __init__(self, failed_seq_ids: list[object], num_free: int) -> None:
        self.failed_seq_ids = tuple(failed_seq_ids)
        super().__init__(
            f"cannot reserve decode pages for sequences {self.failed_seq_ids!r}: "
            f"{num_free} pages free"
        )


@dataclass
class EngineStats:
    """Aggregate work counters for one engine instance."""

    prefill_tokens: int = 0
    decode_steps: int = 0
    prefill_blocks_visited: int = 0
    prefill_blocks_total: int = 0
    dense_tokens_attended: int = 0
    dense_tokens_total: int = 0
    streaming_tokens_attended: int = 0
    #: Prompt tokens whose KV was attached from the prefix cache instead of
    #: being recomputed.  ``prefill_tokens`` counts *computed* tokens, so
    #: ``prefill_tokens + prefix_hit_tokens`` is the total prompt volume seen.
    prefix_hit_tokens: int = 0
    #: Demoted prefix-index pages brought back from the cold tier at attach
    #: time (each one saved a page of recompute but owes a restore transfer).
    restored_prefix_pages: int = 0

    @property
    def prefill_block_sparsity(self) -> float:
        """Fraction of prefill attention blocks skipped by the sparse masks."""
        if self.prefill_blocks_total == 0:
            return 0.0
        return 1.0 - self.prefill_blocks_visited / self.prefill_blocks_total

    @property
    def decode_kv_compression(self) -> float:
        """Fraction of dense-head KV tokens actually read during decoding."""
        if self.dense_tokens_total == 0:
            return 1.0
        return self.dense_tokens_attended / self.dense_tokens_total


@dataclass
class SpeculativeChunk:
    """Verified-but-uncommitted KV of one speculative decode chunk.

    Produced by :meth:`LServeEngine.decode_speculative`, consumed by
    :meth:`LServeEngine.commit_speculative`.  Holds, per layer, the post-RoPE
    raw keys/values ``(m, n_kv_heads, head_dim)`` and queries
    ``(m, n_heads, head_dim)`` of the ``m`` chunk positions, so the accepted
    prefix can be re-appended to the real sequence bit-exactly (KV
    quantization groups are per token × head, and key-statistic folds take
    exact min/max of raw keys — re-appending a saved row writes the same
    bits the scratch verification wrote).  The queries replay the selector
    phase at commit time.  ``base_len`` guards against committing onto a
    sequence that moved since verification.
    """

    seq_id: object
    base_len: int
    tokens: np.ndarray
    k_per_layer: list[np.ndarray]
    v_per_layer: list[np.ndarray]
    q_per_layer: list[np.ndarray]

    def __len__(self) -> int:
        return int(self.tokens.size)


def _rowwise_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``x @ w`` with per-row results independent of the batch size.

    BLAS routes single-row matmuls to a GEMV kernel whose accumulation order
    differs from the GEMM kernels used for taller inputs; duplicating the lone
    row forces the GEMM path, so a decode batch of one produces byte-identical
    rows to the same sequence decoded inside any larger batch.
    """
    if x.shape[0] == 1:
        return (np.concatenate([x, x]) @ w)[:1]
    return x @ w


class LServeEngine:
    """Serve a :class:`TinyTransformer` with LServe's unified sparse attention."""

    def __init__(
        self,
        model: TinyTransformer,
        config: LServeConfig,
        streaming_kv_heads: np.ndarray | None = None,
        num_cache_pages: int = 4096,
        calibration_tokens: np.ndarray | None = None,
    ) -> None:
        self.model = model
        self.config = config
        cfg = model.config

        if streaming_kv_heads is None:
            streaming_kv_heads = self._classify_streaming_heads(calibration_tokens)
        streaming_kv_heads = np.asarray(streaming_kv_heads, dtype=bool)
        if streaming_kv_heads.shape != (cfg.n_kv_heads,):
            raise ValueError(
                f"streaming_kv_heads must have shape ({cfg.n_kv_heads},), "
                f"got {streaming_kv_heads.shape}"
            )
        self.streaming_kv_heads = streaming_kv_heads
        self.streaming_query_heads = expand_kv_head_mask(
            streaming_kv_heads, cfg.gqa_group_size
        )
        self.streaming = StreamingConfig(
            sink_tokens=config.sink_tokens, local_tokens=config.local_tokens
        )

        self.cache = DualPagedKVCache(
            PagedCacheConfig(
                n_layers=cfg.n_layers,
                n_kv_heads=cfg.n_kv_heads,
                head_dim=cfg.head_dim,
                page_size=config.physical_page_size,
                num_pages=num_cache_pages,
                kv_bits=config.kv_bits,
                logical_page_size=config.logical_page_size,
            ),
            streaming_head_mask=streaming_kv_heads,
            sink_tokens=config.sink_tokens,
            local_tokens=config.local_tokens,
            # The prefix index must rebuild streaming stores at arbitrary
            # page boundaries, so prefix-caching engines retain the
            # streaming-head history of every sequence.
            retain_streaming_pages=config.prefix_cache_enabled
            and bool(streaming_kv_heads.any()),
        )
        self.prefix_cache: PrefixIndex | None = None
        if config.prefix_cache_enabled:
            dense = self.cache.dense_cache
            self.prefix_cache = PrefixIndex(
                page_size=config.physical_page_size,
                allocator=dense.allocator if dense is not None else None,
            )
        self.selector = ReusablePageSelector(
            PageSelector(
                HierarchicalPagingConfig(
                    physical_page_size=config.physical_page_size,
                    logical_page_size=config.logical_page_size,
                    token_budget=config.token_budget,
                ),
                sink_pages=config.sink_pages,
                local_pages=config.local_pages,
            ),
            reuse_interval=config.reuse_interval,
        )
        self.stats = EngineStats()
        # With a cold KV tier configured (a tiering-enabled backend flips
        # this), prefix eviction demotes page images host-side instead of
        # hard-dropping them; see _prefix_page_image.
        self.prefix_demote_enabled = False

        # Query-head bookkeeping for the two head groups.
        group = cfg.gqa_group_size
        self._dense_kv_heads = np.flatnonzero(~streaming_kv_heads)
        self._streaming_kv_heads_idx = np.flatnonzero(streaming_kv_heads)
        self._dense_query_heads = np.concatenate(
            [np.arange(kv * group, (kv + 1) * group) for kv in self._dense_kv_heads]
        ) if self._dense_kv_heads.size else np.zeros(0, dtype=np.int64)

    # -- setup -----------------------------------------------------------------
    def _classify_streaming_heads(
        self, calibration_tokens: np.ndarray | None
    ) -> np.ndarray:
        """Derive the streaming KV-head mask from DuoAttention-style gates."""
        cfg = self.model.config
        if self.config.streaming_head_ratio == 0.0:
            return np.zeros(cfg.n_kv_heads, dtype=bool)
        if calibration_tokens is None:
            rng = np.random.default_rng(0)
            length = min(128, cfg.max_context_length)
            calibration_tokens = rng.integers(0, cfg.vocab_size, size=length)
        gates = collect_head_gates(self.model, calibration_tokens, self.streaming_for_calibration())
        # One mask shared by all layers: rank KV heads by their mean gate.
        mean_gates = gates.mean(axis=0)
        classification = classify_heads(mean_gates, sparsity=self.config.streaming_head_ratio)
        return classification.streaming_mask.ravel()

    def streaming_for_calibration(self) -> StreamingConfig:
        """Streaming geometry used during head-gate calibration."""
        return StreamingConfig(
            sink_tokens=self.config.sink_tokens, local_tokens=self.config.local_tokens
        )

    # -- sequence lifecycle ------------------------------------------------------
    def add_sequence(self, seq_id: object) -> None:
        """Register an empty sequence in the paged KV cache."""
        self.cache.add_sequence(seq_id)

    def fork_sequence(self, parent_id: object, child_id: object) -> None:
        """Fork ``child_id`` from ``parent_id`` with copy-on-write KV sharing.

        Full dense-head pages are shared by reference; the partially filled
        tail page is copied the first time either sequence appends a
        divergent token.  The child starts with no cached page selections, so
        its decode path behaves exactly like a fresh sequence that had
        produced the same history.
        """
        self.cache.fork_sequence(parent_id, child_id)

    def release(self, seq_id: object) -> None:
        """Free one sequence's KV pages and its cached page selections.

        Only the ``(seq_id, layer)`` selector entries of the released sequence
        are evicted; cached selections of other live sequences survive.
        """
        self.cache.remove_sequence(seq_id)
        self.selector.release_sequence(seq_id)

    def context_length(self, seq_id: object) -> int:
        """Tokens currently held in the KV cache for ``seq_id``."""
        return self.cache.seq_len(seq_id)

    def last_attended(self, seq_id: object) -> int:
        """Allocator access-clock stamp of the sequence's most recent KV read.

        The LRU demotion policy of the cold KV tier orders victims by this;
        0 for a sequence whose dense pages were never read (or when there are
        no dense heads).
        """
        dense = self.cache.dense_cache
        return dense.last_attended(seq_id) if dense is not None else 0

    def handoff_out(self, seq_id: object) -> DualSequenceExport:
        """Export a sequence's KV state for migration and release it locally.

        The snapshot carries bit-exact dense page images (stored values are
        post-quantization while key stats fold raw keys, so replaying tokens
        on the target would diverge — images are the unit of migration) plus
        cloned streaming stores.  The local copy is then released: every
        dense page is decref'd, so refcounts drop to zero and the pages free
        unless the prefix index still pins them.  A second hand-off of the
        same sequence raises ``KeyError`` (the sequence is gone).
        """
        export = self.cache.export_sequence(seq_id)
        self.release(seq_id)
        return export

    def handoff_in(self, seq_id: object, export: DualSequenceExport) -> int:
        """Install a migrated sequence on this engine's pool; returns pages attached.

        Fresh pages are allocated (refcount 1 each — the target-side attach)
        and the images bit-copied, so subsequent decode steps are numerically
        identical to a run that had prefilled here.  When the pool is tight,
        prefix-index pages are evicted first, mirroring the prefill
        reservation path.  The selector starts cold for the sequence, exactly
        as it would after a local prefill.
        """
        dense = self.cache.dense_cache
        if (
            dense is not None
            and not dense.allocator.can_allocate(export.n_pages)
            and self.prefix_cache is not None
        ):
            self.prefix_cache.evict_until(export.n_pages, page_image=self._prefix_page_image())
        return self.cache.import_sequence(seq_id, export)

    # -- serving entry points ------------------------------------------------------
    def prefill(
        self, seq_id: object, token_ids: np.ndarray, chunk_size: int | None = None
    ) -> np.ndarray:
        """Prefill a fresh sequence; returns logits for the computed positions.

        The sequence must be empty.  When ``chunk_size`` is given, the prompt
        is processed in chunks of that many tokens (chunked prefill): each
        chunk attends over the previously written KV history plus its own
        fresh keys/values, so a long prompt never has to be materialised as
        one attention call.  Use a multiple of ``q_block_size`` (and of the
        physical page size) to keep the block-mask tiling — and hence the
        numerics — identical to single-shot prefill; other sizes still work
        but tile the Λ mask at shifted boundaries, and with ``kv_bits < 16``
        the re-read history adds quantization rounding.

        With the prefix cache enabled (``config.prefix_cache_enabled``), a
        prompt whose leading pages match a registered prefix **attaches** the
        matched KV pages instead of recomputing them; only the unmatched tail
        is computed (as a chunked-prefill continuation at an aligned
        boundary, so numerics follow the chunked-prefill rules above), and
        the returned logits cover just those computed positions — the last
        row is still the next-token distribution.  At least one prompt token
        is always computed.  ``stats.prefix_hit_tokens`` counts the attached
        tokens; ``stats.prefill_tokens`` counts computed ones.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1 or token_ids.size == 0:
            raise ValueError("token_ids must be a non-empty 1-D array")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when set")
        n = int(token_ids.size)

        attached = 0
        if self.prefix_cache is not None and not self.cache.has_sequence(seq_id):
            attached = self._attach_prefix(seq_id, token_ids)
        if not self.cache.has_sequence(seq_id):
            self.add_sequence(seq_id)
        if self.cache.seq_len(seq_id) != attached:
            raise ValueError("prefill requires an empty sequence")

        remaining = token_ids[attached:]
        self._reserve_pages(seq_id, int(remaining.size))
        if chunk_size is None or chunk_size >= remaining.size:
            logits = self._forward(seq_id, remaining, is_prefill=True)
        else:
            parts = [
                self._forward(seq_id, remaining[start : start + chunk_size], is_prefill=True)
                for start in range(0, int(remaining.size), chunk_size)
            ]
            logits = np.concatenate(parts, axis=0)
        self.stats.prefill_tokens += n - attached
        self.stats.prefix_hit_tokens += attached
        if self.prefix_cache is not None:
            self._register_prefix(seq_id, token_ids)
        return logits

    # -- prefix sharing ----------------------------------------------------------
    def _attach_prefix(self, seq_id: object, token_ids: np.ndarray) -> int:
        """Attach the longest indexed prefix of the prompt; returns tokens attached."""
        assert self.prefix_cache is not None
        align = self.config.prefix_match_alignment
        page = self.config.physical_page_size
        # Keep at least one prompt token to compute (the caller needs the
        # last position's logits) and land the boundary on the alignment.
        max_tokens = ((token_ids.size - 1) // align) * align
        if max_tokens <= 0:
            return 0
        chain = self.prefix_cache.match(token_ids, max_tokens=max_tokens)
        matched = ((len(chain) * page) // align) * align
        n_pages = matched // page
        if n_pages == 0:
            return 0
        chain = chain[:n_pages]
        dense = self.cache.dense_cache
        if dense is not None:
            # Bring demoted (cold-tier) chain nodes back before attaching;
            # a node that cannot be restored truncates the usable prefix.
            usable = 0
            for node in chain:
                if node.is_cold:
                    if not dense.allocator.can_allocate(1):
                        break
                    restored_page = dense.install_page_image(node.cold_k, node.cold_v)
                    self.prefix_cache.adopt_restored(node, restored_page)
                    self.stats.restored_prefix_pages += 1
                elif node.page is None:
                    break
                usable += 1
            if usable < len(chain):
                matched = ((usable * page) // align) * align
                n_pages = matched // page
                if n_pages == 0:
                    return 0
                chain = chain[:n_pages]
        cfg = self.model.config
        dense_pages = [node.page for node in chain]
        dense_stats = None
        if self.cache.dense_cache is not None:
            dense_stats = [
                [s for node in chain for s in node.stats_per_layer[layer]]
                for layer in range(cfg.n_layers)
            ]
        stream_k = stream_v = None
        if self._streaming_kv_heads_idx.size:
            stream_k = [
                np.concatenate([node.stream_k_per_layer[layer] for node in chain])
                for layer in range(cfg.n_layers)
            ]
            stream_v = [
                np.concatenate([node.stream_v_per_layer[layer] for node in chain])
                for layer in range(cfg.n_layers)
            ]
        self.cache.attach_prefix(seq_id, matched, dense_pages, dense_stats, stream_k, stream_v)
        return matched

    def _register_prefix(self, seq_id: object, token_ids: np.ndarray) -> None:
        """Index the prompt's full pages so later prompts can attach them."""
        assert self.prefix_cache is not None
        cfg = self.model.config
        page_size = self.config.physical_page_size
        lpp = page_size // self.config.logical_page_size
        dense = self.cache.dense_cache
        n_pages = int(token_ids.size) // page_size
        if n_pages == 0:
            return
        if dense is not None:
            pages = list(dense.page_table(seq_id).pages[:n_pages])
        else:
            pages = [None] * n_pages

        def stats_for_page(i: int):
            if dense is None:
                return None
            return [
                dense.key_stats_objects(seq_id, layer)[i * lpp : (i + 1) * lpp]
                for layer in range(cfg.n_layers)
            ]

        histories: list[tuple[np.ndarray, np.ndarray]] = []

        def streaming_for_page(i: int):
            if not self._streaming_kv_heads_idx.size:
                return None, None
            if not histories:
                histories.extend(
                    self.cache.streaming_history(seq_id, layer)
                    for layer in range(cfg.n_layers)
                )
            ks = [histories[layer][0][i * page_size : (i + 1) * page_size] for layer in range(cfg.n_layers)]
            vs = [histories[layer][1][i * page_size : (i + 1) * page_size] for layer in range(cfg.n_layers)]
            return ks, vs

        self.prefix_cache.register(token_ids, pages, stats_for_page, streaming_for_page)

    def _prefix_page_image(self):
        """Cold-demotion callback for prefix eviction (``None`` when disabled)."""
        dense = self.cache.dense_cache
        if not self.prefix_demote_enabled or dense is None:
            return None
        return dense.page_image

    def _reserve_pages(self, seq_id: object, n_new_tokens: int) -> None:
        """Reserve KV pages for an append, evicting prefix-index pages if needed."""
        if n_new_tokens <= 0:
            return
        dense = self.cache.dense_cache
        if dense is None:
            return
        required = self.cache.pages_required(seq_id, n_new_tokens)
        if not dense.allocator.can_allocate(required) and self.prefix_cache is not None:
            self.prefix_cache.evict_until(required, page_image=self._prefix_page_image())
        self.cache.prepare_append(seq_id, n_new_tokens)

    def decode(self, seq_id: object, token_id: int) -> np.ndarray:
        """One decode step; returns logits ``(vocab_size,)``."""
        return self.decode_batch([seq_id], [token_id])[0]

    def decode_batch(
        self, seq_ids: list[object], token_ids: list[int] | np.ndarray
    ) -> np.ndarray:
        """One decode iteration over a batch of sequences.

        Each sequence advances by one token; the embedding, QKV/output
        projections and FFN run as batched GEMMs over all sequences while
        attention reads each sequence's own paged cache.  The per-sequence
        numerics are identical to calling :meth:`decode` sequentially.
        Returns logits ``(batch, vocab_size)``.
        """
        if len(seq_ids) == 0:
            raise ValueError("decode_batch requires at least one sequence")
        token_ids = np.asarray(token_ids, dtype=np.int64).ravel()
        if token_ids.shape != (len(seq_ids),):
            raise ValueError(
                f"token_ids must have one entry per sequence, got {token_ids.shape}"
            )
        if len(set(seq_ids)) != len(seq_ids):
            raise ValueError("duplicate seq_id in decode batch")
        # One seq_len pass serves validation, RoPE positions, and the
        # post-append attention contexts for the whole step.
        lengths = np.array([self.cache.seq_len(s) for s in seq_ids], dtype=np.int64)
        for i, seq_id in enumerate(seq_ids):
            if lengths[i] == 0:
                raise ValueError(f"decode requires a prefilled sequence, got {seq_id!r}")

        # Reserve this iteration's pages per sequence *before* touching any
        # KV state: an exhausted pool must surface as a clean per-sequence
        # failure, never as a mid-batch, mid-layer partial append.
        failed: list[object] = []
        for seq_id in seq_ids:
            try:
                self._reserve_pages(seq_id, 1)
            except OutOfPagesError:
                failed.append(seq_id)
        if failed:
            dense = self.cache.dense_cache
            num_free = dense.allocator.num_free if dense is not None else 0
            raise DecodeOutOfPagesError(failed, num_free)

        cfg = self.model.config
        weights = self.model.weights
        batch = len(seq_ids)
        positions = lengths
        contexts = lengths + 1

        hidden = weights.embedding[token_ids]  # (batch, hidden)
        for layer_idx, layer in enumerate(weights.layers):
            attn_in = rms_norm(hidden, layer.attn_norm)
            q = _rowwise_matmul(attn_in, layer.wq).reshape(batch, cfg.n_heads, cfg.head_dim)
            k = _rowwise_matmul(attn_in, layer.wk).reshape(batch, cfg.n_kv_heads, cfg.head_dim)
            v = _rowwise_matmul(attn_in, layer.wv).reshape(batch, cfg.n_kv_heads, cfg.head_dim)
            q = apply_rope(q, positions, self.model.rope)
            k = apply_rope(k, positions, self.model.rope)
            self.cache.append_batch(seq_ids, layer_idx, k, v)
            attn_out = self._decode_attention_batch(seq_ids, layer_idx, q, contexts)
            hidden = hidden + _rowwise_matmul(
                attn_out.reshape(batch, cfg.hidden_size), layer.wo
            )
            ffn_in = rms_norm(hidden, layer.ffn_norm)
            gate = silu(_rowwise_matmul(ffn_in, layer.w_gate)) * _rowwise_matmul(
                ffn_in, layer.w_up
            )
            hidden = hidden + _rowwise_matmul(gate, layer.w_down)

        hidden = rms_norm(hidden, weights.final_norm)
        self.stats.decode_steps += batch
        return _rowwise_matmul(hidden, weights.lm_head)

    # -- speculative decoding ------------------------------------------------------
    def decode_speculative(
        self, seq_id: object, token_ids: list[int] | np.ndarray
    ) -> tuple[np.ndarray, SpeculativeChunk]:
        """Verify a chunk of ``m`` candidate tokens in one forward pass.

        ``token_ids`` is the pending token followed by draft proposals.  The
        whole chunk runs on a copy-on-write **scratch fork** of ``seq_id``:
        the embedding/QKV/output/FFN projections are batched GEMMs over all
        ``m`` rows (the speculation speedup — the same amortization
        :meth:`decode_batch` exploits across sequences), while attention runs
        per position in cache order — append position ``j``'s KV to the
        scratch, then attend with exactly positions ``0..j`` visible.  Row
        ``j`` of the returned logits ``(m, vocab)`` is therefore **bitwise
        identical** to the logits sequential :meth:`decode` calls would have
        produced after consuming ``token_ids[:j+1]``: per-row ops are
        row-local, :func:`_rowwise_matmul` rows are batch-size independent,
        and the scratch starts with the parent's pages, streaming rings, and
        cached page selections (same reuse phase).

        The scratch is released before returning — rejected draft KV never
        touches the real sequence; rollback *is* the scratch release through
        the allocator's ref-counted decref path, so the pool cannot leak.
        The real sequence is untouched; call :meth:`commit_speculative` with
        the accepted prefix length to advance it.  An exhausted pool raises
        :class:`DecodeOutOfPagesError` with the scratch already released.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64).ravel()
        m = int(token_ids.size)
        if m == 0:
            raise ValueError("decode_speculative requires at least one token")
        base = self.cache.seq_len(seq_id)
        if base == 0:
            raise ValueError(
                f"decode requires a prefilled sequence, got {seq_id!r}"
            )
        scratch = ("__speculative__", seq_id)
        if self.cache.has_sequence(scratch):
            raise ValueError(f"speculative scratch for {seq_id!r} already active")

        self.cache.fork_sequence(seq_id, scratch)
        self.selector.clone_sequence(seq_id, scratch)
        try:
            try:
                self._reserve_pages(scratch, m)
            except OutOfPagesError:
                dense = self.cache.dense_cache
                num_free = dense.allocator.num_free if dense is not None else 0
                raise DecodeOutOfPagesError([seq_id], num_free) from None

            cfg = self.model.config
            weights = self.model.weights
            positions = np.arange(base, base + m)
            k_per_layer: list[np.ndarray] = []
            v_per_layer: list[np.ndarray] = []
            q_per_layer: list[np.ndarray] = []

            hidden = weights.embedding[token_ids]  # (m, hidden)
            for layer_idx, layer in enumerate(weights.layers):
                attn_in = rms_norm(hidden, layer.attn_norm)
                q = _rowwise_matmul(attn_in, layer.wq).reshape(m, cfg.n_heads, cfg.head_dim)
                k = _rowwise_matmul(attn_in, layer.wk).reshape(m, cfg.n_kv_heads, cfg.head_dim)
                v = _rowwise_matmul(attn_in, layer.wv).reshape(m, cfg.n_kv_heads, cfg.head_dim)
                q = apply_rope(q, positions, self.model.rope)
                k = apply_rope(k, positions, self.model.rope)
                k_per_layer.append(k)
                v_per_layer.append(v)
                q_per_layer.append(q)
                attn_out = np.empty((m, cfg.n_heads, cfg.head_dim))
                for j in range(m):
                    self.cache.append_batch([scratch], layer_idx, k[j : j + 1], v[j : j + 1])
                    attn_out[j] = self._decode_attention_batch(
                        [scratch],
                        layer_idx,
                        q[j : j + 1],
                        np.array([base + j + 1], dtype=np.int64),
                    )[0]
                hidden = hidden + _rowwise_matmul(
                    attn_out.reshape(m, cfg.hidden_size), layer.wo
                )
                ffn_in = rms_norm(hidden, layer.ffn_norm)
                gate = silu(_rowwise_matmul(ffn_in, layer.w_gate)) * _rowwise_matmul(
                    ffn_in, layer.w_up
                )
                hidden = hidden + _rowwise_matmul(gate, layer.w_down)

            hidden = rms_norm(hidden, weights.final_norm)
            logits = _rowwise_matmul(hidden, weights.lm_head)
        finally:
            # Rollback of every unverified/rejected draft token: release the
            # scratch through the ref-counted decref path (shared pages
            # survive on the parent, CoW'd/grown pages return to the pool).
            self.release(scratch)
        self.stats.decode_steps += m
        chunk = SpeculativeChunk(
            seq_id=seq_id,
            base_len=base,
            tokens=token_ids,
            k_per_layer=k_per_layer,
            v_per_layer=v_per_layer,
            q_per_layer=q_per_layer,
        )
        return logits, chunk

    def decode_speculative_batch(
        self, requests: list[tuple[object, list[int] | np.ndarray]]
    ) -> list[tuple[np.ndarray, SpeculativeChunk]]:
        """Verify every speculating sequence's chunk in one fused grouped pass.

        ``requests`` is ``[(seq_id, token_ids), ...]`` — each entry exactly
        what :meth:`decode_speculative` takes.  The fused pass concatenates
        all sequences' chunk rows and runs the per-layer
        embedding/QKV/output/FFN projections as **single batch-wide GEMMs**
        over all ``M = sum(m_i)`` rows — the cross-request amortization
        :meth:`decode_batch` exploits, now applied to verification — while
        attention advances all chunks in lockstep: at chunk position ``j``,
        every sequence whose chunk still has a row ``j`` appends it via one
        ``append_batch`` and attends through one
        :meth:`_decode_attention_batch` call (shape-signature grouping, never
        padding, ragged fallback).  Because per-row GEMM results are
        batch-size independent (:func:`_rowwise_matmul`) and the batched
        KV-append/attention paths are composition-stable, entry ``i`` of the
        result is **bitwise identical** to ``decode_speculative(*requests[i])``
        run alone — and therefore to plain sequential decode of the accepted
        prefix.

        Atomicity matches :meth:`decode_batch`: every sequence's scratch fork
        and page reservation happens *before* any compute, and a pool too
        small for some chunks raises :class:`DecodeOutOfPagesError` naming
        exactly the failed sequences with **nothing mutated** — all scratch
        forks are released, every real sequence (and batchmate) is untouched,
        so the caller can fall back or evict only the failed members and
        retry the survivors.  On success each returned chunk is independent;
        committing one sequence never affects another.
        """
        if not requests:
            raise ValueError("decode_speculative_batch requires at least one sequence")
        seq_ids = [seq_id for seq_id, _ in requests]
        if len(set(seq_ids)) != len(seq_ids):
            raise ValueError("duplicate seq_id in speculative batch")
        token_arrays: list[np.ndarray] = []
        bases: list[int] = []
        for seq_id, token_ids in requests:
            arr = np.asarray(token_ids, dtype=np.int64).ravel()
            if arr.size == 0:
                raise ValueError("decode_speculative requires at least one token")
            base = self.cache.seq_len(seq_id)
            if base == 0:
                raise ValueError(
                    f"decode requires a prefilled sequence, got {seq_id!r}"
                )
            token_arrays.append(arr)
            bases.append(base)
        scratches = [("__speculative__", seq_id) for seq_id in seq_ids]
        for seq_id, scratch in zip(seq_ids, scratches):
            if self.cache.has_sequence(scratch):
                raise ValueError(f"speculative scratch for {seq_id!r} already active")

        ms = [int(arr.size) for arr in token_arrays]
        offsets = np.concatenate([[0], np.cumsum(ms)])
        total = int(offsets[-1])

        forked: list[object] = []
        try:
            # Fork + reserve for EVERY sequence before any compute.  Failures
            # are collected (not raised one at a time) so the error names the
            # full failed set; the finally-release undoes all forks, leaving
            # real sequences bit-identical to before the call.
            failed: list[object] = []
            for seq_id, scratch, m in zip(seq_ids, scratches, ms):
                self.cache.fork_sequence(seq_id, scratch)
                self.selector.clone_sequence(seq_id, scratch)
                forked.append(scratch)
                try:
                    self._reserve_pages(scratch, m)
                except OutOfPagesError:
                    failed.append(seq_id)
            if failed:
                dense = self.cache.dense_cache
                num_free = dense.allocator.num_free if dense is not None else 0
                raise DecodeOutOfPagesError(failed, num_free)

            cfg = self.model.config
            weights = self.model.weights
            positions = np.concatenate(
                [np.arange(b, b + m) for b, m in zip(bases, ms)]
            )
            # Lockstep schedule: at chunk position j, these batch members
            # still have a row to append + attend.
            max_m = max(ms)
            active_per_step = [
                [i for i in range(len(ms)) if ms[i] > j] for j in range(max_m)
            ]
            k_per_layer: list[np.ndarray] = []
            v_per_layer: list[np.ndarray] = []
            q_per_layer: list[np.ndarray] = []

            hidden = weights.embedding[np.concatenate(token_arrays)]  # (M, hidden)
            for layer_idx, layer in enumerate(weights.layers):
                attn_in = rms_norm(hidden, layer.attn_norm)
                q = _rowwise_matmul(attn_in, layer.wq).reshape(total, cfg.n_heads, cfg.head_dim)
                k = _rowwise_matmul(attn_in, layer.wk).reshape(total, cfg.n_kv_heads, cfg.head_dim)
                v = _rowwise_matmul(attn_in, layer.wv).reshape(total, cfg.n_kv_heads, cfg.head_dim)
                q = apply_rope(q, positions, self.model.rope)
                k = apply_rope(k, positions, self.model.rope)
                k_per_layer.append(k)
                v_per_layer.append(v)
                q_per_layer.append(q)
                attn_out = np.empty((total, cfg.n_heads, cfg.head_dim))
                for j, active in enumerate(active_per_step):
                    rows = np.array([offsets[i] + j for i in active], dtype=np.intp)
                    self.cache.append_batch(
                        [scratches[i] for i in active], layer_idx, k[rows], v[rows]
                    )
                    attn_out[rows] = self._decode_attention_batch(
                        [scratches[i] for i in active],
                        layer_idx,
                        q[rows],
                        np.array([bases[i] + j + 1 for i in active], dtype=np.int64),
                    )
                hidden = hidden + _rowwise_matmul(
                    attn_out.reshape(total, cfg.hidden_size), layer.wo
                )
                ffn_in = rms_norm(hidden, layer.ffn_norm)
                gate = silu(_rowwise_matmul(ffn_in, layer.w_gate)) * _rowwise_matmul(
                    ffn_in, layer.w_up
                )
                hidden = hidden + _rowwise_matmul(gate, layer.w_down)

            hidden = rms_norm(hidden, weights.final_norm)
            logits = _rowwise_matmul(hidden, weights.lm_head)
        finally:
            for scratch in forked:
                self.release(scratch)
        self.stats.decode_steps += total

        results: list[tuple[np.ndarray, SpeculativeChunk]] = []
        for i, (seq_id, arr) in enumerate(zip(seq_ids, token_arrays)):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            chunk = SpeculativeChunk(
                seq_id=seq_id,
                base_len=bases[i],
                tokens=arr,
                k_per_layer=[k[lo:hi].copy() for k in k_per_layer],
                v_per_layer=[v[lo:hi].copy() for v in v_per_layer],
                q_per_layer=[q[lo:hi].copy() for q in q_per_layer],
            )
            results.append((logits[lo:hi].copy(), chunk))
        return results

    def commit_speculative(
        self, seq_id: object, chunk: SpeculativeChunk, n_commit: int
    ) -> None:
        """Append the accepted prefix of a verified chunk to the real sequence.

        Re-appends the first ``n_commit`` saved post-RoPE K/V rows (bit-exact
        — see :class:`SpeculativeChunk`) and replays the per-position dense
        selector phase with the saved queries, so a later decode step sees
        the same cached selections, with the same reuse phase, as a run that
        decoded these tokens one at a time.  Pages are reserved atomically up
        front: an exhausted pool raises :class:`DecodeOutOfPagesError` before
        any KV is written, leaving the sequence exactly at ``base_len``.
        """
        if chunk.seq_id != seq_id:
            raise ValueError(
                f"chunk belongs to sequence {chunk.seq_id!r}, not {seq_id!r}"
            )
        if self.cache.seq_len(seq_id) != chunk.base_len:
            raise ValueError(
                f"sequence {seq_id!r} moved since verification "
                f"(length {self.cache.seq_len(seq_id)} != chunk base {chunk.base_len})"
            )
        if not 1 <= n_commit <= len(chunk):
            raise ValueError(
                f"n_commit must be in [1, {len(chunk)}], got {n_commit}"
            )
        try:
            self._reserve_pages(seq_id, n_commit)
        except OutOfPagesError:
            dense = self.cache.dense_cache
            num_free = dense.allocator.num_free if dense is not None else 0
            raise DecodeOutOfPagesError([seq_id], num_free) from None

        cfg = self.model.config
        group = cfg.gqa_group_size
        dense_cache = self.cache.dense_cache
        dq_idx = self._dense_query_heads
        for layer_idx in range(cfg.n_layers):
            k = chunk.k_per_layer[layer_idx]
            v = chunk.v_per_layer[layer_idx]
            q = chunk.q_per_layer[layer_idx]
            for j in range(n_commit):
                # Interleave append and selector replay per position: the
                # selection at context c must fold key stats of positions
                # 0..c-1 only — appending the whole prefix first would leak
                # future keys into earlier selections.
                self.cache.append_batch([seq_id], layer_idx, k[j : j + 1], v[j : j + 1])
                context = chunk.base_len + j + 1
                if self._dense_kv_heads.size and self.config.dynamic_sparsity_active(
                    context
                ):
                    assert dense_cache is not None
                    key = (seq_id, layer_idx)
                    selection = self.selector.lookup(
                        key, dense_cache.num_logical_pages(seq_id, layer_idx)
                    )
                    if selection is None:
                        kmin, kmax = self.cache.dense_key_stats(seq_id, layer_idx)
                        self.selector.select(
                            key, q[j, dq_idx, :], kmin, kmax, gqa_group_size=group
                        )

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        seq_id: object = "generate",
        sampling: "SamplingParams | None" = None,
    ) -> list[int]:
        """Generation convenience wrapper (prefill + decode loop).

        Produces at most ``max_new_tokens`` tokens (exactly that many unless a
        stop token from ``sampling.stop_token_ids`` is emitted first, which is
        kept in the output).  ``max_new_tokens=0`` generates nothing.
        """
        from repro.serving.sampling import SamplingParams, sample_token

        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        if max_new_tokens == 0:
            return []
        params = sampling or SamplingParams()
        rng = np.random.default_rng(params.seed)
        logits = self.prefill(seq_id, prompt_ids)
        next_id = sample_token(logits[-1], params, rng)
        generated = [next_id]
        while len(generated) < max_new_tokens and not params.is_stop(next_id):
            next_id = sample_token(self.decode(seq_id, next_id), params, rng)
            generated.append(next_id)
        return generated

    # -- forward pass ------------------------------------------------------------
    def _forward(
        self, seq_id: object, token_ids: np.ndarray, is_prefill: bool
    ) -> np.ndarray:
        cfg = self.model.config
        weights = self.model.weights
        n_new = token_ids.shape[0]
        start = self.cache.seq_len(seq_id)
        positions = np.arange(start, start + n_new)

        hidden = weights.embedding[token_ids]
        for layer_idx, layer in enumerate(weights.layers):
            attn_in = rms_norm(hidden, layer.attn_norm)
            q = (attn_in @ layer.wq).reshape(n_new, cfg.n_heads, cfg.head_dim)
            k = (attn_in @ layer.wk).reshape(n_new, cfg.n_kv_heads, cfg.head_dim)
            v = (attn_in @ layer.wv).reshape(n_new, cfg.n_kv_heads, cfg.head_dim)
            q = apply_rope(q, positions, self.model.rope)
            k = apply_rope(k, positions, self.model.rope)
            if is_prefill and start > 0:
                # Chunked-prefill continuation: the KV history must be read
                # *before* this chunk is appended (the streaming store evicts
                # local-window pages as the chunk lands).
                attn_out = self._prefill_continuation_attention(
                    seq_id, layer_idx, q, k, v, start
                )
                self.cache.append(seq_id, layer_idx, k, v)
            else:
                self.cache.append(seq_id, layer_idx, k, v)
                if is_prefill:
                    attn_out = self._prefill_attention(q, k, v)
                else:
                    attn_out = self._decode_attention(seq_id, layer_idx, q)

            hidden = hidden + attn_out.reshape(n_new, cfg.hidden_size) @ layer.wo
            ffn_in = rms_norm(hidden, layer.ffn_norm)
            gate = silu(ffn_in @ layer.w_gate) * (ffn_in @ layer.w_up)
            hidden = hidden + gate @ layer.w_down

        hidden = rms_norm(hidden, weights.final_norm)
        return hidden @ weights.lm_head

    def _prefill_attention(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        output, stats = prefill_sparse_attention(
            q,
            k,
            v,
            head_is_streaming=self.streaming_query_heads,
            streaming=self.streaming,
            q_block=self.config.q_block_size,
            kv_block=self.config.physical_page_size,
        )
        self.stats.prefill_blocks_visited += stats.visited_blocks
        self.stats.prefill_blocks_total += stats.total_blocks
        return output

    def _prefill_continuation_attention(
        self,
        seq_id: object,
        layer_idx: int,
        q: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        start: int,
    ) -> np.ndarray:
        """Fused sparse attention of one continuation chunk over the full context.

        The chunk's queries attend over ``start`` historical tokens plus the
        chunk itself.  Dense-head history is read back from the paged cache
        (quantized, as a real chunked prefill would); streaming-head history is
        scattered from the sink+local store into its original positions —
        evicted positions stay zero, but the Λ block mask never visits them.
        The chunk's own keys/values are used raw, exactly as in single-shot
        prefill.
        """
        cfg = self.model.config
        n_new = q.shape[0]
        n_ctx = start + n_new
        k_full = np.zeros((n_ctx, cfg.n_kv_heads, cfg.head_dim))
        v_full = np.zeros((n_ctx, cfg.n_kv_heads, cfg.head_dim))
        if self._dense_kv_heads.size:
            k_hist, v_hist = self.cache.get_dense(seq_id, layer_idx)
            k_full[np.ix_(np.arange(start), self._dense_kv_heads)] = k_hist
            v_full[np.ix_(np.arange(start), self._dense_kv_heads)] = v_hist
        if self._streaming_kv_heads_idx.size:
            k_s, v_s, pos = self.cache.get_streaming(seq_id, layer_idx)
            k_full[np.ix_(pos, self._streaming_kv_heads_idx)] = k_s
            v_full[np.ix_(pos, self._streaming_kv_heads_idx)] = v_s
        k_full[start:] = k_new
        v_full[start:] = v_new
        output, stats = prefill_sparse_attention(
            q,
            k_full,
            v_full,
            head_is_streaming=self.streaming_query_heads,
            streaming=self.streaming,
            q_block=self.config.q_block_size,
            kv_block=self.config.physical_page_size,
        )
        self.stats.prefill_blocks_visited += stats.visited_blocks
        self.stats.prefill_blocks_total += stats.total_blocks
        return output

    def _decode_attention(self, seq_id: object, layer_idx: int, q: np.ndarray) -> np.ndarray:
        """Decode attention for one sequence (the batch path with batch = 1)."""
        contexts = np.array([self.cache.seq_len(seq_id)], dtype=np.int64)
        return self._decode_attention_batch([seq_id], layer_idx, q, contexts)

    def _decode_attention_batch(
        self,
        seq_ids: list[object],
        layer_idx: int,
        q: np.ndarray,
        contexts: np.ndarray,
    ) -> np.ndarray:
        """Decode attention for a whole batch, vectorised across sequences × heads.

        Sequences are grouped by gathered-KV shape and each group runs as one
        stacked-matmul attention call (:func:`decode_batched_attention`).
        Grouping — never padding — keeps every sequence's slice bitwise
        independent of the batch composition, so decoding a sequence alone or
        inside any batch yields byte-identical output.  ``contexts[i]`` is
        ``seq_ids[i]``'s context length *after* this step's append.
        """
        cfg = self.model.config
        group = cfg.gqa_group_size
        batch = len(seq_ids)
        output = np.zeros((batch, cfg.n_heads, cfg.head_dim))

        # Streaming heads: constant-size sink + local window, grouped by the
        # number of tokens the store currently retains.
        if self._streaming_kv_heads_idx.size:
            sq_idx = np.flatnonzero(self.streaming_query_heads)
            n_streams = int(self._streaming_kv_heads_idx.size)
            stream_stores = []
            stream_groups: dict[int, list[int]] = {}
            for i, seq_id in enumerate(seq_ids):
                store = self.cache.streaming_store(seq_id, layer_idx)
                assert store is not None
                stream_stores.append(store)
                stored = store.stored_tokens
                stream_groups.setdefault(stored, []).append(i)
                self.stats.streaming_tokens_attended += stored * n_streams
            for stored, idxs in stream_groups.items():
                rows = np.asarray(idxs, dtype=np.intp)
                # Each store copies straight into its row of the token-major
                # (G, T, Hs, d) group stack; attention reads it head-major.
                k_g = np.empty((len(idxs), stored, n_streams, cfg.head_dim))
                v_g = np.empty_like(k_g)
                for j, i in enumerate(idxs):
                    stream_stores[i].read_into(k_g[j], v_g[j])
                output[np.ix_(rows, sq_idx)] = decode_batched_attention(
                    q[np.ix_(rows, sq_idx)],
                    k_g.transpose(0, 2, 1, 3),
                    v_g.transpose(0, 2, 1, 3),
                    gqa_group_size=group,
                )

        # Dense heads: dynamic page selection over the full history once the
        # context crosses the sparsity threshold, full reads below it.
        if self._dense_kv_heads.size:
            dense_cache = self.cache.dense_cache
            assert dense_cache is not None
            dq_idx = self._dense_query_heads
            n_dense = int(self._dense_kv_heads.size)
            sel_pages: dict[int, np.ndarray] = {}
            sel_groups: dict[tuple[int, int], list[int]] = {}
            full_kv: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            full_groups: dict[int, list[int]] = {}
            for i, seq_id in enumerate(seq_ids):
                context = int(contexts[i])
                if self.config.dynamic_sparsity_active(context):
                    key = (seq_id, layer_idx)
                    selection = self.selector.lookup(
                        key, dense_cache.num_logical_pages(seq_id, layer_idx)
                    )
                    if selection is None:
                        kmin, kmax = self.cache.dense_key_stats(seq_id, layer_idx)
                        selection = self.selector.select(
                            key, q[i, dq_idx, :], kmin, kmax, gqa_group_size=group
                        )
                    matrix = selection.pages_matrix()
                    signature = (
                        dense_cache.selected_token_count(seq_id, layer_idx, matrix)
                        if matrix is not None
                        else None
                    )
                    if signature is None:
                        # Ragged per-head selection: per-head gather fallback.
                        for dense_idx, kv_head in enumerate(self._dense_kv_heads):
                            heads = np.arange(kv_head * group, (kv_head + 1) * group)
                            pages = selection.pages_per_kv_head[dense_idx]
                            k_sel, v_sel, _ = dense_cache.gather_pages(
                                seq_id, layer_idx, pages
                            )
                            output[i, heads] = decode_group_attention(
                                q[i, heads], k_sel[:, dense_idx], v_sel[:, dense_idx]
                            )
                            self.stats.dense_tokens_attended += int(k_sel.shape[0])
                            self.stats.dense_tokens_total += context
                        continue
                    sel_pages[i] = matrix
                    sel_groups.setdefault(signature, []).append(i)
                    self.stats.dense_tokens_attended += signature[0] * n_dense
                    self.stats.dense_tokens_total += context * n_dense
                else:
                    k_d, v_d = self.cache.get_dense(seq_id, layer_idx)
                    full_kv[i] = (k_d, v_d)  # token-major (context, Hd, d)
                    full_groups.setdefault(int(k_d.shape[0]), []).append(i)
                    self.stats.dense_tokens_attended += context * n_dense
                    self.stats.dense_tokens_total += context * n_dense
            for idxs in sel_groups.values():
                rows = np.asarray(idxs, dtype=np.intp)
                k_g, v_g = dense_cache.gather_selected_batch(
                    [seq_ids[i] for i in idxs], layer_idx, [sel_pages[i] for i in idxs]
                )  # head-major (G, Hd, N, d)
                output[np.ix_(rows, dq_idx)] = decode_batched_attention(
                    q[np.ix_(rows, dq_idx)], k_g, v_g, gqa_group_size=group
                )
            for idxs in full_groups.values():
                rows = np.asarray(idxs, dtype=np.intp)
                k_g = np.stack([full_kv[i][0] for i in idxs]).transpose(0, 2, 1, 3)
                v_g = np.stack([full_kv[i][1] for i in idxs]).transpose(0, 2, 1, 3)
                output[np.ix_(rows, dq_idx)] = decode_batched_attention(
                    q[np.ix_(rows, dq_idx)], k_g, v_g, gqa_group_size=group
                )
        return output
