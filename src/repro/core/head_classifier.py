"""Retrieval / streaming head identification (paper §3.3, following DuoAttention).

DuoAttention learns a gate value ``α ∈ [0, 1]`` per attention head by
minimising the distortion introduced when the head's full-attention output is
replaced by a mixture ``α · O_full + (1 - α) · O_streaming`` under an L1
penalty pushing gates toward zero.  Heads whose output changes little when
restricted to the Λ mask end up with small gates (streaming heads); heads that
genuinely retrieve from the middle of the context keep gates near one
(retrieval heads).  A sparsity quantile then thresholds the gates (e.g. the
median for 50% streaming heads).

With the mixture objective

``L(α) = ‖(1 - α) · (O_full - O_stream)‖² + λ · α``

the per-head minimiser has the closed form ``α* = clip(1 - λ / (2‖D‖²), 0, 1)``
where ``D = O_full - O_stream`` is accumulated over a calibration set.  We use
that closed form rather than stochastic gradient descent; it preserves the
ordering DuoAttention's optimisation produces (heads are ranked by how much
their output depends on non-local context), which is all the quantile
threshold consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.dense import dense_attention
from repro.core.streaming import StreamingConfig
from repro.model.transformer import TinyTransformer

__all__ = [
    "HeadClassification",
    "optimize_gate_values",
    "collect_head_gates",
    "classify_heads",
]


@dataclass(frozen=True)
class HeadClassification:
    """Result of head classification.

    ``gate_values`` has shape ``(n_layers, n_kv_heads)``;
    ``streaming_mask`` marks KV heads converted to streaming heads.
    """

    gate_values: np.ndarray
    streaming_mask: np.ndarray
    threshold: float

    @property
    def streaming_ratio(self) -> float:
        return float(np.mean(self.streaming_mask))


def optimize_gate_values(
    full_output: np.ndarray, streaming_output: np.ndarray, penalty: float = 1e-2
) -> np.ndarray:
    """Closed-form DuoAttention gate values per head.

    ``full_output`` and ``streaming_output`` have shape
    ``(n_tokens, n_heads, head_dim)``.  Returns gates in ``[0, 1]`` of shape
    ``(n_heads,)``; larger means "retrieval head".
    """
    full_output = np.asarray(full_output, dtype=np.float64)
    streaming_output = np.asarray(streaming_output, dtype=np.float64)
    if full_output.shape != streaming_output.shape:
        raise ValueError("full and streaming outputs must have the same shape")
    if penalty <= 0:
        raise ValueError("penalty must be positive")
    diff = full_output - streaming_output
    # Mean squared deviation per head, normalised by the output scale so the
    # penalty has a comparable effect across heads.
    dist = np.mean(diff**2, axis=(0, 2))
    scale = np.mean(full_output**2, axis=(0, 2)) + 1e-12
    normalised = dist / scale
    gates = 1.0 - penalty / (2.0 * np.maximum(normalised, 1e-12))
    return np.clip(gates, 0.0, 1.0)


def collect_head_gates(
    model: TinyTransformer,
    calibration_tokens: np.ndarray,
    streaming: StreamingConfig,
    penalty: float = 1e-2,
) -> np.ndarray:
    """Run the calibration pass and return per-layer, per-KV-head gate values.

    The model is run once with a recording attention backend; for every layer
    the full-attention and streaming-attention outputs are compared per head,
    and query-head gates are averaged within each GQA group (classification is
    at KV-head granularity, matching the two-way KV cache).
    """
    cfg = model.config
    recorded: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def recording_backend(layer, q, k, v, n_new):
        recorded.append((q, k, v))
        return dense_attention(q, k, v, causal=True)

    original_backend = model.attention_backend
    model.attention_backend = recording_backend
    try:
        model.prefill(np.asarray(calibration_tokens))
    finally:
        model.attention_backend = original_backend

    if len(recorded) != cfg.n_layers:
        raise RuntimeError("calibration pass did not record every layer")

    gates = np.zeros((cfg.n_layers, cfg.n_kv_heads))
    for layer, (q, k, v) in enumerate(recorded):
        n = q.shape[0]
        full = dense_attention(q, k, v, causal=True)
        stream = dense_attention(q, k, v, mask=streaming.token_mask(n, n))
        per_query_head = optimize_gate_values(full, stream, penalty=penalty)
        gates[layer] = per_query_head.reshape(cfg.n_kv_heads, cfg.gqa_group_size).mean(axis=1)
    return gates


def classify_heads(gate_values: np.ndarray, sparsity: float = 0.5) -> HeadClassification:
    """Threshold gate values at the sparsity quantile (paper §3.3).

    ``sparsity`` is the target fraction of streaming heads; the threshold τ is
    the corresponding quantile of all gate values, so exactly that fraction of
    heads (up to ties) falls below it and is converted to streaming heads.
    """
    gates = np.asarray(gate_values, dtype=np.float64)
    if gates.ndim == 1:
        gates = gates[None]
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    flat = gates.ravel()
    if sparsity == 0.0:
        threshold = -np.inf
        streaming = np.zeros_like(gates, dtype=bool)
    elif sparsity == 1.0:
        threshold = np.inf
        streaming = np.ones_like(gates, dtype=bool)
    else:
        threshold = float(np.quantile(flat, sparsity))
        streaming = gates < threshold
        # Quantile ties can under-shoot the target count; fill up with the
        # smallest remaining gates to honour the requested sparsity.
        target = int(round(sparsity * flat.size))
        if streaming.sum() < target:
            order = np.argsort(flat, kind="stable")
            fill = [i for i in order if not streaming.ravel()[i]][: target - int(streaming.sum())]
            flat_mask = streaming.ravel()
            flat_mask[fill] = True
            streaming = flat_mask.reshape(gates.shape)
    return HeadClassification(
        gate_values=gates, streaming_mask=streaming, threshold=float(threshold)
    )
