"""LServe core: unified sparse attention for long-sequence LLM serving.

This subpackage implements the paper's primary contribution:

* :mod:`repro.core.config` — the serving configuration (sparsity geometry,
  token budget, page sizes, reuse interval, KV precision).
* :mod:`repro.core.block_sparse` — the iterator-based block-sparse layout
  abstraction used by the fused kernels (paper §3.4).
* :mod:`repro.core.streaming` — streaming-head (Λ-mask) static sparsity.
* :mod:`repro.core.head_classifier` — DuoAttention-style retrieval/streaming
  head identification via gate optimisation and quantile thresholding (§3.3).
* :mod:`repro.core.hierarchical_paging` — logical/physical pages, query-centric
  importance scores (Eq. 2), top-K physical page selection (§3.5.2).
* :mod:`repro.core.page_selector` — the (reusable) dynamic page selector (§3.5.3).
* :mod:`repro.core.unified_sparse_attention` — prefill and decode attention
  with hybrid static + dynamic block sparsity (§3.1, §3.6).
* :mod:`repro.core.engine` — the LServe engine tying the pieces together over
  the two-way paged KV cache (§3.2).
"""

from repro.core.config import LServeConfig
from repro.core.block_sparse import BlockIterator, BlockSparseLayout
from repro.core.streaming import StreamingConfig, build_prefill_block_masks
from repro.core.head_classifier import (
    HeadClassification,
    classify_heads,
    collect_head_gates,
    optimize_gate_values,
)
from repro.core.hierarchical_paging import (
    HierarchicalPagingConfig,
    logical_page_scores,
    physical_page_scores,
    select_top_pages,
)
from repro.core.page_selector import PageSelection, PageSelector, ReusablePageSelector
from repro.core.unified_sparse_attention import (
    prefill_sparse_attention,
    decode_group_attention,
)
from repro.core.engine import DecodeOutOfPagesError, LServeEngine, EngineStats

__all__ = [
    "LServeConfig",
    "BlockIterator",
    "BlockSparseLayout",
    "StreamingConfig",
    "build_prefill_block_masks",
    "HeadClassification",
    "classify_heads",
    "collect_head_gates",
    "optimize_gate_values",
    "HierarchicalPagingConfig",
    "logical_page_scores",
    "physical_page_scores",
    "select_top_pages",
    "PageSelection",
    "PageSelector",
    "ReusablePageSelector",
    "prefill_sparse_attention",
    "decode_group_attention",
    "LServeEngine",
    "EngineStats",
    "DecodeOutOfPagesError",
]
