"""LServe serving configuration.

Collects every knob the paper exposes: the static-sparsity geometry (fraction
of streaming heads, sink/local window sizes), the dynamic-sparsity geometry
(physical/logical page sizes, token budget, reuse interval), KV quantization
precision, and the prefill tile size.  Defaults follow the paper's evaluation
setup (§4.2, §5.3): 50% streaming heads, 4096-token budget, physical pages of
64 tokens with 16-token logical pages, reuse interval 4, KV8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.kvcache.quantization import SUPPORTED_BITS

__all__ = ["LServeConfig"]


@dataclass(frozen=True)
class LServeConfig:
    """Configuration of the LServe unified sparse attention serving system."""

    # -- static sparsity (streaming heads, §3.3) --
    streaming_head_ratio: float = 0.5
    sink_tokens: int = 64
    local_tokens: int = 256

    # -- dynamic sparsity (hierarchical paging, §3.5) --
    token_budget: int = 4096
    physical_page_size: int = 64
    logical_page_size: int = 16
    reuse_interval: int = 4
    dynamic_sparsity_enabled: bool = True

    # -- KV quantization (QServe substrate) --
    kv_bits: int = 8

    # -- prefill kernel tile size (TQ) --
    q_block_size: int = 64

    # -- prefix sharing (RadixAttention-style token-block index) --
    prefix_cache_enabled: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.streaming_head_ratio <= 1.0:
            raise ValueError("streaming_head_ratio must be in [0, 1]")
        if self.sink_tokens < 0 or self.local_tokens < 1:
            raise ValueError("sink_tokens must be >= 0 and local_tokens >= 1")
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")
        if self.physical_page_size <= 0 or self.logical_page_size <= 0:
            raise ValueError("page sizes must be positive")
        if self.physical_page_size % self.logical_page_size != 0:
            raise ValueError(
                f"physical_page_size ({self.physical_page_size}) must be a multiple "
                f"of logical_page_size ({self.logical_page_size})"
            )
        if self.reuse_interval < 1:
            raise ValueError("reuse_interval must be >= 1")
        if self.kv_bits not in SUPPORTED_BITS:
            raise ValueError(f"kv_bits must be one of {SUPPORTED_BITS}")
        if self.q_block_size <= 0:
            raise ValueError("q_block_size must be positive")

    # -- derived geometry -----------------------------------------------------
    @property
    def logical_pages_per_physical(self) -> int:
        return self.physical_page_size // self.logical_page_size

    @property
    def sink_pages(self) -> int:
        """Number of leading physical pages always retained for dense heads."""
        return max(1, -(-self.sink_tokens // self.physical_page_size))

    @property
    def local_pages(self) -> int:
        """Number of trailing physical pages always retained for dense heads."""
        return max(1, -(-self.local_tokens // self.physical_page_size))

    @property
    def prefix_match_alignment(self) -> int:
        """Token alignment of prefix-cache attach boundaries.

        A match boundary must be a multiple of the physical page size (pages
        are shared whole) *and* of the prefill tile size, so the continuation
        chunk tiles the sparse masks at the same boundaries as a single-shot
        prefill would and the numerics stay comparable (see
        :meth:`LServeEngine.prefill`).
        """
        page, q = self.physical_page_size, self.q_block_size
        return page * q // math.gcd(page, q)

    @property
    def budget_pages(self) -> int:
        """Token budget expressed in physical pages."""
        return max(1, self.token_budget // self.physical_page_size)

    def num_streaming_heads(self, n_heads: int) -> int:
        """How many of ``n_heads`` are converted to streaming heads."""
        return int(round(self.streaming_head_ratio * n_heads))

    def dynamic_sparsity_active(self, context_length: int) -> bool:
        """Dynamic sparsity only pays off once the context exceeds the budget.

        The paper configures sparse patterns offline so that short contexts do
        not suffer selector overhead (§5.5); we model this by bypassing page
        selection whenever the whole context already fits the token budget.
        """
        return self.dynamic_sparsity_enabled and context_length > self.token_budget

    def with_overrides(self, **kwargs) -> "LServeConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    @classmethod
    def dense_baseline(cls) -> "LServeConfig":
        """A configuration with all sparsity disabled (dense attention)."""
        return cls(
            streaming_head_ratio=0.0,
            dynamic_sparsity_enabled=False,
            kv_bits=16,
        )

    @classmethod
    def static_only(cls, **kwargs) -> "LServeConfig":
        """Static sparsity (streaming heads) without dynamic page selection."""
        return cls(dynamic_sparsity_enabled=False, **kwargs)

    @classmethod
    def dynamic_only(cls, **kwargs) -> "LServeConfig":
        """Dynamic page selection without streaming heads."""
        return cls(streaming_head_ratio=0.0, **kwargs)
