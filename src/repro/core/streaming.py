"""Streaming-head static sparsity (paper §3.1, Fig. 4(c)).

Half of the attention heads are converted into *streaming heads* whose
attention mask is Λ-shaped: every query attends only to the attention-sink
tokens at the start of the sequence and to a local window of recent tokens.
Because the pattern is input-independent it is fixed offline and costs a
constant number of KV blocks per query regardless of context length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.masks import (
    block_causal_mask,
    block_streaming_mask,
    streaming_mask,
)

__all__ = ["StreamingConfig", "expand_kv_head_mask", "build_prefill_block_masks"]


@dataclass(frozen=True)
class StreamingConfig:
    """Geometry of the Λ mask used by streaming heads."""

    sink_tokens: int = 64
    local_tokens: int = 256

    def __post_init__(self) -> None:
        if self.sink_tokens < 0 or self.local_tokens < 1:
            raise ValueError("sink_tokens must be >= 0 and local_tokens >= 1")

    def sink_blocks(self, block_size: int) -> int:
        """Sink window in blocks (at least one block when sink_tokens > 0)."""
        if self.sink_tokens == 0:
            return 0
        return -(-self.sink_tokens // block_size)

    def local_blocks(self, block_size: int) -> int:
        """Local window in blocks (always at least the diagonal block)."""
        return max(1, -(-self.local_tokens // block_size))

    def tokens_attended(self, context_length: int) -> int:
        """Number of KV tokens a streaming-head query actually attends to."""
        return min(context_length, self.sink_tokens + self.local_tokens)

    def token_mask(self, n_q: int, n_kv: int) -> np.ndarray:
        return streaming_mask(n_q, n_kv, self.sink_tokens, self.local_tokens)


def expand_kv_head_mask(kv_head_mask: np.ndarray, gqa_group_size: int) -> np.ndarray:
    """Expand a per-KV-head boolean mask to query-head granularity.

    LServe (following DuoAttention on GQA models) classifies whole GQA groups,
    so all query heads sharing a KV head inherit its streaming/dense label.
    """
    mask = np.asarray(kv_head_mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError("kv_head_mask must be 1-D")
    if gqa_group_size <= 0:
        raise ValueError("gqa_group_size must be positive")
    return np.repeat(mask, gqa_group_size)


def build_prefill_block_masks(
    n_q: int,
    n_kv: int,
    q_block: int,
    kv_block: int,
    head_is_streaming: np.ndarray,
    streaming: StreamingConfig,
) -> np.ndarray:
    """Per-head block masks for the fused prefill kernel.

    Dense (retrieval) heads get the full causal block mask; streaming heads get
    the Λ-shaped block mask.  Returns a boolean array of shape
    ``(n_heads, n_q_blocks, n_kv_blocks)`` suitable for
    :func:`repro.attention.flash_reference.blockwise_attention`.
    """
    head_is_streaming = np.asarray(head_is_streaming, dtype=bool)
    if head_is_streaming.ndim != 1:
        raise ValueError("head_is_streaming must be a 1-D boolean array")
    n_heads = head_is_streaming.shape[0]
    causal = block_causal_mask(n_q, n_kv, q_block, kv_block)
    stream = block_streaming_mask(
        n_q,
        n_kv,
        q_block,
        kv_block,
        sink_blocks=streaming.sink_blocks(kv_block),
        local_blocks=streaming.local_blocks(kv_block),
    )
    masks = np.empty((n_heads, *causal.shape), dtype=bool)
    masks[~head_is_streaming] = causal
    masks[head_is_streaming] = stream
    return masks
