"""Low-bit KV-cache quantization (QServe-style KV4 / KV8).

Asymmetric per-group integer quantization: each group of values (by default a
single token's head_dim-sized vector, per head) gets its own scale and zero
point, stored alongside the codes — matching the paper's page layout where
"scaling factors and zero points [are] stored immediately after the token
features" (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "quantization_error_bound",
    "SUPPORTED_BITS",
]

SUPPORTED_BITS = (4, 8, 16)


@dataclass
class QuantizedTensor:
    """Integer codes plus per-group scale/zero-point.

    ``codes`` has the same shape as the original tensor; ``scale`` and ``zero``
    have that shape with the last axis reduced to 1.  ``bits == 16`` stores the
    original floating-point data unmodified (``scale``/``zero`` unused).
    """

    codes: np.ndarray
    scale: np.ndarray
    zero: np.ndarray
    bits: int
    original_dtype: np.dtype = np.dtype(np.float64)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.codes.shape

    def nbytes_model(self) -> float:
        """Modelled storage cost in bytes (codes at ``bits`` each + fp16 scale/zero)."""
        if self.bits == 16:
            return self.codes.size * 2.0
        return self.codes.size * self.bits / 8.0 + (self.scale.size + self.zero.size) * 2.0


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")


def quantize(x: np.ndarray, bits: int, group_axis: int = -1) -> QuantizedTensor:
    """Asymmetric uniform quantization of ``x`` with one scale/zero per group.

    A *group* is a slice along ``group_axis`` (default: the last axis, i.e.
    per-token-per-head groups when ``x`` is ``(..., head_dim)``).
    """
    _check_bits(bits)
    x = np.asarray(x, dtype=np.float64)
    if bits == 16:
        return QuantizedTensor(
            codes=x.copy(), scale=np.ones_like(x.sum(axis=group_axis, keepdims=True)),
            zero=np.zeros_like(x.sum(axis=group_axis, keepdims=True)), bits=16,
        )
    qmax = (1 << bits) - 1
    x_min = x.min(axis=group_axis, keepdims=True)
    x_max = x.max(axis=group_axis, keepdims=True)
    scale = (x_max - x_min) / qmax
    # Guard constant groups: any positive scale works since codes become 0.
    scale = np.where(scale <= 0.0, 1.0, scale)
    zero = x_min
    codes = np.clip(np.round((x - zero) / scale), 0, qmax).astype(np.uint8)
    return QuantizedTensor(codes=codes, scale=scale, zero=zero, bits=bits)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Reconstruct the floating-point tensor from a :class:`QuantizedTensor`."""
    if qt.bits == 16:
        return np.asarray(qt.codes, dtype=np.float64).copy()
    return qt.codes.astype(np.float64) * qt.scale + qt.zero


def quantization_error_bound(x: np.ndarray, bits: int, group_axis: int = -1) -> np.ndarray:
    """Worst-case absolute reconstruction error per group: ``scale / 2``."""
    _check_bits(bits)
    x = np.asarray(x, dtype=np.float64)
    if bits == 16:
        return np.zeros_like(x.max(axis=group_axis, keepdims=True))
    qmax = (1 << bits) - 1
    spread = x.max(axis=group_axis, keepdims=True) - x.min(axis=group_axis, keepdims=True)
    return spread / qmax / 2.0
