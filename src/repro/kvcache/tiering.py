"""Cold KV tier: eviction policies, a host-memory store, and page compression.

Under pool pressure the serving path *demotes* KV state instead of throwing
it away: the least-recently-attended victim's page images move to a simulated
host-memory tier (:class:`ColdTierStore`) — optionally re-quantized at a
lower precision (QServe-style, via :mod:`repro.kvcache.quantization`) — and
the hot pages return to the pool.  Re-attach later pays an explicit
:class:`~repro.gpu.cost_model.TransferCostModel` restore latency rather than
the full recompute cost of a preemption.

Three pieces live here:

* :class:`KVTieringConfig` — the knob set shared by both serving backends
  (``mode`` offload/quantized, cold precision, cold-tier capacity, restore
  cost model, eviction policy).
* :class:`EvictionPolicy` / :class:`LRUEvictionPolicy` — ranks demotion
  candidates by the :class:`~repro.kvcache.allocator.PageAllocator` access
  clock, refcount- and pin-aware: owners holding pinned pages (the prefix
  index's) are never victimized.
* :class:`ColdTierStore` — the host tier itself, keyed by owner, with
  capacity refusal (:class:`ColdTierError`) and demote/restore accounting.

Page payloads are whatever the owner hands over (a
:class:`~repro.kvcache.paged_cache.PagedSequenceExport`, a
:class:`~repro.kvcache.dual_cache.DualSequenceExport`, or a modeled token
count); :func:`compress_page_images` applies the lossy quantize→dequantize
round trip to real page images for the ``"quantized"`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.gpu.cost_model import TransferCostModel
from repro.kvcache.allocator import PageAllocator
from repro.kvcache.quantization import SUPPORTED_BITS, dequantize, quantize

__all__ = [
    "TIERING_MODES",
    "ColdTierError",
    "ColdEntry",
    "ColdTierStore",
    "KVTieringConfig",
    "EvictionPolicy",
    "LRUEvictionPolicy",
    "EVICTION_POLICIES",
    "make_eviction_policy",
    "compress_page_images",
]

#: Supported demotion modes: bit-exact offload vs. lossy re-quantization.
TIERING_MODES = ("offload", "quantized")


class ColdTierError(RuntimeError):
    """Raised when the cold tier cannot accept a demotion (full or duplicate)."""


# -- eviction policies -----------------------------------------------------------
class EvictionPolicy:
    """Ranks demotion candidates over the allocator's access clock.

    ``order`` receives a mapping of *owner* (an opaque key — a sequence id)
    to the physical pages it holds, and returns owners least-worth-keeping
    first.  Policies must be refcount- and pin-aware: an owner holding any
    pinned page is never victimized (pins mark prefix-index state), and
    shared pages are worth less to evict (they free nothing until every
    sharer lets go).
    """

    name = "abstract"

    def order(
        self, allocator: PageAllocator, owners: Mapping[object, Sequence[int]]
    ) -> list[object]:
        """Return the owners eligible for demotion, best victim first."""
        raise NotImplementedError


class LRUEvictionPolicy(EvictionPolicy):
    """Least-recently-attended first, by the allocator's access-clock stamps.

    An owner's recency is the *newest* stamp over its pages (one recently
    attended page keeps the whole sequence hot — demotion is all-or-nothing
    per owner).  Ties fall back to the mapping's insertion order.
    """

    name = "lru"

    def order(
        self, allocator: PageAllocator, owners: Mapping[object, Sequence[int]]
    ) -> list[object]:
        """Rank unpinned owners by last-attended stamp, oldest first."""
        ranked: list[tuple[int, object]] = []
        for owner, pages in owners.items():
            if any(allocator.is_pinned(p) for p in pages):
                continue
            stamp = max((allocator.last_used(p) for p in pages), default=0)
            ranked.append((stamp, owner))
        ranked.sort(key=lambda item: item[0])
        return [owner for _, owner in ranked]


EVICTION_POLICIES: dict[str, type[EvictionPolicy]] = {
    LRUEvictionPolicy.name: LRUEvictionPolicy,
}


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Instantiate a registered eviction policy by name."""
    try:
        return EVICTION_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; known: {sorted(EVICTION_POLICIES)}"
        ) from None


# -- configuration ---------------------------------------------------------------
@dataclass(frozen=True)
class KVTieringConfig:
    """Knobs of the cold KV tier, shared by both serving backends."""

    #: ``"offload"`` keeps demoted page images bit-exact; ``"quantized"``
    #: re-quantizes them at ``cold_kv_bits`` on the way out (lossy, smaller,
    #: faster to restore).
    mode: str = "offload"
    #: Storage/wire precision of demoted pages in ``"quantized"`` mode.
    cold_kv_bits: int = 8
    #: Host-tier capacity in pages (``None`` = unbounded).  When the cold
    #: tier is full, the engine falls back to classic recompute preemption.
    max_cold_pages: int | None = None
    #: Restore latency model charged on the virtual clock at re-attach.
    restore_cost: TransferCostModel = field(default_factory=TransferCostModel)
    #: Victim-ranking policy (see :data:`EVICTION_POLICIES`).
    eviction_policy: str = "lru"
    #: Demote idle prefix-index leaves (park their page images host-side)
    #: before hard-dropping them.
    prefix_demotion: bool = True

    def __post_init__(self) -> None:
        if self.mode not in TIERING_MODES:
            raise ValueError(f"mode must be one of {TIERING_MODES}, got {self.mode!r}")
        if self.cold_kv_bits not in SUPPORTED_BITS:
            raise ValueError(f"cold_kv_bits must be one of {SUPPORTED_BITS}")
        if self.max_cold_pages is not None and self.max_cold_pages <= 0:
            raise ValueError("max_cold_pages must be positive (or None for unbounded)")
        if self.eviction_policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction_policy!r}; "
                f"known: {sorted(EVICTION_POLICIES)}"
            )

    def cold_bits(self, hot_kv_bits: int) -> int:
        """Wire/storage precision of a demoted page, given the hot-tier bits."""
        return self.cold_kv_bits if self.mode == "quantized" else hot_kv_bits


# -- the host-memory tier --------------------------------------------------------
@dataclass
class ColdEntry:
    """One demoted snapshot parked in the cold tier."""

    payload: object
    n_pages: int
    n_tokens: int


class ColdTierStore:
    """Simulated host-memory tier holding demoted KV snapshots by owner key."""

    def __init__(self, max_pages: int | None = None) -> None:
        if max_pages is not None and max_pages <= 0:
            raise ValueError("max_pages must be positive (or None for unbounded)")
        self.max_pages = max_pages
        self._entries: dict[object, ColdEntry] = {}
        self.total_demotions = 0
        self.total_restores = 0
        self.peak_pages = 0

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_entries(self) -> int:
        """Number of demoted snapshots currently parked."""
        return len(self._entries)

    @property
    def num_pages(self) -> int:
        """Pages currently occupying the cold tier."""
        return sum(e.n_pages for e in self._entries.values())

    @property
    def num_tokens(self) -> int:
        """KV tokens currently parked in the cold tier."""
        return sum(e.n_tokens for e in self._entries.values())

    def can_accept(self, n_pages: int) -> bool:
        """Whether ``n_pages`` more pages fit under ``max_pages``."""
        return self.max_pages is None or self.num_pages + n_pages <= self.max_pages

    def put(self, key: object, payload: object, n_pages: int, n_tokens: int) -> None:
        """Park a snapshot; raises :class:`ColdTierError` when full or duplicate."""
        if key in self._entries:
            raise ColdTierError(f"owner {key!r} already has a cold entry")
        if not self.can_accept(n_pages):
            raise ColdTierError(
                f"cold tier full: {self.num_pages} + {n_pages} pages exceeds "
                f"max_cold_pages={self.max_pages}"
            )
        self._entries[key] = ColdEntry(payload=payload, n_pages=n_pages, n_tokens=n_tokens)
        self.total_demotions += 1
        self.peak_pages = max(self.peak_pages, self.num_pages)

    def get(self, key: object) -> ColdEntry:
        """Peek at a parked snapshot (KeyError when absent)."""
        return self._entries[key]

    def pop(self, key: object) -> ColdEntry:
        """Remove and return a snapshot for restore (counts a restore)."""
        entry = self._entries.pop(key)
        self.total_restores += 1
        return entry

    def unpop(self, key: object, entry: ColdEntry) -> None:
        """Reinstall a just-popped snapshot after a failed restore.

        Reverses the accounting of :meth:`pop` (no new demotion is counted),
        so an aborted restore leaves the store's counters exactly as before.
        """
        if key in self._entries:
            raise ColdTierError(f"owner {key!r} already has a cold entry")
        self._entries[key] = entry
        self.total_restores -= 1

    def discard(self, key: object) -> bool:
        """Drop a snapshot without counting a restore (abort/release path)."""
        return self._entries.pop(key, None) is not None


# -- page-image compression ------------------------------------------------------
def compress_page_images(images: list[np.ndarray], bits: int) -> list[np.ndarray]:
    """Round-trip per-layer page images through ``bits``-wide quantization.

    Each entry has shape ``(n_pages, page_size, n_kv_heads, head_dim)``;
    groups run along the trailing (channel) axis, matching the storage
    quantization of :class:`~repro.kvcache.paged_cache.PagedKVCache`.  At
    16 bits this is a bit-exact copy.
    """
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}")
    out = []
    for image in images:
        if image.size == 0 or bits == 16:
            out.append(image.copy())
        else:
            out.append(dequantize(quantize(image, bits)))
    return out
