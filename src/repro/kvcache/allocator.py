"""Physical page allocator for the paged KV cache.

Mirrors the block allocator of PagedAttention (vLLM): a fixed pool of
physical pages handed out from a free list, with explicit out-of-memory
signalling so the scheduler can apply admission control.
"""

from __future__ import annotations

__all__ = ["OutOfPagesError", "PageAllocator"]


class OutOfPagesError(RuntimeError):
    """Raised when the KV cache pool has no free physical pages left."""


class PageAllocator:
    """Free-list allocator over ``num_pages`` physical pages."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive, got {num_pages}")
        self._capacity = num_pages
        # LIFO free list: reusing recently freed pages keeps the working set hot.
        self._free: list[int] = list(range(num_pages - 1, -1, -1))
        self._allocated: set[int] = set()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def num_allocated(self) -> int:
        return len(self._allocated)

    def can_allocate(self, n: int = 1) -> bool:
        """Whether ``n`` pages can be allocated without raising."""
        return self.num_free >= n

    def allocate(self) -> int:
        """Allocate one physical page; raises :class:`OutOfPagesError` if full."""
        if not self._free:
            raise OutOfPagesError(
                f"KV cache exhausted: all {self._capacity} pages are allocated"
            )
        page = self._free.pop()
        self._allocated.add(page)
        return page

    def allocate_many(self, n: int) -> list[int]:
        """Allocate ``n`` pages atomically (all or nothing)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if not self.can_allocate(n):
            raise OutOfPagesError(
                f"cannot allocate {n} pages: only {self.num_free} free of {self._capacity}"
            )
        return [self.allocate() for _ in range(n)]

    def free(self, page: int) -> None:
        """Return a page to the pool."""
        if page not in self._allocated:
            raise ValueError(f"page {page} is not currently allocated")
        self._allocated.remove(page)
        self._free.append(page)

    def free_many(self, pages: list[int]) -> None:
        for page in pages:
            self.free(page)
