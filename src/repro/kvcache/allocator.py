"""Physical page allocator for the paged KV cache.

Mirrors the block allocator of PagedAttention (vLLM): a fixed pool of
physical pages handed out from a free list, with explicit out-of-memory
signalling so the scheduler can apply admission control.

Pages are **reference counted** so that several sequences (and the prefix
index) can share one physical page, RadixAttention-style: ``allocate``
hands out a page with refcount 1, ``incref`` registers an additional
sharer, and ``decref`` drops one reference — the page returns to the free
list only when its last reference is gone.  ``free`` is kept as an alias
for ``decref`` (the single-owner special case), and over-releasing a page
raises exactly like a double free always has.

For cold-tier eviction the allocator also keeps two advisory structures
used by :mod:`repro.kvcache.tiering` eviction policies:

* an **access clock** — ``touch(page)`` stamps a page with a monotonically
  increasing counter and ``last_used(page)`` reads the stamp back, giving
  LRU-by-last-attended ordering without the caches having to keep their own
  bookkeeping;
* **pins** — ``pin(page)`` marks a page as not victimizable (the prefix
  index pins the pages it holds); freeing a pinned page raises, so a pin
  is also a safety net against the pinner's reference being dropped out
  from under it.
"""

from __future__ import annotations

__all__ = ["OutOfPagesError", "PageAllocator"]


class OutOfPagesError(RuntimeError):
    """Raised when the KV cache pool has no free physical pages left."""


class PageAllocator:
    """Ref-counted free-list allocator over ``num_pages`` physical pages."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive, got {num_pages}")
        self._capacity = num_pages
        # LIFO free list: reusing recently freed pages keeps the working set hot.
        self._free: list[int] = list(range(num_pages - 1, -1, -1))
        self._refcounts: dict[int, int] = {}
        # Advisory eviction-policy state (see module docstring).
        self._clock = 0
        self._last_used: dict[int, int] = {}
        self._pinned: set[int] = set()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def num_allocated(self) -> int:
        return len(self._refcounts)

    @property
    def total_refs(self) -> int:
        """Sum of refcounts over all allocated pages (shared pages count once per sharer)."""
        return sum(self._refcounts.values())

    def refcount(self, page: int) -> int:
        """Current reference count of a page (0 when the page is free)."""
        return self._refcounts.get(page, 0)

    def is_shared(self, page: int) -> bool:
        """Whether more than one owner currently references the page."""
        return self._refcounts.get(page, 0) > 1

    def can_allocate(self, n: int = 1) -> bool:
        """Whether ``n`` pages can be allocated without raising."""
        return self.num_free >= n

    # -- eviction-policy support ------------------------------------------------
    def touch(self, page: int) -> int:
        """Stamp an allocated page with the next access-clock tick.

        Returns the stamp.  Touching a free page raises — stale handles must
        not resurrect eviction state.
        """
        if page not in self._refcounts:
            raise ValueError(f"page {page} is not currently allocated")
        self._clock += 1
        self._last_used[page] = self._clock
        return self._clock

    def touch_many(self, pages: list[int]) -> None:
        """Stamp several pages with one shared access-clock tick."""
        self._clock += 1
        for page in pages:
            if page not in self._refcounts:
                raise ValueError(f"page {page} is not currently allocated")
            self._last_used[page] = self._clock

    def last_used(self, page: int) -> int:
        """Access-clock stamp of the page's last touch (0 if never touched)."""
        return self._last_used.get(page, 0)

    def pin(self, page: int) -> None:
        """Mark an allocated page as not victimizable by eviction policies."""
        if page not in self._refcounts:
            raise ValueError(f"page {page} is not currently allocated")
        self._pinned.add(page)

    def unpin(self, page: int) -> None:
        """Clear a page's pin (a no-op when the page is not pinned)."""
        self._pinned.discard(page)

    def is_pinned(self, page: int) -> bool:
        """Whether the page is currently pinned."""
        return page in self._pinned

    @property
    def num_pinned(self) -> int:
        """Number of currently pinned pages."""
        return len(self._pinned)

    def allocate(self) -> int:
        """Allocate one physical page (refcount 1); raises :class:`OutOfPagesError` if full."""
        if not self._free:
            raise OutOfPagesError(
                f"KV cache exhausted: all {self._capacity} pages are allocated"
            )
        page = self._free.pop()
        self._refcounts[page] = 1
        return page

    def allocate_many(self, n: int) -> list[int]:
        """Allocate ``n`` pages atomically (all or nothing)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if not self.can_allocate(n):
            raise OutOfPagesError(
                f"cannot allocate {n} pages: only {self.num_free} free of {self._capacity}"
            )
        return [self.allocate() for _ in range(n)]

    def incref(self, page: int) -> int:
        """Register one more reference to an allocated page; returns the new count."""
        if page not in self._refcounts:
            raise ValueError(f"page {page} is not currently allocated")
        self._refcounts[page] += 1
        return self._refcounts[page]

    def decref(self, page: int) -> int:
        """Drop one reference; frees the page when the count reaches zero.

        Returns the remaining reference count.  Dropping a reference on a
        page that is not allocated (a double free / double decref) raises
        ``ValueError``.
        """
        if page not in self._refcounts:
            raise ValueError(f"page {page} is not currently allocated")
        if self._refcounts[page] == 1 and page in self._pinned:
            raise ValueError(f"page {page} is pinned and cannot be freed")
        self._refcounts[page] -= 1
        remaining = self._refcounts[page]
        if remaining == 0:
            del self._refcounts[page]
            self._last_used.pop(page, None)
            self._free.append(page)
        return remaining

    def free(self, page: int) -> None:
        """Drop one reference to a page (alias of :meth:`decref`)."""
        self.decref(page)

    def free_many(self, pages: list[int]) -> None:
        for page in pages:
            self.free(page)
