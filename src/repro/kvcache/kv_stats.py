"""Per-logical-page key statistics (``K_stats`` in the paper, Fig. 5/7).

For every logical page of the KV cache, LServe keeps the channel-wise minimum
and maximum of the keys it contains.  These two representative vectors are
what the query-centric importance score (Eq. 2) is computed against, so the
page selector never has to touch the full key data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PageKeyStats", "compute_page_key_stats", "merge_key_stats"]


@dataclass
class PageKeyStats:
    """Channel-wise min/max of the keys in one logical page.

    ``kmin`` and ``kmax`` have shape ``(n_kv_heads, head_dim)``; ``n_tokens``
    counts how many key vectors contributed (a trailing page may be partial).
    """

    kmin: np.ndarray
    kmax: np.ndarray
    n_tokens: int

    def update(self, keys: np.ndarray) -> None:
        """Fold additional key vectors ``(n_new, n_kv_heads, head_dim)`` into the stats."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 3:
            raise ValueError(f"keys must be (n, n_kv_heads, head_dim), got {keys.shape}")
        if keys.shape[0] == 0:
            return
        self.kmin = np.minimum(self.kmin, keys.min(axis=0))
        self.kmax = np.maximum(self.kmax, keys.max(axis=0))
        self.n_tokens += keys.shape[0]


def compute_page_key_stats(keys: np.ndarray, logical_page_size: int) -> list[PageKeyStats]:
    """Split ``keys`` (``(n_tokens, n_kv_heads, head_dim)``) into logical pages
    and compute per-page min/max statistics."""
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 3:
        raise ValueError(f"keys must be (n_tokens, n_kv_heads, head_dim), got {keys.shape}")
    if logical_page_size <= 0:
        raise ValueError("logical_page_size must be positive")
    n_tokens = keys.shape[0]
    stats: list[PageKeyStats] = []
    for start in range(0, n_tokens, logical_page_size):
        chunk = keys[start : start + logical_page_size]
        stats.append(
            PageKeyStats(
                kmin=chunk.min(axis=0), kmax=chunk.max(axis=0), n_tokens=chunk.shape[0]
            )
        )
    return stats


def merge_key_stats(stats: list[PageKeyStats]) -> PageKeyStats:
    """Merge several logical pages' stats into one (max-reduction / min-reduction).

    This is how a physical page's representative vectors would be formed if the
    selector worked at physical-page granularity (the "flat"/Quest baseline).
    """
    if not stats:
        raise ValueError("cannot merge an empty list of stats")
    kmin = np.min(np.stack([s.kmin for s in stats]), axis=0)
    kmax = np.max(np.stack([s.kmax for s in stats]), axis=0)
    n_tokens = sum(s.n_tokens for s in stats)
    return PageKeyStats(kmin=kmin, kmax=kmax, n_tokens=n_tokens)
