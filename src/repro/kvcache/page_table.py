"""Per-sequence page table mapping logical block index to physical page id.

The page table is the indirection layer of PagedAttention: a sequence's KV
history is stored in fixed-size physical pages that need not be contiguous,
and the attention kernel follows the table to find each block (paper §2.1,
Fig. 5 "Dense Head Page Table" / "Streaming Head Page Table").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PageTable"]


@dataclass
class PageTable:
    """Page table for one sequence.

    Attributes
    ----------
    page_size:
        Number of tokens per physical page.
    pages:
        Physical page ids in logical order (index ``i`` holds tokens
        ``[i * page_size, (i + 1) * page_size)``).
    num_tokens:
        Number of tokens currently stored.
    """

    page_size: int
    pages: list[int] = field(default_factory=list)
    num_tokens: int = 0

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def last_page_fill(self) -> int:
        """Number of tokens stored in the last (possibly partial) page."""
        if self.num_tokens == 0:
            return 0
        rem = self.num_tokens % self.page_size
        return self.page_size if rem == 0 else rem

    def fork(self) -> "PageTable":
        """An independent table referencing the same physical pages.

        Used by copy-on-write sequence forking: the caller owns the refcount
        bookkeeping (one ``incref`` per referenced page); mutating either
        table's page list afterwards never affects the other.
        """
        return PageTable(
            page_size=self.page_size, pages=list(self.pages), num_tokens=self.num_tokens
        )

    def pages_needed_for(self, n_new_tokens: int) -> int:
        """How many new physical pages appending ``n_new_tokens`` requires."""
        if n_new_tokens < 0:
            raise ValueError("n_new_tokens must be non-negative")
        total = self.num_tokens + n_new_tokens
        needed = (total + self.page_size - 1) // self.page_size
        return max(0, needed - self.num_pages)

    def append_pages(self, new_pages: list[int]) -> None:
        """Register freshly allocated physical pages at the end of the table."""
        self.pages.extend(new_pages)

    def record_tokens(self, n_new_tokens: int) -> None:
        """Account for ``n_new_tokens`` written into the registered pages."""
        if n_new_tokens < 0:
            raise ValueError("n_new_tokens must be non-negative")
        total = self.num_tokens + n_new_tokens
        if total > self.num_pages * self.page_size:
            raise ValueError(
                f"page table has capacity {self.num_pages * self.page_size} tokens "
                f"but {total} were recorded; allocate pages first"
            )
        self.num_tokens = total

    def slot(self, token_index: int) -> tuple[int, int]:
        """Physical (page id, offset) of a logical token index."""
        if not 0 <= token_index < self.num_tokens:
            raise IndexError(
                f"token_index {token_index} out of range [0, {self.num_tokens})"
            )
        return self.pages[token_index // self.page_size], token_index % self.page_size

    def tokens_in_page(self, logical_page_index: int) -> int:
        """Number of valid tokens stored in the given logical page position."""
        if not 0 <= logical_page_index < self.num_pages:
            raise IndexError(f"page index {logical_page_index} out of range")
        if logical_page_index < self.num_pages - 1:
            return self.page_size
        return self.last_page_fill

    def truncate_pages(self, keep_indices: list[int]) -> list[int]:
        """Drop all logical pages not in ``keep_indices`` (used by the
        streaming-head cache to evict non-sink/non-local pages).

        Returns the physical page ids that were released.  ``keep_indices``
        refers to logical positions *before* truncation; the kept pages remain
        in their original relative order and the token count is clamped to the
        kept capacity.
        """
        keep = sorted(set(keep_indices))
        if any(i < 0 or i >= self.num_pages for i in keep):
            raise IndexError("keep index out of range")
        released = [p for i, p in enumerate(self.pages) if i not in set(keep)]
        self.pages = [self.pages[i] for i in keep]
        self.num_tokens = min(self.num_tokens, self.num_pages * self.page_size)
        return released
