"""RadixAttention-style prefix index over token blocks of one physical page.

The index is a trie keyed by *token blocks* (``page_size`` consecutive token
ids): a path from the root spells out a prompt prefix in whole physical
pages.  Each node pins the KV state of its page so a later prompt with the
same prefix can **attach** the matched pages instead of recomputing them
(SGLang's RadixAttention applied to LServe's two-way cache):

* the dense-head physical page id, kept alive with one allocator reference
  owned by the index (sequences that attach take their own references, so
  evicting a node never pulls pages out from under a live sequence);
* the per-layer :class:`~repro.kvcache.kv_stats.PageKeyStats` of the page's
  logical pages, aliased with the page (full pages are immutable);
* the streaming-head K/V of the page's tokens, per layer — the raw material
  from which :meth:`StreamingKVStore.restore
  <repro.kvcache.dual_cache.StreamingKVStore.restore>` rebuilds the
  sink+local store at the match boundary, byte-identically.

Nodes are evicted least-recently-used, leaves first, when the page pool runs
dry (:meth:`PrefixIndex.evict_until`); dropping the index's reference frees
the page only once no sequence references it either.

The index **pins** the pages it holds in the allocator, marking them as not
victimizable by sequence-level eviction policies.  With a cold KV tier
enabled (:mod:`repro.kvcache.tiering`), idle entries *demote* before they
are dropped: eviction parks a node's per-layer page images host-side
(``cold_k``/``cold_v``), unpins and releases the physical page, and keeps
the node in the trie — a later prompt with the same prefix restores the page
(:meth:`PrefixIndex.adopt_restored`) at a modeled transfer cost instead of
recomputing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kvcache.allocator import PageAllocator

__all__ = ["PrefixNode", "PrefixIndex"]


@dataclass
class PrefixNode:
    """One physical page of a registered prefix (see module docstring)."""

    token_block: tuple[int, ...]
    page: int | None
    stats_per_layer: list[list] | None
    stream_k_per_layer: list[np.ndarray] | None
    stream_v_per_layer: list[np.ndarray] | None
    parent: "PrefixNode | None" = None
    children: dict[tuple[int, ...], "PrefixNode"] = field(default_factory=dict)
    last_used: int = 0
    #: Per-layer page images parked host-side while the node is demoted.
    cold_k: list[np.ndarray] | None = None
    cold_v: list[np.ndarray] | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_cold(self) -> bool:
        """Whether the node's dense page currently lives in the cold tier."""
        return self.page is None and self.cold_k is not None


class PrefixIndex:
    """Token-block trie mapping prompt prefixes to shareable KV pages."""

    def __init__(self, page_size: int, allocator: PageAllocator | None = None) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.allocator = allocator
        self._root = PrefixNode(
            token_block=(), page=None, stats_per_layer=None,
            stream_k_per_layer=None, stream_v_per_layer=None,
        )
        self._clock = 0
        self._num_nodes = 0
        self.hit_tokens = 0
        self.miss_tokens = 0
        self.evicted_pages = 0
        self.demoted_pages = 0
        self.restored_pages = 0

    # -- introspection ----------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of registered page nodes."""
        return self._num_nodes

    @property
    def held_pages(self) -> int:
        """Dense physical pages the index currently holds a reference on."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            if node.page is not None:
                count += 1
        return count

    @property
    def cold_nodes(self) -> int:
        """Nodes whose page images are currently parked in the cold tier."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            if node.is_cold:
                count += 1
        return count

    # -- lookup -----------------------------------------------------------------
    def match(self, token_ids: np.ndarray, max_tokens: int | None = None) -> list[PrefixNode]:
        """Longest registered page-chain prefix of ``token_ids``.

        Returns the matched nodes root-outward (possibly empty).  At most
        ``max_tokens`` tokens are matched when given (callers cap the match so
        at least one prompt token is left to compute, and so the boundary
        stays aligned with the prefill tiling).  Matched nodes are touched
        for LRU purposes.
        """
        token_ids = np.asarray(token_ids).ravel()
        limit = token_ids.size if max_tokens is None else min(max_tokens, token_ids.size)
        self._clock += 1
        chain: list[PrefixNode] = []
        node = self._root
        depth = 0
        while (depth + 1) * self.page_size <= limit:
            block = tuple(int(t) for t in token_ids[depth * self.page_size : (depth + 1) * self.page_size])
            child = node.children.get(block)
            if child is None:
                break
            child.last_used = self._clock
            chain.append(child)
            node = child
            depth += 1
        matched = len(chain) * self.page_size
        self.hit_tokens += matched
        self.miss_tokens += int(min(token_ids.size, limit) - matched)
        return chain

    # -- registration -------------------------------------------------------------
    def register(
        self,
        token_ids: np.ndarray,
        pages: list[int | None],
        stats_for_page,
        streaming_for_page,
    ) -> int:
        """Insert the full-page prefix of ``token_ids`` into the trie.

        ``pages[i]`` is the dense physical page id backing page ``i`` (or
        ``None`` when there are no dense heads).  ``stats_for_page(i)`` /
        ``streaming_for_page(i)`` lazily produce a new node's payload —
        per-layer key-stats lists and per-layer ``(k, v)`` streaming history
        arrays (or ``None``) — and are only called for pages not already
        registered.  Newly pinned pages get one allocator reference owned by
        the index.  Returns the number of nodes inserted.
        """
        token_ids = np.asarray(token_ids).ravel()
        n_pages = min(len(pages), token_ids.size // self.page_size)
        self._clock += 1
        node = self._root
        inserted = 0
        for i in range(n_pages):
            block = tuple(int(t) for t in token_ids[i * self.page_size : (i + 1) * self.page_size])
            child = node.children.get(block)
            if child is None:
                stats = stats_for_page(i)
                stream_k, stream_v = streaming_for_page(i)
                page = pages[i]
                if page is not None:
                    if self.allocator is None:
                        raise RuntimeError("an allocator is required to pin dense pages")
                    self.allocator.incref(page)
                    self.allocator.pin(page)
                child = PrefixNode(
                    token_block=block,
                    page=page,
                    stats_per_layer=stats,
                    stream_k_per_layer=stream_k,
                    stream_v_per_layer=stream_v,
                    parent=node,
                )
                node.children[block] = child
                self._num_nodes += 1
                inserted += 1
            child.last_used = self._clock
            node = child
        return inserted

    # -- eviction ----------------------------------------------------------------
    def _drop(self, node: PrefixNode) -> None:
        assert node.parent is not None and not node.children
        del node.parent.children[node.token_block]
        self._num_nodes -= 1
        node.cold_k = node.cold_v = None
        if node.page is not None:
            self.allocator.unpin(node.page)
            self.allocator.decref(node.page)
            self.evicted_pages += 1

    def _demote(self, node: PrefixNode, page_image) -> None:
        """Park a node's page images host-side and release the physical page."""
        assert node.page is not None
        node.cold_k, node.cold_v = page_image(node.page)
        self.allocator.unpin(node.page)
        self.allocator.decref(node.page)
        node.page = None
        self.demoted_pages += 1

    def adopt_restored(self, node: PrefixNode, page: int) -> None:
        """Re-attach a restored physical page to a demoted node.

        The index takes ownership of ``page`` (which must carry the fresh
        refcount-1 reference of
        :meth:`~repro.kvcache.paged_cache.PagedKVCache.install_page_image`)
        and pins it again.
        """
        if not node.is_cold:
            raise ValueError("node is not demoted")
        node.page = page
        node.cold_k = node.cold_v = None
        if self.allocator is not None:
            self.allocator.pin(page)
        self.restored_pages += 1

    def evict_until(self, min_free: int, page_image=None) -> bool:
        """Free pool pages until the allocator has ``min_free`` free.

        With ``page_image`` (a callable ``page -> (k_per_layer,
        v_per_layer)``, typically
        :meth:`~repro.kvcache.paged_cache.PagedKVCache.page_image`) given,
        cold-tier demotion runs first: least-recently-used nodes park their
        page images host-side and release their pages, staying restorable.
        Only if demotion cannot reach the target (or no cold tier is
        configured) are LRU leaves hard-dropped.  Dropping or demoting the
        index's reference only frees a page once no live sequence shares it,
        so eviction keeps retiring nodes until the target is met or the trie
        is exhausted.  Returns whether the target was reached.  A no-op
        (``True``) when the index pins no dense pages.
        """
        if self.allocator is None:
            return True
        if page_image is not None:
            hot = [n for n in self._nodes() if n.page is not None]
            hot.sort(key=lambda n: n.last_used)
            for node in hot:
                if self.allocator.num_free >= min_free:
                    return True
                self._demote(node, page_image)
        while self.allocator.num_free < min_free:
            leaves = self._leaves()
            if not leaves:
                return False
            self._drop(min(leaves, key=lambda n: n.last_used))
        return True

    def _nodes(self) -> list[PrefixNode]:
        nodes = []
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(node.children.values())
        return nodes

    def _leaves(self) -> list[PrefixNode]:
        leaves = []
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children.values())
        return leaves

    def clear(self) -> None:
        """Drop every node (and the index's page references)."""
        while True:
            leaves = self._leaves()
            if not leaves:
                return
            for leaf in leaves:
                self._drop(leaf)
