"""RadixAttention-style prefix index over token blocks of one physical page.

The index is a trie keyed by *token blocks* (``page_size`` consecutive token
ids): a path from the root spells out a prompt prefix in whole physical
pages.  Each node pins the KV state of its page so a later prompt with the
same prefix can **attach** the matched pages instead of recomputing them
(SGLang's RadixAttention applied to LServe's two-way cache):

* the dense-head physical page id, kept alive with one allocator reference
  owned by the index (sequences that attach take their own references, so
  evicting a node never pulls pages out from under a live sequence);
* the per-layer :class:`~repro.kvcache.kv_stats.PageKeyStats` of the page's
  logical pages, aliased with the page (full pages are immutable);
* the streaming-head K/V of the page's tokens, per layer — the raw material
  from which :meth:`StreamingKVStore.restore
  <repro.kvcache.dual_cache.StreamingKVStore.restore>` rebuilds the
  sink+local store at the match boundary, byte-identically.

Nodes are evicted least-recently-used, leaves first, when the page pool runs
dry (:meth:`PrefixIndex.evict_until`); dropping the index's reference frees
the page only once no sequence references it either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kvcache.allocator import PageAllocator

__all__ = ["PrefixNode", "PrefixIndex"]


@dataclass
class PrefixNode:
    """One physical page of a registered prefix (see module docstring)."""

    token_block: tuple[int, ...]
    page: int | None
    stats_per_layer: list[list] | None
    stream_k_per_layer: list[np.ndarray] | None
    stream_v_per_layer: list[np.ndarray] | None
    parent: "PrefixNode | None" = None
    children: dict[tuple[int, ...], "PrefixNode"] = field(default_factory=dict)
    last_used: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class PrefixIndex:
    """Token-block trie mapping prompt prefixes to shareable KV pages."""

    def __init__(self, page_size: int, allocator: PageAllocator | None = None) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.allocator = allocator
        self._root = PrefixNode(
            token_block=(), page=None, stats_per_layer=None,
            stream_k_per_layer=None, stream_v_per_layer=None,
        )
        self._clock = 0
        self._num_nodes = 0
        self.hit_tokens = 0
        self.miss_tokens = 0
        self.evicted_pages = 0

    # -- introspection ----------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of registered page nodes."""
        return self._num_nodes

    @property
    def held_pages(self) -> int:
        """Dense physical pages the index currently holds a reference on."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            if node.page is not None:
                count += 1
        return count

    # -- lookup -----------------------------------------------------------------
    def match(self, token_ids: np.ndarray, max_tokens: int | None = None) -> list[PrefixNode]:
        """Longest registered page-chain prefix of ``token_ids``.

        Returns the matched nodes root-outward (possibly empty).  At most
        ``max_tokens`` tokens are matched when given (callers cap the match so
        at least one prompt token is left to compute, and so the boundary
        stays aligned with the prefill tiling).  Matched nodes are touched
        for LRU purposes.
        """
        token_ids = np.asarray(token_ids).ravel()
        limit = token_ids.size if max_tokens is None else min(max_tokens, token_ids.size)
        self._clock += 1
        chain: list[PrefixNode] = []
        node = self._root
        depth = 0
        while (depth + 1) * self.page_size <= limit:
            block = tuple(int(t) for t in token_ids[depth * self.page_size : (depth + 1) * self.page_size])
            child = node.children.get(block)
            if child is None:
                break
            child.last_used = self._clock
            chain.append(child)
            node = child
            depth += 1
        matched = len(chain) * self.page_size
        self.hit_tokens += matched
        self.miss_tokens += int(min(token_ids.size, limit) - matched)
        return chain

    # -- registration -------------------------------------------------------------
    def register(
        self,
        token_ids: np.ndarray,
        pages: list[int | None],
        stats_for_page,
        streaming_for_page,
    ) -> int:
        """Insert the full-page prefix of ``token_ids`` into the trie.

        ``pages[i]`` is the dense physical page id backing page ``i`` (or
        ``None`` when there are no dense heads).  ``stats_for_page(i)`` /
        ``streaming_for_page(i)`` lazily produce a new node's payload —
        per-layer key-stats lists and per-layer ``(k, v)`` streaming history
        arrays (or ``None``) — and are only called for pages not already
        registered.  Newly pinned pages get one allocator reference owned by
        the index.  Returns the number of nodes inserted.
        """
        token_ids = np.asarray(token_ids).ravel()
        n_pages = min(len(pages), token_ids.size // self.page_size)
        self._clock += 1
        node = self._root
        inserted = 0
        for i in range(n_pages):
            block = tuple(int(t) for t in token_ids[i * self.page_size : (i + 1) * self.page_size])
            child = node.children.get(block)
            if child is None:
                stats = stats_for_page(i)
                stream_k, stream_v = streaming_for_page(i)
                page = pages[i]
                if page is not None:
                    if self.allocator is None:
                        raise RuntimeError("an allocator is required to pin dense pages")
                    self.allocator.incref(page)
                child = PrefixNode(
                    token_block=block,
                    page=page,
                    stats_per_layer=stats,
                    stream_k_per_layer=stream_k,
                    stream_v_per_layer=stream_v,
                    parent=node,
                )
                node.children[block] = child
                self._num_nodes += 1
                inserted += 1
            child.last_used = self._clock
            node = child
        return inserted

    # -- eviction ----------------------------------------------------------------
    def _drop(self, node: PrefixNode) -> None:
        assert node.parent is not None and not node.children
        del node.parent.children[node.token_block]
        self._num_nodes -= 1
        if node.page is not None:
            self.allocator.decref(node.page)
            self.evicted_pages += 1

    def evict_until(self, min_free: int) -> bool:
        """Drop LRU leaves until the allocator has ``min_free`` free pages.

        Dropping the index's reference only frees a page once no live
        sequence shares it, so eviction keeps retiring leaves until the
        target is met or the trie is empty.  Returns whether the target was
        reached.  A no-op (``True``) when the index pins no dense pages.
        """
        if self.allocator is None:
            return True
        while self.allocator.num_free < min_free:
            leaves = self._leaves()
            if not leaves:
                return False
            self._drop(min(leaves, key=lambda n: n.last_used))
        return True

    def _leaves(self) -> list[PrefixNode]:
        leaves = []
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children.values())
        return leaves

    def clear(self) -> None:
        """Drop every node (and the index's page references)."""
        while True:
            leaves = self._leaves()
            if not leaves:
                return
            for leaf in leaves:
                self._drop(leaf)
