"""Paged KV cache with KV quantization and per-logical-page key statistics.

Functional model of the QServe/vLLM KV cache that LServe extends:

* KV history is stored in fixed-size physical pages handed out by a
  :class:`~repro.kvcache.allocator.PageAllocator` and addressed through a
  per-sequence :class:`~repro.kvcache.page_table.PageTable`.
* Keys/values pass through asymmetric KV4/KV8 quantization on write
  (``kv_bits``), so downstream attention sees the quantized values — the
  numerical effect of low-bit KV is preserved.  The *storage* arrays keep the
  dequantized floats for vectorised gathers; the byte footprint of the real
  layout (codes + scales/zeros + key stats) is reported by
  :meth:`PagedKVCache.memory_bytes_model`, which is what the cost model and
  memory experiments consume.
* Channel-wise min/max key statistics are maintained per *logical* page
  (``logical_page_size`` tokens), the granularity used by the hierarchical
  page selector (paper §3.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kvcache.allocator import OutOfPagesError, PageAllocator
from repro.kvcache.kv_stats import PageKeyStats
from repro.kvcache.page_table import PageTable
from repro.kvcache.quantization import SUPPORTED_BITS, dequantize, quantize

__all__ = ["PagedCacheConfig", "PagedKVCache", "PagedSequenceExport"]


@dataclass
class PagedSequenceExport:
    """Bit-exact snapshot of one sequence's paged KV state, for migration.

    Produced by :meth:`PagedKVCache.export_sequence` and consumed by
    :meth:`PagedKVCache.import_sequence` on a *different* cache (typically a
    different replica's pool in a disaggregated cluster).  Page **images**
    are carried, not token histories: stored values are post-quantization
    while per-page key statistics fold the raw pre-quantization keys, so
    replaying tokens on the target would diverge — copying the images is the
    only byte-identical unit of migration.
    """

    page_size: int
    n_kv_heads: int
    head_dim: int
    kv_bits: int
    num_tokens: int
    #: Per-layer appended-token counts (usually identical across layers).
    tokens_per_layer: list[int]
    #: Per-layer page images, shape ``(n_pages, page_size, n_kv_heads, head_dim)``.
    k_pages: list[np.ndarray]
    v_pages: list[np.ndarray]
    #: Per-layer deep-copied logical-page key statistics.
    key_stats_per_layer: list[list[PageKeyStats]]

    @property
    def n_pages(self) -> int:
        """Physical pages the snapshot carries (what a transfer must move)."""
        return int(self.k_pages[0].shape[0]) if self.k_pages else 0


@dataclass(frozen=True)
class PagedCacheConfig:
    """Static configuration of a paged KV cache pool."""

    n_layers: int
    n_kv_heads: int
    head_dim: int
    page_size: int = 64
    num_pages: int = 4096
    kv_bits: int = 16
    logical_page_size: int | None = None

    def __post_init__(self) -> None:
        for name in ("n_layers", "n_kv_heads", "head_dim", "page_size", "num_pages"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.kv_bits not in SUPPORTED_BITS:
            raise ValueError(f"kv_bits must be one of {SUPPORTED_BITS}")
        lps = self.logical_page_size
        if lps is not None:
            if lps <= 0:
                raise ValueError("logical_page_size must be positive")
            if self.page_size % lps != 0:
                raise ValueError(
                    f"page_size ({self.page_size}) must be a multiple of "
                    f"logical_page_size ({lps})"
                )

    @property
    def effective_logical_page_size(self) -> int:
        return self.logical_page_size or self.page_size

    @property
    def logical_pages_per_physical(self) -> int:
        return self.page_size // self.effective_logical_page_size


class PagedKVCache:
    """Multi-sequence paged KV cache (one pool shared by all sequences)."""

    def __init__(self, config: PagedCacheConfig) -> None:
        self.config = config
        self.allocator = PageAllocator(config.num_pages)
        # Per-layer physical storage: (num_pages, page_size, n_kv_heads, head_dim).
        shape = (config.num_pages, config.page_size, config.n_kv_heads, config.head_dim)
        self._k_store = [np.zeros(shape) for _ in range(config.n_layers)]
        self._v_store = [np.zeros(shape) for _ in range(config.n_layers)]
        self._tables: dict[object, PageTable] = {}
        self._tokens: dict[tuple[object, int], int] = {}
        # Per (sequence, layer): key stats per logical page, in order.
        self._key_stats: dict[tuple[object, int], list[PageKeyStats]] = {}

    # -- sequence management -------------------------------------------------
    def add_sequence(self, seq_id: object) -> None:
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id!r} already exists")
        self._tables[seq_id] = PageTable(page_size=self.config.page_size)
        for layer in range(self.config.n_layers):
            self._tokens[(seq_id, layer)] = 0
            self._key_stats[(seq_id, layer)] = []

    def remove_sequence(self, seq_id: object) -> None:
        table = self._table(seq_id)
        self.allocator.free_many(list(table.pages))
        del self._tables[seq_id]
        for layer in range(self.config.n_layers):
            del self._tokens[(seq_id, layer)]
            del self._key_stats[(seq_id, layer)]

    def fork_sequence(self, parent_id: object, child_id: object) -> None:
        """Create ``child_id`` as a copy-on-write fork of ``parent_id``.

        Every physical page of the parent is *referenced* (incref'd), not
        copied; the child's page table and per-layer key-stats lists are
        independent, but full logical pages share their :class:`PageKeyStats`
        objects with the parent (they are immutable once full).  Only the
        partially filled tail stats entry is deep-copied, because either
        sequence may keep folding new keys into it.  The shared tail *page*
        itself is copied lazily, on the first divergent append (see
        :meth:`_copy_tail_page_on_write`).
        """
        ptable = self._table(parent_id)
        if child_id in self._tables:
            raise ValueError(f"sequence {child_id!r} already exists")
        for page in ptable.pages:
            self.allocator.incref(page)
        self._tables[child_id] = ptable.fork()
        lps = self.config.effective_logical_page_size
        for layer in range(self.config.n_layers):
            self._tokens[(child_id, layer)] = self._tokens[(parent_id, layer)]
            stats = list(self._key_stats[(parent_id, layer)])
            if stats and stats[-1].n_tokens < lps:
                tail = stats[-1]
                stats[-1] = PageKeyStats(
                    kmin=tail.kmin.copy(), kmax=tail.kmax.copy(), n_tokens=tail.n_tokens
                )
            self._key_stats[(child_id, layer)] = stats

    def attach_prefix(
        self,
        seq_id: object,
        pages: list[int],
        n_tokens: int,
        stats_per_layer: list[list[PageKeyStats]],
    ) -> None:
        """Create ``seq_id`` with a shared, already-materialised page prefix.

        ``pages`` must cover exactly ``n_tokens`` (full pages only — the
        prefix index shares at physical-page granularity); each page is
        incref'd and the per-layer key stats are aliased, exactly as in
        :meth:`fork_sequence` (full-page stats are immutable).
        """
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id!r} already exists")
        if n_tokens != len(pages) * self.config.page_size:
            raise ValueError(
                f"attach_prefix shares whole pages: {len(pages)} pages cover "
                f"{len(pages) * self.config.page_size} tokens, not {n_tokens}"
            )
        if len(stats_per_layer) != self.config.n_layers:
            raise ValueError("stats_per_layer must have one entry per layer")
        for page in pages:
            self.allocator.incref(page)
        self._tables[seq_id] = PageTable(
            page_size=self.config.page_size, pages=list(pages), num_tokens=n_tokens
        )
        for layer in range(self.config.n_layers):
            self._tokens[(seq_id, layer)] = n_tokens
            self._key_stats[(seq_id, layer)] = list(stats_per_layer[layer])

    def export_sequence(self, seq_id: object) -> PagedSequenceExport:
        """Snapshot a sequence's pages, counts, and key stats for migration.

        The source sequence is left untouched (pair with
        :meth:`remove_sequence` to complete a hand-off).  Page images and key
        statistics are deep-copied, so the snapshot stays valid after the
        source releases its pages.
        """
        table = self._table(seq_id)
        cfg = self.config
        page_ids = np.asarray(table.pages, dtype=np.intp)
        return PagedSequenceExport(
            page_size=cfg.page_size,
            n_kv_heads=cfg.n_kv_heads,
            head_dim=cfg.head_dim,
            kv_bits=cfg.kv_bits,
            num_tokens=table.num_tokens,
            tokens_per_layer=[
                self._tokens[(seq_id, layer)] for layer in range(cfg.n_layers)
            ],
            k_pages=[self._k_store[layer][page_ids].copy() for layer in range(cfg.n_layers)],
            v_pages=[self._v_store[layer][page_ids].copy() for layer in range(cfg.n_layers)],
            key_stats_per_layer=[
                [
                    PageKeyStats(kmin=s.kmin.copy(), kmax=s.kmax.copy(), n_tokens=s.n_tokens)
                    for s in self._key_stats[(seq_id, layer)]
                ]
                for layer in range(cfg.n_layers)
            ],
        )

    def import_sequence(self, seq_id: object, export: PagedSequenceExport) -> list[int]:
        """Install an exported sequence into this pool on freshly attached pages.

        Allocates ``export.n_pages`` pages (each enters at refcount 1 — the
        target-side *attach* of the migration), bit-copies the page images,
        and rebuilds the page table, token counts, and key statistics.
        Raises ``ValueError`` when ``seq_id`` already exists or the snapshot's
        geometry does not match this pool, and
        :class:`~repro.kvcache.allocator.OutOfPagesError` — before any
        mutation — when the pool cannot hold the pages.  Returns the
        allocated page ids.
        """
        cfg = self.config
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id!r} already exists")
        if (
            export.page_size != cfg.page_size
            or export.n_kv_heads != cfg.n_kv_heads
            or export.head_dim != cfg.head_dim
            or export.kv_bits != cfg.kv_bits
            or len(export.k_pages) != cfg.n_layers
        ):
            raise ValueError(
                "exported sequence geometry (page_size/heads/head_dim/kv_bits/"
                "layers) does not match the target cache"
            )
        n_pages = export.n_pages
        if not self.allocator.can_allocate(n_pages):
            raise OutOfPagesError(
                f"cannot import sequence {seq_id!r}: needs {n_pages} pages but "
                f"only {self.allocator.num_free} free of {self.allocator.capacity}"
            )
        pages = self.allocator.allocate_many(n_pages) if n_pages else []
        page_ids = np.asarray(pages, dtype=np.intp)
        for layer in range(cfg.n_layers):
            if n_pages:
                self._k_store[layer][page_ids] = export.k_pages[layer]
                self._v_store[layer][page_ids] = export.v_pages[layer]
        self._tables[seq_id] = PageTable(
            page_size=cfg.page_size, pages=list(pages), num_tokens=export.num_tokens
        )
        for layer in range(cfg.n_layers):
            self._tokens[(seq_id, layer)] = export.tokens_per_layer[layer]
            self._key_stats[(seq_id, layer)] = [
                PageKeyStats(kmin=s.kmin.copy(), kmax=s.kmax.copy(), n_tokens=s.n_tokens)
                for s in export.key_stats_per_layer[layer]
            ]
        return list(pages)

    def has_sequence(self, seq_id: object) -> bool:
        return seq_id in self._tables

    def sequences(self) -> list[object]:
        return list(self._tables)

    def _table(self, seq_id: object) -> PageTable:
        if seq_id not in self._tables:
            raise KeyError(f"unknown sequence {seq_id!r}")
        return self._tables[seq_id]

    def page_table(self, seq_id: object) -> PageTable:
        """The sequence's page table (read-mostly; mutate via cache methods)."""
        return self._table(seq_id)

    def seq_len(self, seq_id: object, layer: int = 0) -> int:
        self._table(seq_id)
        return self._tokens[(seq_id, layer)]

    # -- writes ----------------------------------------------------------------
    def _copy_tail_page_on_write(self, table: PageTable, page_pos: int) -> None:
        """Give the sequence a private copy of a shared page before writing into it.

        Copies the page's K/V storage across *all* layers (layers share the
        page table, so one copy serves every layer's upcoming write) and drops
        one reference on the shared original — the sibling that still
        references it is unaffected.
        """
        old_page = table.pages[page_pos]
        new_page = self.allocator.allocate()
        for layer in range(self.config.n_layers):
            self._k_store[layer][new_page] = self._k_store[layer][old_page]
            self._v_store[layer][new_page] = self._v_store[layer][old_page]
        self.allocator.decref(old_page)
        table.pages[page_pos] = new_page

    def _tail_needs_cow(self, table: PageTable, start: int) -> bool:
        """Whether a write starting at token ``start`` lands in a shared page."""
        page_pos = start // self.config.page_size
        return page_pos < table.num_pages and self.allocator.is_shared(
            table.pages[page_pos]
        )

    def pages_required(self, seq_id: object, n_new_tokens: int) -> int:
        """Physical pages an ``n_new_tokens`` append must be able to allocate.

        Counts fresh pages for capacity growth plus one extra page when the
        first write would land in a *shared* (copy-on-write) tail page.
        """
        table = self._table(seq_id)
        if n_new_tokens <= 0:
            return 0
        cow = 1 if self._tail_needs_cow(table, table.num_tokens) else 0
        return cow + table.pages_needed_for(n_new_tokens)

    def prepare_append(self, seq_id: object, n_new_tokens: int) -> None:
        """Reserve everything an ``n_new_tokens`` append needs, atomically.

        Performs the copy-on-write of a shared tail page and allocates all
        fresh pages up front — or raises :class:`OutOfPagesError` *before
        mutating anything*, so a failed reservation leaves the cache exactly
        as it was.  After a successful reservation the subsequent
        :meth:`append` calls (one per layer) can no longer run out of pages
        mid-write, which is what keeps a batched decode iteration atomic.
        """
        table = self._table(seq_id)
        if n_new_tokens <= 0:
            return
        required = self.pages_required(seq_id, n_new_tokens)
        if not self.allocator.can_allocate(required):
            raise OutOfPagesError(
                f"cannot reserve {required} pages for sequence {seq_id!r}: "
                f"only {self.allocator.num_free} free of {self.allocator.capacity}"
            )
        if self._tail_needs_cow(table, table.num_tokens):
            self._copy_tail_page_on_write(table, table.num_tokens // self.config.page_size)
        needed = table.pages_needed_for(n_new_tokens)
        if needed:
            table.append_pages(self.allocator.allocate_many(needed))

    def append(self, seq_id: object, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append new tokens' keys/values for one layer.

        ``k`` and ``v`` have shape ``(n_new, n_kv_heads, head_dim)``.  Physical
        pages are allocated on demand and shared by all layers of the sequence.
        """
        cfg = self.config
        table = self._table(seq_id)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        expected = (k.shape[0], cfg.n_kv_heads, cfg.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(
                f"k/v must have shape (n_new, {cfg.n_kv_heads}, {cfg.head_dim}); "
                f"got {k.shape} and {v.shape}"
            )
        n_new = k.shape[0]
        if n_new == 0:
            return
        if not 0 <= layer < cfg.n_layers:
            raise IndexError(f"layer {layer} out of range")

        start = self._tokens[(seq_id, layer)]
        end = start + n_new
        # Copy-on-write: the first layer to write into a shared (forked) tail
        # page copies it for all layers; later layers then see a private page.
        if self._tail_needs_cow(table, start):
            self._copy_tail_page_on_write(table, start // cfg.page_size)
        # Grow the shared page table if this layer outruns its capacity.
        capacity = table.num_pages * cfg.page_size
        if end > capacity:
            pages_needed = (end - capacity + cfg.page_size - 1) // cfg.page_size
            table.append_pages(self.allocator.allocate_many(pages_needed))
        if end > table.num_tokens:
            table.num_tokens = end

        # Simulate low-bit storage: quantize then dequantize before writing.
        if cfg.kv_bits < 16:
            k_stored = dequantize(quantize(k, cfg.kv_bits))
            v_stored = dequantize(quantize(v, cfg.kv_bits))
        else:
            k_stored, v_stored = k, v

        for offset in range(n_new):
            token_index = start + offset
            page = table.pages[token_index // cfg.page_size]
            slot = token_index % cfg.page_size
            self._k_store[layer][page, slot] = k_stored[offset]
            self._v_store[layer][page, slot] = v_stored[offset]

        self._tokens[(seq_id, layer)] = end
        self._update_key_stats(seq_id, layer, start, k)

    def append_token_batch(
        self, seq_ids: list[object], layer: int, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Append one token per sequence for one layer, batched across sequences.

        ``k``/``v`` have shape ``(batch, n_kv_heads, head_dim)`` — row ``i`` is
        sequence ``seq_ids[i]``'s new token.  Quantization groups are per
        ``(token, head)`` channel row (``group_axis=-1``), so quantizing the
        whole batch at once is bit-identical to quantizing each sequence's
        token separately; the page-store write is a single fancy-indexed
        scatter.  Copy-on-write and page growth follow the same per-sequence
        rules as :meth:`append` (callers normally reserve via
        :meth:`prepare_append` first, making those branches no-ops).
        """
        cfg = self.config
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        expected = (len(seq_ids), cfg.n_kv_heads, cfg.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(
                f"k/v must have shape {expected}; got {k.shape} and {v.shape}"
            )
        if not 0 <= layer < cfg.n_layers:
            raise IndexError(f"layer {layer} out of range")
        if not seq_ids:
            return

        pages = np.empty(len(seq_ids), dtype=np.intp)
        slots = np.empty(len(seq_ids), dtype=np.intp)
        starts = []
        for i, seq_id in enumerate(seq_ids):
            table = self._table(seq_id)
            start = self._tokens[(seq_id, layer)]
            if self._tail_needs_cow(table, start):
                self._copy_tail_page_on_write(table, start // cfg.page_size)
            if start + 1 > table.num_pages * cfg.page_size:
                table.append_pages(self.allocator.allocate_many(1))
            if start + 1 > table.num_tokens:
                table.num_tokens = start + 1
            pages[i] = table.pages[start // cfg.page_size]
            slots[i] = start % cfg.page_size
            starts.append(start)

        if cfg.kv_bits < 16:
            k_stored = dequantize(quantize(k, cfg.kv_bits))
            v_stored = dequantize(quantize(v, cfg.kv_bits))
        else:
            k_stored, v_stored = k, v
        self._k_store[layer][pages, slots] = k_stored
        self._v_store[layer][pages, slots] = v_stored

        for i, seq_id in enumerate(seq_ids):
            self._tokens[(seq_id, layer)] = starts[i] + 1
            self._update_key_stats(seq_id, layer, starts[i], k[i : i + 1])

    def _update_key_stats(
        self, seq_id: object, layer: int, start: int, new_keys: np.ndarray
    ) -> None:
        lps = self.config.effective_logical_page_size
        stats = self._key_stats[(seq_id, layer)]
        n_new = new_keys.shape[0]
        offset = 0
        while offset < n_new:
            token_index = start + offset
            page_idx = token_index // lps
            within = token_index % lps
            take = min(lps - within, n_new - offset)
            chunk = new_keys[offset : offset + take]
            if page_idx == len(stats):
                stats.append(
                    PageKeyStats(
                        kmin=chunk.min(axis=0), kmax=chunk.max(axis=0), n_tokens=take
                    )
                )
            else:
                stats[page_idx].update(chunk)
            offset += take

    # -- reads -----------------------------------------------------------------
    def get(self, seq_id: object, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Return all cached keys/values of shape ``(n_tokens, n_kv_heads, head_dim)``."""
        table = self._table(seq_id)
        n_tokens = self._tokens[(seq_id, layer)]
        if table.pages:
            self.allocator.touch_many(table.pages)
        return self._gather_token_range(table, layer, n_tokens)

    def _gather_token_range(
        self, table: PageTable, layer: int, n_tokens: int
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        if n_tokens == 0:
            empty = np.zeros((0, cfg.n_kv_heads, cfg.head_dim))
            return empty, empty.copy()
        n_pages = (n_tokens + cfg.page_size - 1) // cfg.page_size
        page_ids = np.asarray(table.pages[:n_pages], dtype=np.intp)
        k = self._k_store[layer][page_ids].reshape(-1, cfg.n_kv_heads, cfg.head_dim)
        v = self._v_store[layer][page_ids].reshape(-1, cfg.n_kv_heads, cfg.head_dim)
        return k[:n_tokens], v[:n_tokens]

    def gather_pages(
        self, seq_id: object, layer: int, page_positions: list[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather the tokens of the selected *logical physical-page positions*.

        ``page_positions`` index into the sequence's page table (position 0 is
        the oldest page).  Returns ``(k, v, token_positions)`` where
        ``token_positions`` are the original token indices of the gathered
        tokens — this is the "shorter page table" handed to the decode
        attention kernel (paper §3.2).
        """
        cfg = self.config
        table = self._table(seq_id)
        n_tokens = self._tokens[(seq_id, layer)]
        positions = np.asarray(sorted(set(int(p) for p in np.asarray(page_positions).ravel())))
        if positions.size and (positions.min() < 0 or positions.max() >= table.num_pages):
            raise IndexError("page position out of range")
        if positions.size:
            self.allocator.touch_many([table.pages[pos] for pos in positions])
        ks, vs, toks = [], [], []
        for pos in positions:
            page = table.pages[pos]
            start_tok = pos * cfg.page_size
            fill = min(cfg.page_size, n_tokens - start_tok)
            if fill <= 0:
                continue
            ks.append(self._k_store[layer][page, :fill])
            vs.append(self._v_store[layer][page, :fill])
            toks.append(np.arange(start_tok, start_tok + fill))
        if not ks:
            empty = np.zeros((0, cfg.n_kv_heads, cfg.head_dim))
            return empty, empty.copy(), np.zeros(0, dtype=np.int64)
        return np.concatenate(ks), np.concatenate(vs), np.concatenate(toks)

    def selected_token_count(
        self,
        seq_id: object,
        layer: int,
        pages_per_head: list[np.ndarray] | np.ndarray,
    ) -> tuple[int, int] | None:
        """Shape signature ``(n_tokens, n_pages)`` of a uniform page selection.

        ``pages_per_head`` is either the per-head list of a
        :class:`~repro.core.page_selector.PageSelection` or its prestacked
        ``(n_kv_heads, n_selected)`` matrix.  Returns ``None`` when the
        selection is ragged (heads select different page counts or gather
        different token totals) or references an empty page — callers then
        fall back to per-head :meth:`gather_pages`.  In the decode path the
        uniform shape always holds: every head selects ``min(n_pages,
        budget)`` pages and the partially filled tail page is always among
        them.  The signature is what batched decode groups sequences by
        before :meth:`gather_selected_batch`.
        """
        cfg = self.config
        table = self._table(seq_id)
        n_tokens = self._tokens[(seq_id, layer)]
        if isinstance(pages_per_head, np.ndarray) and pages_per_head.ndim == 2:
            pos = pages_per_head
        else:
            if len(pages_per_head) != cfg.n_kv_heads or not pages_per_head:
                return None
            n_sel = len(pages_per_head[0])
            if n_sel == 0 or any(len(p) != n_sel for p in pages_per_head):
                return None
            pos = np.asarray(np.stack(pages_per_head), dtype=np.int64)  # (H, P)
        if pos.shape[0] != cfg.n_kv_heads or pos.shape[1] == 0:
            return None
        if pos.min() < 0 or pos.max() >= table.num_pages:
            raise IndexError("page position out of range")
        fills = np.minimum(cfg.page_size, n_tokens - pos * cfg.page_size)  # (H, P)
        if fills.min() <= 0:
            return None
        per_head = fills.sum(axis=1)
        n_gathered = int(per_head[0])
        if not np.all(per_head == n_gathered):
            return None
        return n_gathered, int(pos.shape[1])

    def gather_selected_batch(
        self,
        seq_ids: list[object],
        layer: int,
        selections: list[list[np.ndarray] | np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather every sequence's per-head selected pages in one indexed read.

        ``selections[i]`` is sequence ``i``'s ``pages_per_kv_head`` list (or
        its prestacked ``(n_kv_heads, n_selected)`` matrix); all sequences
        must share the same ``(n_tokens, n_pages)`` selection signature
        (callers group by :meth:`selected_token_count` first).  Returns
        head-major ``(k, v)`` of shape ``(batch, n_kv_heads, n_tokens,
        head_dim)``.  The gather is pure indexing, so each sequence's slice
        is byte-identical to gathering it alone.
        """
        cfg = self.config
        # (G, H, P) page positions and per-sequence page-id/token-count rows.
        pos = np.asarray(
            np.stack(
                [
                    sel
                    if isinstance(sel, np.ndarray) and sel.ndim == 2
                    else np.stack(sel)
                    for sel in selections
                ]
            ),
            dtype=np.int64,
        )
        page_ids = np.stack(
            [
                np.asarray(self._table(seq_id).pages, dtype=np.intp)[pos[i]]
                for i, seq_id in enumerate(seq_ids)
            ]
        )
        n_tokens = np.asarray(
            [self._tokens[(seq_id, layer)] for seq_id in seq_ids], dtype=np.int64
        )
        fills = np.minimum(cfg.page_size, n_tokens[:, None, None] - pos * cfg.page_size)
        self.allocator.touch_many(np.unique(page_ids).tolist())

        # Per-token (page, slot) index arrays: repeat each page id by its fill
        # and lay consecutive slot aranges under them.
        flat_fills = fills.ravel()
        batch, n_heads = pos.shape[0], pos.shape[1]
        n_gathered = int(fills[0, 0].sum())
        token_pages = np.repeat(page_ids.ravel(), flat_fills).reshape(
            batch, n_heads, n_gathered
        )
        ends = np.cumsum(flat_fills)
        token_slots = (
            np.arange(ends[-1]) - np.repeat(ends - flat_fills, flat_fills)
        ).reshape(batch, n_heads, n_gathered)
        head_idx = np.arange(n_heads, dtype=np.intp)[None, :, None]
        k = self._k_store[layer][token_pages, token_slots, head_idx]
        v = self._v_store[layer][token_pages, token_slots, head_idx]
        return k, v

    def gather_selected(
        self,
        seq_id: object,
        layer: int,
        pages_per_head: list[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Single-sequence :meth:`gather_selected_batch` (``None`` when ragged).

        Returns head-major ``(k, v)`` of shape ``(n_kv_heads, n_tokens,
        head_dim)``.
        """
        if self.selected_token_count(seq_id, layer, pages_per_head) is None:
            return None
        k, v = self.gather_selected_batch([seq_id], layer, [pages_per_head])
        return k[0], v[0]

    def key_stats(self, seq_id: object, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-logical-page key statistics as stacked arrays.

        Returns ``(kmin, kmax)`` with shape
        ``(n_logical_pages, n_kv_heads, head_dim)``.
        """
        stats = self._key_stats[(seq_id, layer)]
        cfg = self.config
        if not stats:
            empty = np.zeros((0, cfg.n_kv_heads, cfg.head_dim))
            return empty, empty.copy()
        kmin = np.stack([s.kmin for s in stats])
        kmax = np.stack([s.kmax for s in stats])
        return kmin, kmax

    def num_logical_pages(self, seq_id: object, layer: int = 0) -> int:
        return len(self._key_stats[(seq_id, layer)])

    def key_stats_objects(self, seq_id: object, layer: int) -> list[PageKeyStats]:
        """The live per-logical-page stats list (shared with the cache).

        The prefix index aliases slices of this list when registering full
        pages; full-page entries are immutable, so aliasing is safe.
        """
        self._table(seq_id)
        return self._key_stats[(seq_id, layer)]

    # -- tiering support ---------------------------------------------------------
    def sequence_pages(self, seq_id: object) -> list[int]:
        """The sequence's physical page ids, in table order (a private copy).

        Feeds the :class:`~repro.kvcache.tiering.EvictionPolicy` owners
        mapping; raises ``KeyError`` for an unknown sequence.
        """
        return list(self._table(seq_id).pages)

    def last_attended(self, seq_id: object) -> int:
        """Newest allocator access-clock stamp over the sequence's pages.

        The LRU eviction policy uses this as the sequence's recency: one
        recently attended page keeps the whole sequence hot.  0 for a
        sequence whose pages were never read.
        """
        table = self._table(seq_id)
        return max((self.allocator.last_used(p) for p in table.pages), default=0)

    def page_image(self, page: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Deep-copied per-layer ``(k, v)`` images of one physical page.

        The raw material of a prefix-index cold demotion: the caller parks
        the images host-side, drops its page reference, and later reinstalls
        them with :meth:`install_page_image`.
        """
        if self.allocator.refcount(page) == 0:
            raise ValueError(f"page {page} is not currently allocated")
        k = [self._k_store[layer][page].copy() for layer in range(self.config.n_layers)]
        v = [self._v_store[layer][page].copy() for layer in range(self.config.n_layers)]
        return k, v

    def install_page_image(
        self, k_per_layer: list[np.ndarray], v_per_layer: list[np.ndarray]
    ) -> int:
        """Allocate a fresh page (refcount 1) and bit-copy images into it.

        The restore half of a prefix-index demotion; raises
        :class:`OutOfPagesError` when the pool is full.
        """
        cfg = self.config
        if len(k_per_layer) != cfg.n_layers or len(v_per_layer) != cfg.n_layers:
            raise ValueError("page images must have one entry per layer")
        page = self.allocator.allocate()
        for layer in range(cfg.n_layers):
            self._k_store[layer][page] = k_per_layer[layer]
            self._v_store[layer][page] = v_per_layer[layer]
        return page

    # -- accounting --------------------------------------------------------------
    def memory_bytes_model(self, seq_id: object | None = None) -> float:
        """Modelled KV memory footprint in bytes.

        Counts, per allocated page and layer: quantized K and V codes, their
        fp16 scales/zero-points (for ``kv_bits < 16``), and the fp16 key-stat
        vectors attached to each logical page.
        """
        cfg = self.config
        if seq_id is None:
            # Every allocated page counts once: shared (forked / attached)
            # pages are physical storage once regardless of how many
            # sequences reference them, and pages pinned only by the prefix
            # index still occupy the pool even though no table lists them.
            pages = self.allocator.num_allocated
        else:
            pages = self._table(seq_id).num_pages
        elems_per_page = cfg.page_size * cfg.n_kv_heads * cfg.head_dim
        if cfg.kv_bits == 16:
            kv_bytes = 2 * elems_per_page * 2.0
        else:
            kv_bytes = 2 * (
                elems_per_page * cfg.kv_bits / 8.0
                + cfg.page_size * cfg.n_kv_heads * 2 * 2.0  # scale + zero, fp16
            )
        stats_bytes = (
            cfg.logical_pages_per_physical * cfg.n_kv_heads * cfg.head_dim * 2 * 2.0
        )
        return pages * cfg.n_layers * (kv_bytes + stats_bytes)
