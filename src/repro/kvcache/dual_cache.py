"""Two-way paged KV cache: separate storage for dense and streaming heads.

LServe keeps two paging systems (paper Fig. 5): dense (retrieval) heads keep
the full KV history plus key statistics for page selection, while streaming
heads only ever need the attention-sink tokens and a sliding window of recent
tokens, so their cache is a constant-size buffer regardless of context length.
Head classification happens at KV-head granularity (a whole GQA group is
either dense or streaming), which is how DuoAttention assigns heads for GQA
models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kvcache.paged_cache import PagedCacheConfig, PagedKVCache, PagedSequenceExport

__all__ = ["StreamingKVStore", "DualPagedKVCache", "DualSequenceExport"]


@dataclass
class DualSequenceExport:
    """Snapshot of one sequence across both stores, for cross-pool migration.

    Carries the dense pool's page images (see
    :class:`~repro.kvcache.paged_cache.PagedSequenceExport`), independent
    clones of the per-layer streaming stores, and — when the source retained
    streaming history for prefix sharing — the retained stream log, so the
    target can keep serving prefix registrations.
    """

    n_tokens: int
    dense: PagedSequenceExport | None
    #: layer -> cloned constant-size streaming store.
    streaming: dict[int, StreamingKVStore]
    #: layer -> retained (k, v) chunk list; ``None`` when retention was off.
    stream_log: dict[int, list[tuple[np.ndarray, np.ndarray]]] | None

    @property
    def n_pages(self) -> int:
        """Dense physical pages the migration must move."""
        return self.dense.n_pages if self.dense is not None else 0


@dataclass
class StreamingKVStore:
    """Constant-memory KV store for streaming heads: sink tokens + local window.

    Keeps the first ``sink_tokens`` tokens and a local window of the most
    recent tokens (with their original positions), independent of context
    length.  With ``eviction_granularity == 1`` the local window is exactly the
    last ``local_tokens`` tokens (StreamingLLM semantics); with a granularity
    equal to the KV page size, eviction happens whole pages at a time, matching
    LServe's page-granular streaming heads ("index table only containing the
    sink and local pages", §3.6) — the window then spans from the start of the
    oldest retained local page to the current token.
    """

    n_kv_heads: int
    head_dim: int
    sink_tokens: int
    local_tokens: int
    eviction_granularity: int = 1
    _total_tokens: int = 0

    def __post_init__(self) -> None:
        if self.sink_tokens < 0 or self.local_tokens < 1:
            raise ValueError("sink_tokens must be >= 0 and local_tokens >= 1")
        if self.eviction_granularity < 1:
            raise ValueError("eviction_granularity must be >= 1")
        # Preallocated buffers: the sink prefix plus a position-indexed ring
        # for the local window.  The retained local range always spans at most
        # ``local_blocks * granularity`` consecutive positions, so indexing
        # the ring by ``position % capacity`` is collision-free and eviction
        # is implicit (dropped positions simply stop being read).
        shape_tail = (self.n_kv_heads, self.head_dim)
        self._sink_k = np.zeros((self.sink_tokens, *shape_tail))
        self._sink_v = np.zeros((self.sink_tokens, *shape_tail))
        cap = self.local_blocks * self.eviction_granularity
        self._local_k = np.zeros((cap, *shape_tail))
        self._local_v = np.zeros((cap, *shape_tail))

    @property
    def local_blocks(self) -> int:
        """Local window size in eviction-granularity blocks."""
        return -(-self.local_tokens // self.eviction_granularity)

    def _local_window_start(self, position: int) -> int:
        """Oldest local position retained once ``position`` has been appended."""
        g = self.eviction_granularity
        return (position // g - self.local_blocks + 1) * g

    def _local_from(self) -> int:
        """First retained local position (== total when no local tokens yet)."""
        total = self._total_tokens
        if total <= self.sink_tokens:
            return total
        return max(self.sink_tokens, self._local_window_start(total - 1))

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new tokens ``(n_new, n_kv_heads, head_dim)``."""
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        expected_tail = (self.n_kv_heads, self.head_dim)
        if k.ndim != 3 or k.shape[1:] != expected_tail or v.shape != k.shape:
            raise ValueError(f"bad streaming KV shape {k.shape} / {v.shape}")
        n_new = k.shape[0]
        if n_new == 0:
            return
        start = self._total_tokens
        total = start + n_new
        if start < self.sink_tokens:
            m = min(self.sink_tokens, total) - start
            self._sink_k[start : start + m] = k[:m]
            self._sink_v[start : start + m] = v[:m]
        self._total_tokens = total
        # Only the positions still inside the final window need writing.
        lo = max(start, self._local_from())
        if lo < total:
            pos = np.arange(lo, total)
            ring = pos % self._local_k.shape[0]
            self._local_k[ring] = k[pos - start]
            self._local_v[ring] = v[pos - start]

    @property
    def total_tokens(self) -> int:
        """Number of tokens ever appended (context length seen so far)."""
        return self._total_tokens

    @property
    def stored_tokens(self) -> int:
        """Number of tokens actually held (bounded by sink + local)."""
        total = self._total_tokens
        return min(self.sink_tokens, total) + (total - self._local_from())

    def clone(self) -> "StreamingKVStore":
        """An independent copy (used when forking a sequence)."""
        copy = StreamingKVStore(
            n_kv_heads=self.n_kv_heads,
            head_dim=self.head_dim,
            sink_tokens=self.sink_tokens,
            local_tokens=self.local_tokens,
            eviction_granularity=self.eviction_granularity,
        )
        copy._sink_k = self._sink_k.copy()
        copy._sink_v = self._sink_v.copy()
        copy._local_k = self._local_k.copy()
        copy._local_v = self._local_v.copy()
        copy._total_tokens = self._total_tokens
        return copy

    @classmethod
    def restore(
        cls,
        n_kv_heads: int,
        head_dim: int,
        sink_tokens: int,
        local_tokens: int,
        eviction_granularity: int,
        k_history: np.ndarray,
        v_history: np.ndarray,
        total_tokens: int,
    ) -> "StreamingKVStore":
        """Rebuild the store state after ``total_tokens`` appends, exactly.

        ``k_history``/``v_history`` cover positions ``[0, total_tokens)``
        (``(total_tokens, n_kv_heads, head_dim)``).  Because the local-window
        start is monotone in the append position, the surviving entries after
        an incremental run are exactly the sink positions plus the positions
        at or past the final window start — so direct reconstruction is
        byte-identical to replaying every append.
        """
        store = cls(
            n_kv_heads=n_kv_heads,
            head_dim=head_dim,
            sink_tokens=sink_tokens,
            local_tokens=local_tokens,
            eviction_granularity=eviction_granularity,
        )
        if total_tokens == 0:
            return store
        if k_history.shape[0] < total_tokens or v_history.shape[0] < total_tokens:
            raise ValueError(
                f"history covers {k_history.shape[0]} tokens; need {total_tokens}"
            )
        store.append(
            np.asarray(k_history[:total_tokens], dtype=np.float64),
            np.asarray(v_history[:total_tokens], dtype=np.float64),
        )
        return store

    def read_into(self, k_out: np.ndarray, v_out: np.ndarray) -> None:
        """Copy the stored tokens, in position order, into caller buffers.

        ``k_out``/``v_out`` are ``(stored_tokens, n_kv_heads, head_dim)`` —
        the batched decode path fills one row of a preallocated group stack
        per sequence, skipping the intermediate copies :meth:`get` makes.
        """
        total = self._total_tokens
        n_sink = min(self.sink_tokens, total)
        k_out[:n_sink] = self._sink_k[:n_sink]
        v_out[:n_sink] = self._sink_v[:n_sink]
        lo = self._local_from()
        if lo < total:
            cap = self._local_k.shape[0]
            r0 = lo % cap
            first = min(cap - r0, total - lo)
            k_out[n_sink : n_sink + first] = self._local_k[r0 : r0 + first]
            v_out[n_sink : n_sink + first] = self._local_v[r0 : r0 + first]
            wrap = (total - lo) - first
            if wrap:
                k_out[n_sink + first :] = self._local_k[:wrap]
                v_out[n_sink + first :] = self._local_v[:wrap]

    def get(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return stored ``(k, v, positions)`` in position order."""
        stored = self.stored_tokens
        if stored == 0:
            empty = np.zeros((0, self.n_kv_heads, self.head_dim))
            return empty, empty.copy(), np.zeros(0, dtype=np.int64)
        k = np.empty((stored, self.n_kv_heads, self.head_dim))
        v = np.empty((stored, self.n_kv_heads, self.head_dim))
        self.read_into(k, v)
        n_sink = min(self.sink_tokens, self._total_tokens)
        positions = np.concatenate(
            [np.arange(n_sink), np.arange(self._local_from(), self._total_tokens)]
        )
        return k, v, positions.astype(np.int64)

    def memory_bytes_model(self, bytes_per_element: float = 2.0) -> float:
        capacity = self.sink_tokens + self.local_blocks * self.eviction_granularity
        return 2.0 * capacity * self.n_kv_heads * self.head_dim * bytes_per_element


class DualPagedKVCache:
    """Two-way KV cache routing KV heads to a dense or a streaming store.

    Parameters
    ----------
    config:
        Paged-cache configuration.  ``n_kv_heads`` is the *total* number of KV
        heads in the model; the dense pool is created for the dense subset.
    streaming_head_mask:
        Boolean array over KV heads; ``True`` marks a streaming head.
    sink_tokens, local_tokens:
        Λ-mask geometry used by the streaming store.
    """

    def __init__(
        self,
        config: PagedCacheConfig,
        streaming_head_mask: np.ndarray,
        sink_tokens: int,
        local_tokens: int,
        retain_streaming_pages: bool = False,
    ) -> None:
        mask = np.asarray(streaming_head_mask, dtype=bool)
        if mask.shape != (config.n_kv_heads,):
            raise ValueError(
                f"streaming_head_mask must have shape ({config.n_kv_heads},), got {mask.shape}"
            )
        self.config = config
        self.streaming_head_mask = mask
        self.dense_head_indices = np.flatnonzero(~mask)
        self.streaming_head_indices = np.flatnonzero(mask)
        self.sink_tokens = sink_tokens
        self.local_tokens = local_tokens

        self.dense_cache: PagedKVCache | None = None
        if self.dense_head_indices.size:
            dense_cfg = PagedCacheConfig(
                n_layers=config.n_layers,
                n_kv_heads=int(self.dense_head_indices.size),
                head_dim=config.head_dim,
                page_size=config.page_size,
                num_pages=config.num_pages,
                kv_bits=config.kv_bits,
                logical_page_size=config.logical_page_size,
            )
            self.dense_cache = PagedKVCache(dense_cfg)
        # (seq_id, layer) -> StreamingKVStore
        self._streaming: dict[tuple[object, int], StreamingKVStore] = {}
        self._seq_ids: set[object] = set()
        # Optional per-sequence log of every streaming-head K/V ever appended
        # (list of (k, v) chunks per (seq_id, layer)).  The prefix index needs
        # it: attaching a shared prefix must rebuild the streaming store at an
        # arbitrary page boundary, including tokens the live store already
        # evicted.  Off by default — it trades the streaming heads' constant
        # memory for shareability, so only prefix-caching engines enable it.
        self.retain_streaming_pages = retain_streaming_pages
        self._stream_log: dict[tuple[object, int], list[tuple[np.ndarray, np.ndarray]]] = {}

    # -- sequence management ---------------------------------------------------
    def add_sequence(self, seq_id: object) -> None:
        if seq_id in self._seq_ids:
            raise ValueError(f"sequence {seq_id!r} already exists")
        self._seq_ids.add(seq_id)
        if self.dense_cache is not None:
            self.dense_cache.add_sequence(seq_id)
        if self.streaming_head_indices.size:
            for layer in range(self.config.n_layers):
                self._streaming[(seq_id, layer)] = StreamingKVStore(
                    n_kv_heads=int(self.streaming_head_indices.size),
                    head_dim=self.config.head_dim,
                    sink_tokens=self.sink_tokens,
                    local_tokens=self.local_tokens,
                    eviction_granularity=self.config.page_size,
                )
                if self.retain_streaming_pages:
                    self._stream_log[(seq_id, layer)] = []

    def remove_sequence(self, seq_id: object) -> None:
        if seq_id not in self._seq_ids:
            raise KeyError(f"unknown sequence {seq_id!r}")
        self._seq_ids.remove(seq_id)
        if self.dense_cache is not None:
            self.dense_cache.remove_sequence(seq_id)
        for layer in range(self.config.n_layers):
            self._streaming.pop((seq_id, layer), None)
            self._stream_log.pop((seq_id, layer), None)

    def fork_sequence(self, parent_id: object, child_id: object) -> None:
        """Copy-on-write fork: dense pages are referenced, streaming state copied.

        The dense pool forks through :meth:`PagedKVCache.fork_sequence`
        (shared pages, tail copied on first divergent append); the streaming
        stores are constant-size, so the child simply gets independent clones.
        """
        if parent_id not in self._seq_ids:
            raise KeyError(f"unknown sequence {parent_id!r}")
        if child_id in self._seq_ids:
            raise ValueError(f"sequence {child_id!r} already exists")
        if self.dense_cache is not None:
            self.dense_cache.fork_sequence(parent_id, child_id)
        self._seq_ids.add(child_id)
        for layer in range(self.config.n_layers):
            parent_store = self._streaming.get((parent_id, layer))
            if parent_store is not None:
                self._streaming[(child_id, layer)] = parent_store.clone()
            if self.retain_streaming_pages:
                # Chunks are append-only arrays, so a shallow list copy is safe.
                self._stream_log[(child_id, layer)] = list(
                    self._stream_log.get((parent_id, layer), [])
                )

    def attach_prefix(
        self,
        seq_id: object,
        n_tokens: int,
        dense_pages: list[int],
        dense_stats_per_layer: list[list] | None,
        stream_k_per_layer: list[np.ndarray] | None,
        stream_v_per_layer: list[np.ndarray] | None,
    ) -> None:
        """Create ``seq_id`` whose first ``n_tokens`` come from shared prefix pages.

        Dense-head pages are attached by reference (incref'd, key stats
        aliased); streaming stores are rebuilt exactly from the retained
        streaming history of the prefix (``stream_*_per_layer``, one
        ``(n_tokens, n_streaming_heads, head_dim)`` array per layer).
        """
        if seq_id in self._seq_ids:
            raise ValueError(f"sequence {seq_id!r} already exists")
        if self.dense_cache is not None:
            if dense_stats_per_layer is None:
                raise ValueError("dense head prefix requires per-layer key stats")
            self.dense_cache.attach_prefix(
                seq_id, dense_pages, n_tokens, dense_stats_per_layer
            )
        self._seq_ids.add(seq_id)
        if self.streaming_head_indices.size:
            if stream_k_per_layer is None or stream_v_per_layer is None:
                raise ValueError(
                    "attaching a prefix with streaming heads requires the "
                    "retained streaming history of the prefix"
                )
            for layer in range(self.config.n_layers):
                self._streaming[(seq_id, layer)] = StreamingKVStore.restore(
                    n_kv_heads=int(self.streaming_head_indices.size),
                    head_dim=self.config.head_dim,
                    sink_tokens=self.sink_tokens,
                    local_tokens=self.local_tokens,
                    eviction_granularity=self.config.page_size,
                    k_history=stream_k_per_layer[layer],
                    v_history=stream_v_per_layer[layer],
                    total_tokens=n_tokens,
                )
                if self.retain_streaming_pages:
                    self._stream_log[(seq_id, layer)] = [
                        (stream_k_per_layer[layer], stream_v_per_layer[layer])
                    ]

    def export_sequence(self, seq_id: object) -> DualSequenceExport:
        """Snapshot a sequence across both stores (source left untouched)."""
        if seq_id not in self._seq_ids:
            raise KeyError(f"unknown sequence {seq_id!r}")
        dense = (
            self.dense_cache.export_sequence(seq_id)
            if self.dense_cache is not None
            else None
        )
        streaming = {
            layer: self._streaming[(seq_id, layer)].clone()
            for layer in range(self.config.n_layers)
            if (seq_id, layer) in self._streaming
        }
        stream_log = None
        if self.retain_streaming_pages:
            stream_log = {
                layer: list(self._stream_log.get((seq_id, layer), []))
                for layer in range(self.config.n_layers)
            }
        return DualSequenceExport(
            n_tokens=self.seq_len(seq_id),
            dense=dense,
            streaming=streaming,
            stream_log=stream_log,
        )

    def import_sequence(self, seq_id: object, export: DualSequenceExport) -> int:
        """Install an exported sequence: attach dense pages, adopt streaming clones.

        Returns the number of dense pages allocated on this pool (the pages a
        transfer cost model charges for).  Raises ``ValueError`` on an
        existing ``seq_id`` or mismatched head partitioning, ``OutOfPagesError``
        (before any mutation) when the dense pool cannot hold the pages.
        """
        if seq_id in self._seq_ids:
            raise ValueError(f"sequence {seq_id!r} already exists")
        if (export.dense is None) != (self.dense_cache is None):
            raise ValueError(
                "exported sequence's dense/streaming head split does not match "
                "the target cache"
            )
        if self.streaming_head_indices.size and not export.streaming:
            raise ValueError("exported sequence carries no streaming stores")
        if self.retain_streaming_pages and export.stream_log is None and export.streaming:
            raise ValueError(
                "target cache retains streaming history but the export carries "
                "none (source had retention disabled)"
            )
        pages: list[int] = []
        if self.dense_cache is not None and export.dense is not None:
            pages = self.dense_cache.import_sequence(seq_id, export.dense)
        self._seq_ids.add(seq_id)
        for layer, store in export.streaming.items():
            self._streaming[(seq_id, layer)] = store.clone()
        if self.retain_streaming_pages and export.stream_log is not None:
            for layer in range(self.config.n_layers):
                self._stream_log[(seq_id, layer)] = list(export.stream_log.get(layer, []))
        return len(pages)

    def prepare_append(self, seq_id: object, n_new_tokens: int) -> None:
        """Reserve the dense pool's pages for an upcoming append, atomically.

        Raises :class:`~repro.kvcache.allocator.OutOfPagesError` before any
        state changes when the pool cannot cover it; the streaming stores are
        constant-size and never allocate.
        """
        if seq_id not in self._seq_ids:
            raise KeyError(f"unknown sequence {seq_id!r}")
        if self.dense_cache is not None:
            self.dense_cache.prepare_append(seq_id, n_new_tokens)

    def pages_required(self, seq_id: object, n_new_tokens: int) -> int:
        """Dense-pool pages an ``n_new_tokens`` append must be able to allocate."""
        if self.dense_cache is None:
            return 0
        return self.dense_cache.pages_required(seq_id, n_new_tokens)

    def streaming_history(self, seq_id: object, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Full retained streaming-head K/V history ``(n_tokens, heads, dim)``.

        Only available when the cache was built with
        ``retain_streaming_pages=True``.
        """
        if not self.retain_streaming_pages:
            raise RuntimeError("streaming history retention is disabled")
        chunks = self._stream_log.get((seq_id, layer), [])
        if not chunks:
            empty = np.zeros((0, int(self.streaming_head_indices.size), self.config.head_dim))
            return empty, empty.copy()
        k = np.concatenate([c[0] for c in chunks])
        v = np.concatenate([c[1] for c in chunks])
        return k, v

    def has_sequence(self, seq_id: object) -> bool:
        return seq_id in self._seq_ids

    def seq_len(self, seq_id: object) -> int:
        if seq_id not in self._seq_ids:
            raise KeyError(f"unknown sequence {seq_id!r}")
        if self.dense_cache is not None:
            return self.dense_cache.seq_len(seq_id)
        return self._streaming[(seq_id, 0)].total_tokens

    # -- writes ------------------------------------------------------------------
    def append(self, seq_id: object, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append all-KV-head keys/values; heads are routed to the two stores."""
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if k.shape[1] != self.config.n_kv_heads:
            raise ValueError(
                f"expected {self.config.n_kv_heads} KV heads, got {k.shape[1]}"
            )
        if self.dense_cache is not None:
            self.dense_cache.append(
                seq_id, layer, k[:, self.dense_head_indices], v[:, self.dense_head_indices]
            )
        if self.streaming_head_indices.size:
            k_s = k[:, self.streaming_head_indices]
            v_s = v[:, self.streaming_head_indices]
            self._streaming[(seq_id, layer)].append(k_s, v_s)
            if self.retain_streaming_pages:
                # Fancy-indexed slices above are fresh arrays; log them as-is.
                self._stream_log.setdefault((seq_id, layer), []).append((k_s, v_s))

    def append_batch(
        self, seq_ids: list[object], layer: int, k: np.ndarray, v: np.ndarray
    ) -> None:
        """Append one decode token per sequence, routed to both stores at once.

        ``k``/``v`` are ``(batch, n_kv_heads, head_dim)`` — row ``i`` is the
        new token of ``seq_ids[i]``.  The dense heads go through the paged
        pool's batched append (one scatter write); the streaming heads are
        constant-size ring stores, so they stay per-sequence.
        """
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if k.ndim != 3 or k.shape[0] != len(seq_ids) or k.shape[1] != self.config.n_kv_heads:
            raise ValueError(
                f"expected ({len(seq_ids)}, {self.config.n_kv_heads}, head_dim), got {k.shape}"
            )
        if self.dense_cache is not None:
            self.dense_cache.append_token_batch(
                seq_ids, layer, k[:, self.dense_head_indices], v[:, self.dense_head_indices]
            )
        if self.streaming_head_indices.size:
            k_s = k[:, self.streaming_head_indices]
            v_s = v[:, self.streaming_head_indices]
            for i, seq_id in enumerate(seq_ids):
                self._streaming[(seq_id, layer)].append(k_s[i : i + 1], v_s[i : i + 1])
                if self.retain_streaming_pages:
                    self._stream_log.setdefault((seq_id, layer), []).append(
                        (k_s[i : i + 1], v_s[i : i + 1])
                    )

    # -- reads ---------------------------------------------------------------------
    def streaming_store(self, seq_id: object, layer: int) -> StreamingKVStore | None:
        """The streaming store of one ``(sequence, layer)``, if any heads stream."""
        return self._streaming.get((seq_id, layer))

    def get_dense(self, seq_id: object, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Full KV history of the dense KV heads."""
        if self.dense_cache is None:
            empty = np.zeros((0, 0, self.config.head_dim))
            return empty, empty.copy()
        return self.dense_cache.get(seq_id, layer)

    def get_streaming(
        self, seq_id: object, layer: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sink + local KV of the streaming KV heads, with original positions."""
        if not self.streaming_head_indices.size:
            empty = np.zeros((0, 0, self.config.head_dim))
            return empty, empty.copy(), np.zeros(0, dtype=np.int64)
        return self._streaming[(seq_id, layer)].get()

    def dense_key_stats(self, seq_id: object, layer: int) -> tuple[np.ndarray, np.ndarray]:
        if self.dense_cache is None:
            empty = np.zeros((0, 0, self.config.head_dim))
            return empty, empty.copy()
        return self.dense_cache.key_stats(seq_id, layer)

    # -- accounting -------------------------------------------------------------------
    def memory_bytes_model(self, seq_id: object | None = None) -> float:
        """Modelled KV memory across both stores."""
        total = 0.0
        if self.dense_cache is not None:
            total += self.dense_cache.memory_bytes_model(seq_id)
        stores = (
            [s for (sid, _), s in self._streaming.items() if seq_id is None or sid == seq_id]
        )
        total += sum(s.memory_bytes_model() for s in stores)
        return total
