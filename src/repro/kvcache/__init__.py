"""Paged KV-cache substrate.

Implements the memory-management layer LServe builds on: a **ref-counted**
page allocator and per-sequence page tables (PagedAttention-style), low-bit
KV quantization (QServe-style KV4/KV8), per-logical-page key statistics used
by the hierarchical page selector, the two-way paged cache that keeps
separate page tables for dense and streaming heads (paper Fig. 5), and a
RadixAttention-style :class:`PrefixIndex` for copy-on-write prefix sharing
(fork -> CoW tail -> decref; see ``docs/architecture.md``).
"""

from repro.kvcache.allocator import OutOfPagesError, PageAllocator
from repro.kvcache.page_table import PageTable
from repro.kvcache.quantization import (
    QuantizedTensor,
    dequantize,
    quantization_error_bound,
    quantize,
)
from repro.kvcache.kv_stats import PageKeyStats, compute_page_key_stats, merge_key_stats
from repro.kvcache.paged_cache import PagedCacheConfig, PagedKVCache
from repro.kvcache.dual_cache import DualPagedKVCache, StreamingKVStore
from repro.kvcache.prefix_index import PrefixIndex, PrefixNode
from repro.kvcache.tiering import (
    EVICTION_POLICIES,
    ColdEntry,
    ColdTierError,
    ColdTierStore,
    EvictionPolicy,
    KVTieringConfig,
    LRUEvictionPolicy,
    compress_page_images,
    make_eviction_policy,
)

__all__ = [
    "OutOfPagesError",
    "PageAllocator",
    "PageTable",
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "quantization_error_bound",
    "PageKeyStats",
    "compute_page_key_stats",
    "merge_key_stats",
    "PagedCacheConfig",
    "PagedKVCache",
    "DualPagedKVCache",
    "StreamingKVStore",
    "PrefixIndex",
    "PrefixNode",
    "KVTieringConfig",
    "ColdTierStore",
    "ColdTierError",
    "ColdEntry",
    "EvictionPolicy",
    "LRUEvictionPolicy",
    "EVICTION_POLICIES",
    "make_eviction_policy",
    "compress_page_images",
]
