"""End-to-end latency breakdowns for one serving step under a system policy.

The :class:`SystemCostModel` combines the per-kernel latencies of
:class:`~repro.gpu.kernels.KernelCostModel` according to a
:class:`~repro.baselines.policy.SystemPolicy`: which heads are streaming, how
many KV tokens the dense heads read, whether a page selector runs and how
often, what precision the GEMMs and the KV cache use, and what per-step
framework overhead the system pays.  It also models the KV/weight memory
footprint, which determines the OOM entries of Figs. 10/11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.policy import SystemPolicy
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import KernelCostModel
from repro.model.configs import ModelConfig

__all__ = ["StageBreakdown", "SystemCostModel", "TransferCostModel"]


@dataclass(frozen=True)
class TransferCostModel:
    """Cost of migrating KV-cache pages between replicas over a finite link.

    First-principles model of the prefill→decode KV hand-off in a
    disaggregated cluster (DistServe/Mooncake style): the payload is the
    page images themselves — ``pages × page_size × layers × heads × head_dim
    × 2 (K and V) × dtype width`` bytes — and the latency is a fixed
    per-transfer setup cost plus the serialisation time over the link:

    ``latency = base_latency_s + bytes / bandwidth_bytes_per_s``

    A zero-page transfer costs only the base latency (the control-plane
    round trip still happens).  Defaults approximate a NVLink-class
    intra-node link; drop ``bandwidth_bytes_per_s`` to ~2e10 for PCIe or
    ~1e10 for a 100 GbE fabric.
    """

    bandwidth_bytes_per_s: float = 6.4e10
    base_latency_s: float = 5e-4

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be positive")
        if self.base_latency_s < 0:
            raise ValueError("base_latency_s must be non-negative")

    def page_bytes(
        self, page_size: int, n_layers: int, n_kv_heads: int, head_dim: int, kv_bits: int
    ) -> float:
        """Wire bytes of one physical KV page (K and V, all layers)."""
        if min(page_size, n_layers, n_kv_heads, head_dim, kv_bits) <= 0:
            raise ValueError("page geometry must be positive")
        return page_size * n_layers * n_kv_heads * head_dim * 2 * (kv_bits / 8.0)

    def transfer_bytes(
        self,
        n_pages: int,
        page_size: int,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        kv_bits: int,
    ) -> float:
        """Total wire bytes of migrating ``n_pages`` physical pages."""
        if n_pages < 0:
            raise ValueError("n_pages must be non-negative")
        return n_pages * self.page_bytes(page_size, n_layers, n_kv_heads, head_dim, kv_bits)

    def transfer_latency_s(
        self,
        n_pages: int,
        page_size: int,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        kv_bits: int,
    ) -> float:
        """Modeled hand-off latency in seconds: base + bytes / bandwidth."""
        payload = self.transfer_bytes(
            n_pages, page_size, n_layers, n_kv_heads, head_dim, kv_bits
        )
        return self.base_latency_s + payload / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class StageBreakdown:
    """Latency breakdown of one prefill pass or one decode step (seconds)."""

    attention_s: float
    gemm_s: float
    selector_s: float
    other_s: float

    @property
    def total_s(self) -> float:
        return self.attention_s + self.gemm_s + self.selector_s + self.other_s

    @property
    def attention_fraction(self) -> float:
        return self.attention_s / self.total_s if self.total_s > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "attention_s": self.attention_s,
            "gemm_s": self.gemm_s,
            "selector_s": self.selector_s,
            "other_s": self.other_s,
            "total_s": self.total_s,
        }


class SystemCostModel:
    """Latency/memory model of serving ``model`` on ``device`` under ``policy``."""

    def __init__(
        self,
        model: ModelConfig,
        device: DeviceSpec,
        policy: SystemPolicy,
        kernels: KernelCostModel | None = None,
    ) -> None:
        self.model = model
        self.device = device
        self.policy = policy
        self.kernels = kernels or KernelCostModel(device)

    # -- head bookkeeping ----------------------------------------------------------
    def _streaming_kv_heads(self) -> int:
        return int(round(self.policy.streaming_head_ratio * self.model.n_kv_heads))

    def _dense_kv_heads(self) -> int:
        return self.model.n_kv_heads - self._streaming_kv_heads()

    # -- GEMM stack ------------------------------------------------------------------
    def _linear_layer_latency(self, m: int) -> float:
        """All linear projections of one transformer layer for ``m`` rows."""
        cfg = self.model
        p = self.policy
        k = self.kernels
        h, kv, inter = cfg.hidden_size, cfg.kv_dim, cfg.intermediate_size
        return (
            k.gemm_latency(m, h, h, p.weight_bits, p.activation_bits)  # Q
            + 2 * k.gemm_latency(m, kv, h, p.weight_bits, p.activation_bits)  # K, V
            + k.gemm_latency(m, h, h, p.weight_bits, p.activation_bits)  # O
            + 2 * k.gemm_latency(m, inter, h, p.weight_bits, p.activation_bits)  # gate, up
            + k.gemm_latency(m, h, inter, p.weight_bits, p.activation_bits)  # down
        )

    def gemm_latency(self, n_tokens: int, batch: int = 1) -> float:
        """All GEMMs of one forward pass over ``n_tokens`` new tokens per sequence."""
        m = max(1, n_tokens) * batch
        cfg = self.model
        per_layer = self._linear_layer_latency(m)
        lm_head = self.kernels.gemm_latency(
            batch, cfg.vocab_size, cfg.hidden_size, self.policy.weight_bits, self.policy.activation_bits
        )
        return cfg.n_layers * per_layer + lm_head

    # -- decode step --------------------------------------------------------------------
    def decode_attention_latency(self, context_length: int, batch: int = 1) -> float:
        """Decode-stage attention across all layers and both head groups."""
        cfg = self.model
        p = self.policy
        k = self.kernels
        per_layer = 0.0
        dense_heads = self._dense_kv_heads()
        streaming_heads = self._streaming_kv_heads()
        if dense_heads:
            per_layer += k.decode_attention_latency(
                tokens_read=p.dense_decode_tokens(context_length),
                n_kv_heads=dense_heads,
                head_dim=cfg.head_dim,
                kv_bits=p.kv_bits,
                page_size=p.page_size,
                batch=batch,
                efficiency_scale=p.decode_attention_efficiency,
            )
        if streaming_heads:
            per_layer += k.decode_attention_latency(
                tokens_read=min(context_length, p.streaming_window()),
                n_kv_heads=streaming_heads,
                head_dim=cfg.head_dim,
                kv_bits=p.kv_bits,
                page_size=p.page_size,
                batch=batch,
                efficiency_scale=p.decode_attention_efficiency,
            )
        if dense_heads and streaming_heads:
            # Dense and streaming heads run in one fused kernel (paper §3.6);
            # only one launch overhead is paid per layer.
            per_layer -= k.kernel_launch_overhead_s
        return cfg.n_layers * per_layer

    def selector_latency(self, context_length: int, batch: int = 1) -> float:
        """Page-selector cost per decode step (amortised over the reuse interval)."""
        p = self.policy
        if not p.has_dynamic_decode_sparsity:
            return 0.0
        if context_length <= (p.decode_token_budget or 0):
            return 0.0
        n_logical_pages = -(-context_length // p.effective_logical_page_size)
        per_layer = self.kernels.page_selector_latency(n_logical_pages, batch=batch)
        return self.model.n_layers * per_layer / p.reuse_interval

    def decode_step_breakdown(self, context_length: int, batch: int = 1) -> StageBreakdown:
        """Latency breakdown of one decode step at the given context length."""
        if context_length < 0 or batch <= 0:
            raise ValueError("context_length must be >= 0 and batch > 0")
        return StageBreakdown(
            attention_s=self.decode_attention_latency(context_length, batch),
            gemm_s=self.gemm_latency(1, batch),
            selector_s=self.selector_latency(context_length, batch),
            other_s=self.policy.per_step_overhead_s,
        )

    def decode_step_latency(self, context_length: int, batch: int = 1) -> float:
        return self.decode_step_breakdown(context_length, batch).total_s

    # -- prefill -------------------------------------------------------------------------
    def prefill_attention_latency(self, seq_len: int, batch: int = 1) -> float:
        cfg = self.model
        p = self.policy
        per_layer = self.kernels.prefill_attention_latency(
            n_q=seq_len,
            n_kv=seq_len,
            n_heads=cfg.n_heads,
            head_dim=cfg.head_dim,
            visited_fraction=p.prefill_visited_fraction(seq_len),
            batch=batch,
            kernel_efficiency_scale=p.prefill_kernel_efficiency,
        )
        return cfg.n_layers * per_layer

    def prefill_breakdown(self, seq_len: int, batch: int = 1) -> StageBreakdown:
        """Latency breakdown of prefilling ``seq_len`` tokens (time to first token)."""
        if seq_len <= 0 or batch <= 0:
            raise ValueError("seq_len and batch must be positive")
        cfg = self.model
        pooling = 0.0
        if self.policy.has_dynamic_decode_sparsity:
            pooling = cfg.n_layers * self.kernels.pooling_latency(
                seq_len, self._dense_kv_heads(), cfg.head_dim, batch=batch
            )
        return StageBreakdown(
            attention_s=self.prefill_attention_latency(seq_len, batch),
            gemm_s=self.gemm_latency(seq_len, batch),
            selector_s=pooling,
            other_s=self.policy.per_prefill_overhead_s,
        )

    def prefill_latency(self, seq_len: int, batch: int = 1) -> float:
        return self.prefill_breakdown(seq_len, batch).total_s

    # -- memory ---------------------------------------------------------------------------
    def weight_memory_bytes(self) -> float:
        return self.model.linear_weight_bytes(self.policy.weight_bits / 8.0)

    def kv_memory_bytes(self, context_length: int, batch: int = 1) -> float:
        """KV-cache footprint at the given context length.

        Streaming heads only store sink + local tokens (the two-way cache);
        dense heads store the full context at ``kv_bits`` plus per-token
        scales/zeros and, for hierarchically paged systems, key statistics.
        """
        cfg = self.model
        p = self.policy
        dense_heads = self._dense_kv_heads()
        streaming_heads = self._streaming_kv_heads()
        streaming_tokens = min(context_length, p.streaming_window())

        def per_token_bytes(n_heads: int) -> float:
            bytes_per_elem = p.kv_bits / 8.0
            base = 2.0 * n_heads * cfg.head_dim * bytes_per_elem
            if p.kv_bits < 16:
                base += 2.0 * n_heads * 2 * 2.0  # fp16 scale + zero for K and V
            return base

        total = context_length * per_token_bytes(dense_heads)
        total += streaming_tokens * per_token_bytes(streaming_heads)
        if p.has_dynamic_decode_sparsity and dense_heads:
            n_logical = -(-context_length // p.effective_logical_page_size)
            total += n_logical * dense_heads * cfg.head_dim * 2 * 2.0  # kmin/kmax fp16
        return batch * cfg.n_layers * total

    def total_memory_bytes(self, context_length: int, batch: int = 1) -> float:
        return self.weight_memory_bytes() + self.kv_memory_bytes(context_length, batch)

    def fits_in_memory(self, context_length: int, batch: int = 1, reserve_fraction: float = 0.1) -> bool:
        """Whether weights + KV fit on the device, keeping a workspace reserve."""
        budget = self.device.memory_bytes * (1.0 - reserve_fraction)
        return self.total_memory_bytes(context_length, batch) <= budget
