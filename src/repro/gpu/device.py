"""GPU device specifications used by the roofline cost model."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100_80G", "L40S_48G", "DEVICE_REGISTRY", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Peak capabilities of one GPU.

    Only the quantities the roofline model needs are kept: HBM capacity and
    bandwidth, dense tensor-core throughput at FP16 and INT8, and the number
    of streaming multiprocessors (used to reason about kernel occupancy).
    """

    name: str
    memory_gb: float
    memory_bandwidth_gb_s: float
    fp16_tflops: float
    int8_tops: float
    sm_count: int

    def __post_init__(self) -> None:
        for field_name in (
            "memory_gb",
            "memory_bandwidth_gb_s",
            "fp16_tflops",
            "int8_tops",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.sm_count <= 0:
            raise ValueError("sm_count must be positive")

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * 1e9

    @property
    def memory_bandwidth_bytes_s(self) -> float:
        return self.memory_bandwidth_gb_s * 1e9

    def flops_per_second(self, bits: int) -> float:
        """Dense matmul throughput (operations/s) for the given operand width."""
        if bits >= 16:
            return self.fp16_tflops * 1e12
        return self.int8_tops * 1e12


A100_80G = DeviceSpec(
    name="A100-80GB",
    memory_gb=80.0,
    memory_bandwidth_gb_s=2039.0,
    fp16_tflops=312.0,
    int8_tops=624.0,
    sm_count=108,
)

L40S_48G = DeviceSpec(
    name="L40S-48GB",
    memory_gb=48.0,
    memory_bandwidth_gb_s=864.0,
    fp16_tflops=181.0,
    int8_tops=362.0,
    sm_count=142,
)

DEVICE_REGISTRY: dict[str, DeviceSpec] = {d.name: d for d in (A100_80G, L40S_48G)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name (case-insensitive prefix match allowed)."""
    for key, dev in DEVICE_REGISTRY.items():
        if key.lower() == name.lower() or key.lower().startswith(name.lower()):
            return dev
    raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICE_REGISTRY)}")
