"""Per-kernel latency models (roofline + empirical efficiency factors).

Each kernel's latency is the maximum of its compute time and its memory time
at the device's peak rates, scaled by an efficiency factor, plus a fixed
launch overhead.  The page-size-dependent bandwidth utilisation term models
the effect measured in Table 1 of the paper (small KV pages underutilise HBM
bandwidth, which is why LServe cannot simply shrink physical pages), and the
selector cost models the per-logical-page work of Figs. 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec

__all__ = ["bandwidth_utilization", "KernelCostModel"]


def bandwidth_utilization(page_size: int, overhead_tokens: float = 12.0) -> float:
    """Fraction of peak HBM bandwidth achieved when fetching KV pages.

    Each page fetch pays a fixed cost (address computation through the page
    table, dequantisation setup, partially-filled cache lines) equivalent to
    ``overhead_tokens`` tokens of traffic, so utilisation is
    ``page_size / (page_size + overhead_tokens)``.  With the default overhead
    this reproduces the relative slowdowns of Table 1 (page 16 ≈ 1.5× slower
    than page 128 when attention dominates, page 64 within a few percent).
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    if overhead_tokens < 0:
        raise ValueError("overhead_tokens must be non-negative")
    return page_size / (page_size + overhead_tokens)


@dataclass(frozen=True)
class KernelCostModel:
    """Latency model for the kernels that make up a serving step."""

    device: DeviceSpec
    kernel_launch_overhead_s: float = 5e-6
    gemm_efficiency: float = 0.75
    prefill_attention_efficiency: float = 0.40
    decode_attention_efficiency: float = 0.85
    page_fetch_overhead_tokens: float = 12.0
    # Calibrated so a full decode step's selection over all layers costs
    # ~0.24 ms at 128K context with 16-token logical pages (Fig. 14).
    selector_cost_per_logical_page_s: float = 0.9e-9
    selector_launch_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if not 0 < self.gemm_efficiency <= 1:
            raise ValueError("gemm_efficiency must be in (0, 1]")
        if not 0 < self.prefill_attention_efficiency <= 1:
            raise ValueError("prefill_attention_efficiency must be in (0, 1]")
        if not 0 < self.decode_attention_efficiency <= 1:
            raise ValueError("decode_attention_efficiency must be in (0, 1]")

    # -- generic GEMM -----------------------------------------------------------
    def gemm_latency(
        self, m: int, n: int, k: int, weight_bits: int = 16, act_bits: int = 16
    ) -> float:
        """Latency of an ``(m × k) @ (k × n)`` GEMM.

        Compute uses the tensor-core rate of the narrower operand type; memory
        counts the weight matrix at ``weight_bits`` plus input/output
        activations at ``act_bits`` (decode GEMMs with ``m = batch`` are
        weight-bandwidth-bound, which is what makes low-bit weights pay off).
        """
        if min(m, n, k) <= 0:
            raise ValueError("GEMM dimensions must be positive")
        flops = 2.0 * m * n * k
        compute_bits = max(8, min(weight_bits, act_bits))
        compute = flops / (self.device.flops_per_second(compute_bits) * self.gemm_efficiency)
        bytes_moved = (
            n * k * weight_bits / 8.0 + (m * k + m * n) * act_bits / 8.0
        )
        memory = bytes_moved / self.device.memory_bandwidth_bytes_s
        return max(compute, memory) + self.kernel_launch_overhead_s

    # -- attention ---------------------------------------------------------------
    def prefill_attention_latency(
        self,
        n_q: int,
        n_kv: int,
        n_heads: int,
        head_dim: int,
        visited_fraction: float = 1.0,
        batch: int = 1,
        kernel_efficiency_scale: float = 1.0,
    ) -> float:
        """Compute-bound prefill attention for one layer.

        ``visited_fraction`` is the fraction of causal tiles actually computed
        (1.0 = dense causal attention); block sparsity reduces latency
        proportionally (paper §3.1).  ``kernel_efficiency_scale`` lets baseline
        kernels (e.g. MInference's) be modelled as a constant factor less
        efficient at the same sparsity (Fig. 12).
        """
        if not 0.0 <= visited_fraction <= 1.0:
            raise ValueError("visited_fraction must be in [0, 1]")
        # Causal attention computes ~half of the full n_q x n_kv score matrix
        # when n_q == n_kv; more generally the prefix part is fully visible.
        causal_pairs = n_q * (n_kv - n_q) + n_q * (n_q + 1) / 2.0
        flops = 4.0 * n_heads * head_dim * causal_pairs * visited_fraction * batch
        rate = (
            self.device.flops_per_second(16)
            * self.prefill_attention_efficiency
            * kernel_efficiency_scale
        )
        return flops / rate + self.kernel_launch_overhead_s

    def decode_attention_latency(
        self,
        tokens_read: int,
        n_kv_heads: int,
        head_dim: int,
        kv_bits: int = 16,
        page_size: int = 64,
        batch: int = 1,
        efficiency_scale: float = 1.0,
    ) -> float:
        """Memory-bound decode attention for one layer.

        ``tokens_read`` is the number of KV tokens actually fetched per
        sequence (full context for dense attention, the token budget for
        dynamic sparsity, sink+local for streaming heads).
        """
        if tokens_read < 0:
            raise ValueError("tokens_read must be non-negative")
        if tokens_read == 0:
            return self.kernel_launch_overhead_s
        kv_bytes = 2.0 * tokens_read * n_kv_heads * head_dim * kv_bits / 8.0
        if kv_bits < 16:
            # fp16 scale + zero point per token per head (QServe page layout).
            kv_bytes += 2.0 * tokens_read * n_kv_heads * 2 * 2.0
        utilisation = bandwidth_utilization(page_size, self.page_fetch_overhead_tokens)
        effective_bw = (
            self.device.memory_bandwidth_bytes_s
            * utilisation
            * self.decode_attention_efficiency
            * efficiency_scale
        )
        return batch * kv_bytes / effective_bw + self.kernel_launch_overhead_s

    # -- page selection -------------------------------------------------------------
    def page_selector_latency(self, n_logical_pages: int, batch: int = 1) -> float:
        """Latency of one dynamic page-selection pass for one layer.

        Linear in the number of logical pages (it reads every page's K_stats
        and runs a top-K), matching the linear growth in Fig. 14.
        """
        if n_logical_pages < 0:
            raise ValueError("n_logical_pages must be non-negative")
        if n_logical_pages == 0:
            return 0.0
        return (
            self.selector_launch_overhead_s
            + batch * n_logical_pages * self.selector_cost_per_logical_page_s
        )

    def pooling_latency(
        self, n_tokens: int, n_kv_heads: int, head_dim: int, batch: int = 1
    ) -> float:
        """Min/max pooling of key statistics during prefill (§5.3: negligible)."""
        if n_tokens <= 0:
            return 0.0
        bytes_read = n_tokens * n_kv_heads * head_dim * 2.0 * batch
        return bytes_read / self.device.memory_bandwidth_bytes_s + self.kernel_launch_overhead_s
