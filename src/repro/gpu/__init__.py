"""Analytical GPU cost model (roofline) and end-to-end latency simulator.

The paper's efficiency results come from counting work: tiles of attention
visited, KV bytes moved, selector operations, GEMM FLOPs.  This subpackage
counts the same quantities and converts them to time using published A100 /
L40S peak numbers, so relative speedups, crossover points and OOM boundaries
are reproduced without a GPU.  Absolute milliseconds are a model, not a
measurement; see DESIGN.md for the calibration notes.
"""

from repro.gpu.device import DeviceSpec, A100_80G, L40S_48G, DEVICE_REGISTRY, get_device
from repro.gpu.kernels import (
    KernelCostModel,
    bandwidth_utilization,
)
from repro.gpu.cost_model import StageBreakdown, SystemCostModel, TransferCostModel
from repro.gpu.simulator import LatencySimulator, OutOfMemoryError

__all__ = [
    "DeviceSpec",
    "A100_80G",
    "L40S_48G",
    "DEVICE_REGISTRY",
    "get_device",
    "KernelCostModel",
    "bandwidth_utilization",
    "StageBreakdown",
    "SystemCostModel",
    "TransferCostModel",
    "LatencySimulator",
    "OutOfMemoryError",
]
