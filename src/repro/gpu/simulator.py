"""End-to-end latency simulator for one (model, device, policy) combination."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.policy import SystemPolicy
from repro.gpu.cost_model import StageBreakdown, SystemCostModel
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import KernelCostModel
from repro.model.configs import ModelConfig

__all__ = ["OutOfMemoryError", "GenerationEstimate", "LatencySimulator"]


class OutOfMemoryError(RuntimeError):
    """Raised when a workload does not fit in device memory under a policy."""


@dataclass(frozen=True)
class GenerationEstimate:
    """Timing estimate for serving one request (prefill + autoregressive decode)."""

    prefill_s: float
    decode_s: float
    decode_steps: int

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s

    @property
    def mean_decode_step_s(self) -> float:
        return self.decode_s / self.decode_steps if self.decode_steps else 0.0

    @property
    def decode_throughput_tokens_s(self) -> float:
        return self.decode_steps / self.decode_s if self.decode_s > 0 else 0.0


class LatencySimulator:
    """Convenience wrapper around :class:`SystemCostModel` with OOM checking."""

    def __init__(
        self,
        model: ModelConfig,
        device: DeviceSpec,
        policy: SystemPolicy,
        kernels: KernelCostModel | None = None,
        check_memory: bool = True,
    ) -> None:
        self.cost_model = SystemCostModel(model, device, policy, kernels)
        self.model = model
        self.device = device
        self.policy = policy
        self.check_memory = check_memory

    def _require_fits(self, context_length: int, batch: int) -> None:
        if self.check_memory and not self.cost_model.fits_in_memory(context_length, batch):
            needed = self.cost_model.total_memory_bytes(context_length, batch) / 1e9
            raise OutOfMemoryError(
                f"{self.policy.name} needs {needed:.1f} GB for context {context_length} "
                f"x batch {batch} on {self.device.name} ({self.device.memory_gb} GB)"
            )

    # -- single-stage queries ---------------------------------------------------------
    def prefill_latency(self, seq_len: int, batch: int = 1) -> float:
        """Time-to-first-token for a ``seq_len``-token prompt."""
        self._require_fits(seq_len, batch)
        return self.cost_model.prefill_latency(seq_len, batch)

    def prefill_breakdown(self, seq_len: int, batch: int = 1) -> StageBreakdown:
        self._require_fits(seq_len, batch)
        return self.cost_model.prefill_breakdown(seq_len, batch)

    def decode_step_latency(self, context_length: int, batch: int = 1) -> float:
        """Per-token generation latency at the given context length."""
        self._require_fits(context_length, batch)
        return self.cost_model.decode_step_latency(context_length, batch)

    def decode_breakdown(self, context_length: int, batch: int = 1) -> StageBreakdown:
        self._require_fits(context_length, batch)
        return self.cost_model.decode_step_breakdown(context_length, batch)

    def decode_throughput(self, context_length: int, batch: int = 1) -> float:
        """Generated tokens per second across the batch at a context length."""
        return batch / self.decode_step_latency(context_length, batch)

    def max_context_in_memory(self, batch: int = 1, limit: int = 2_097_152) -> int:
        """Largest context length (in 1K steps) that fits on the device."""
        best = 0
        step = 1024
        length = step
        while length <= limit:
            if self.cost_model.fits_in_memory(length, batch):
                best = length
            else:
                break
            length += step
        return best

    # -- serving integration ----------------------------------------------------------
    def as_backend(self):
        """This cost model as a :class:`~repro.serving.backend.SimulatedBackend`.

        The returned object implements the serving ``InferenceBackend``
        protocol, so a clock-only run is just one configuration of the
        :class:`~repro.serving.engine.ServingEngine` front door.
        """
        from repro.serving.backend import SimulatedBackend  # avoid import cycle

        return SimulatedBackend(self)

    # -- request-level estimate -----------------------------------------------------------
    def generation_estimate(
        self, prompt_tokens: int, output_tokens: int, batch: int = 1
    ) -> GenerationEstimate:
        """Estimate serving one request end to end.

        Decode latency grows with the context, so the decode phase is integrated
        step by step (sampled every 256 steps for speed).
        """
        if prompt_tokens <= 0 or output_tokens < 0:
            raise ValueError("prompt_tokens must be positive and output_tokens >= 0")
        self._require_fits(prompt_tokens + output_tokens, batch)
        prefill = self.cost_model.prefill_latency(prompt_tokens, batch)
        decode = 0.0
        stride = 256
        step = 0
        while step < output_tokens:
            chunk = min(stride, output_tokens - step)
            context = prompt_tokens + step + chunk // 2
            decode += chunk * self.cost_model.decode_step_latency(context, batch)
            step += chunk
        return GenerationEstimate(prefill_s=prefill, decode_s=decode, decode_steps=output_tokens)
