"""LongBench-style evaluation on the synthetic substrate (Tables 2 and 8).

Each LongBench dataset is mapped to a synthetic retrieval profile describing
what its questions demand from the attention mechanism: how long the inputs
are, how many separate evidence spans a question touches (multi-hop QA needs
several, summarisation needs broad coverage), and how strongly the answer
depends on retrieval at all.  The *dense* score of a task is anchored to the
model's published dense accuracy (that number reflects model quality, which a
synthetic substrate cannot derive); the score of a sparse system is the dense
anchor scaled by its measured evidence recall on the synthetic workload, so
the dense-vs-sparse *gap* — the quantity Table 2 is about — is measured, not
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.retrieval_policies import DenseSelection, SelectionPolicy
from repro.eval.scoring import coverage_score, recall_to_accuracy
from repro.eval.synthetic_context import generate_needle_context

__all__ = ["LongBenchTask", "LONGBENCH_TASKS", "DENSE_ANCHORS", "run_longbench"]


@dataclass(frozen=True)
class LongBenchTask:
    """Synthetic profile of one LongBench dataset."""

    name: str
    context_length: int
    n_evidence_spans: int
    aggregation_weight: float  # 0 = pure retrieval QA, 1 = pure coverage/summarisation
    retrieval_dependence: float  # fraction of the score that needs long-range evidence

    def __post_init__(self) -> None:
        if self.context_length <= 0 or self.n_evidence_spans <= 0:
            raise ValueError("context_length and n_evidence_spans must be positive")
        if not 0.0 <= self.aggregation_weight <= 1.0:
            raise ValueError("aggregation_weight must be in [0, 1]")
        if not 0.0 <= self.retrieval_dependence <= 1.0:
            raise ValueError("retrieval_dependence must be in [0, 1]")


LONGBENCH_TASKS: tuple[LongBenchTask, ...] = (
    LongBenchTask("2WikiMQA", 8192, 2, 0.1, 0.8),
    LongBenchTask("DuReader", 16384, 2, 0.3, 0.7),
    LongBenchTask("HotpotQA", 8192, 2, 0.1, 0.8),
    LongBenchTask("MultiNews", 4096, 4, 0.8, 0.5),
    LongBenchTask("Qasper", 8192, 3, 0.3, 0.7),
    LongBenchTask("QMSum", 16384, 4, 0.7, 0.6),
    LongBenchTask("SamSum", 4096, 2, 0.5, 0.4),
    LongBenchTask("TriviaQA", 8192, 1, 0.0, 0.9),
)

# Published dense accuracies (Table 2 of the paper) used as per-task anchors.
DENSE_ANCHORS: dict[str, dict[str, float]] = {
    "Llama-3-8B": {
        "2WikiMQA": 30.3, "DuReader": 30.3, "HotpotQA": 41.7, "MultiNews": 27.7,
        "Qasper": 31.7, "QMSum": 23.8, "SamSum": 41.2, "TriviaQA": 84.9,
    },
    "Llama-2-7B": {
        "2WikiMQA": 35.4, "DuReader": 25.4, "HotpotQA": 47.4, "MultiNews": 26.6,
        "Qasper": 32.6, "QMSum": 21.0, "SamSum": 41.8, "TriviaQA": 86.2,
    },
}


def _task_retrieval_quality(
    policy: SelectionPolicy, task: LongBenchTask, samples: int, seed: int
) -> float:
    """Measured evidence recall of ``policy`` on the task's synthetic workload."""
    rng = np.random.default_rng(seed)
    scores = []
    for s in range(samples):
        ctx = generate_needle_context(
            context_length=task.context_length,
            depth_fraction=float(rng.uniform(0.1, 0.9)),
            n_extra_needles=task.n_evidence_spans - 1,
            seed=seed + 101 * s,
        )
        selected = policy.select_tokens(ctx)
        span_recalls = [
            recall_to_accuracy(ctx.needle_recall(selected, i))
            for i in range(-1, len(ctx.extra_needles))
        ]
        retrieval = float(np.mean(span_recalls))
        n_relevant = max(1, task.context_length // 64)
        relevant = rng.choice(task.context_length, size=n_relevant, replace=False)
        coverage = np.sqrt(coverage_score(selected, relevant))
        quality = (
            (1.0 - task.aggregation_weight) * retrieval + task.aggregation_weight * coverage
        )
        scores.append(quality)
    return float(np.mean(scores))


def run_longbench(
    policy: SelectionPolicy,
    model_name: str = "Llama-3-8B",
    samples_per_task: int = 3,
    seed: int = 0,
    tasks: tuple[LongBenchTask, ...] = LONGBENCH_TASKS,
) -> dict[str, float]:
    """Per-task LongBench-style scores for one policy.

    Returns a mapping task name -> score on the published scale, including an
    ``"Average"`` entry.  The dense policy reproduces the anchors exactly.
    """
    if model_name not in DENSE_ANCHORS:
        raise KeyError(f"no dense anchors for model {model_name!r}")
    anchors = DENSE_ANCHORS[model_name]
    results: dict[str, float] = {}
    dense = DenseSelection()
    for i, task in enumerate(tasks):
        anchor = anchors[task.name]
        quality = _task_retrieval_quality(policy, task, samples_per_task, seed + 977 * i)
        dense_quality = _task_retrieval_quality(dense, task, samples_per_task, seed + 977 * i)
        relative = quality / dense_quality if dense_quality > 0 else 0.0
        # Only the retrieval-dependent part of the score is at risk under sparsity.
        factor = (1.0 - task.retrieval_dependence) + task.retrieval_dependence * relative
        results[task.name] = anchor * factor
    results["Average"] = float(np.mean([results[t.name] for t in tasks]))
    return results
