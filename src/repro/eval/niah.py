"""Needle-in-a-Haystack (NIAH) pressure test on the synthetic substrate.

Reproduces the experiments of Figs. 6, 9 and 13: a needle fact is planted at a
(document length, document depth) grid cell and the score of a cell is how well
the system's token-selection policy recovers the needle span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.retrieval_policies import SelectionPolicy
from repro.eval.scoring import grid_average, recall_to_accuracy
from repro.eval.synthetic_context import generate_needle_context

__all__ = ["NIAHConfig", "NIAHResult", "run_niah"]


@dataclass(frozen=True)
class NIAHConfig:
    """Grid definition for a NIAH sweep."""

    context_lengths: tuple[int, ...] = (4096, 8192, 16384, 32768)
    depth_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    needle_length: int = 32
    head_dim: int = 64
    needle_strength: float = 1.5
    samples_per_cell: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.context_lengths or not self.depth_fractions:
            raise ValueError("context_lengths and depth_fractions must be non-empty")
        if self.samples_per_cell <= 0:
            raise ValueError("samples_per_cell must be positive")


@dataclass
class NIAHResult:
    """Accuracy grid of one policy on the NIAH sweep."""

    policy_name: str
    config: NIAHConfig
    grid: np.ndarray  # (n_lengths, n_depths)

    @property
    def average_accuracy(self) -> float:
        return grid_average(self.grid)

    def accuracy_at_length(self, context_length: int) -> float:
        idx = self.config.context_lengths.index(context_length)
        return float(self.grid[idx].mean())

    def to_rows(self) -> list[dict[str, float]]:
        rows = []
        for i, length in enumerate(self.config.context_lengths):
            for j, depth in enumerate(self.config.depth_fractions):
                rows.append(
                    {
                        "context_length": float(length),
                        "depth": float(depth),
                        "accuracy": float(self.grid[i, j]),
                    }
                )
        return rows


def run_niah(policy: SelectionPolicy, config: NIAHConfig | None = None) -> NIAHResult:
    """Evaluate one selection policy over the NIAH grid."""
    config = config or NIAHConfig()
    grid = np.zeros((len(config.context_lengths), len(config.depth_fractions)))
    for i, length in enumerate(config.context_lengths):
        for j, depth in enumerate(config.depth_fractions):
            scores = []
            for s in range(config.samples_per_cell):
                context = generate_needle_context(
                    context_length=length,
                    depth_fraction=depth,
                    needle_length=config.needle_length,
                    head_dim=config.head_dim,
                    needle_strength=config.needle_strength,
                    seed=config.seed + 7919 * i + 101 * j + s,
                )
                selected = policy.select_tokens(context)
                scores.append(recall_to_accuracy(context.needle_recall(selected)))
            grid[i, j] = float(np.mean(scores))
    return NIAHResult(policy_name=policy.name, config=config, grid=grid)
