"""RULER-style long-context evaluation on the synthetic substrate.

RULER stresses behaviours beyond single-needle search; the synthetic suite
mirrors its task families:

* **single** — single-needle retrieval (NIAH).
* **multikey** — several needles must all be recovered.
* **multihop** — variable-tracking: a chain of facts where each hop issues a
  fresh query that can only be answered if the previous hop was recovered.
* **aggregation** — the answer depends on broad coverage of relevant tokens
  scattered through the context (common-words style), which punishes small
  token budgets more than needle tasks do.

The composite score is the mean over task families, evaluated per context
length — the layout of Table 3.  ``reuse_interval_sweep`` additionally models
Table 6: with a reuse interval of C the selector's query is up to C-1 decode
steps stale, and accuracy degrades only once the query has drifted too far.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.retrieval_policies import SelectionPolicy
from repro.eval.scoring import coverage_score, recall_to_accuracy
from repro.eval.synthetic_context import generate_needle_context

__all__ = ["RulerConfig", "RulerResult", "run_ruler", "reuse_interval_sweep"]

TASK_FAMILIES = ("single", "multikey", "multihop", "aggregation")


@dataclass(frozen=True)
class RulerConfig:
    """Parameters of the synthetic RULER suite."""

    context_lengths: tuple[int, ...] = (8192, 16384, 32768)
    needle_length: int = 32
    head_dim: int = 64
    n_keys: int = 4  # needles in the multikey task
    n_hops: int = 3  # chain length in the multihop task
    aggregation_fraction: float = 0.02  # fraction of tokens that are "relevant"
    samples_per_task: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.context_lengths:
            raise ValueError("context_lengths must be non-empty")
        if self.n_keys <= 0 or self.n_hops <= 0 or self.samples_per_task <= 0:
            raise ValueError("n_keys, n_hops and samples_per_task must be positive")
        if not 0.0 < self.aggregation_fraction <= 1.0:
            raise ValueError("aggregation_fraction must be in (0, 1]")


@dataclass
class RulerResult:
    """Per-length, per-task accuracy of one policy."""

    policy_name: str
    config: RulerConfig
    scores: dict[int, dict[str, float]]

    def composite(self, context_length: int) -> float:
        per_task = self.scores[context_length]
        return float(np.mean([per_task[t] for t in TASK_FAMILIES]))

    def composites(self) -> dict[int, float]:
        return {length: self.composite(length) for length in self.scores}

    def average(self) -> float:
        return float(np.mean(list(self.composites().values())))


def _single_task(policy, length, cfg, seed) -> float:
    scores = []
    for s in range(cfg.samples_per_task):
        ctx = generate_needle_context(
            length, depth_fraction=0.5, needle_length=cfg.needle_length,
            head_dim=cfg.head_dim, seed=seed + s,
        )
        selected = policy.select_tokens(ctx)
        scores.append(recall_to_accuracy(ctx.needle_recall(selected)))
    return float(np.mean(scores))


def _multikey_task(policy, length, cfg, seed) -> float:
    scores = []
    for s in range(cfg.samples_per_task):
        ctx = generate_needle_context(
            length, depth_fraction=0.3, needle_length=cfg.needle_length,
            head_dim=cfg.head_dim, n_extra_needles=cfg.n_keys - 1, seed=seed + s,
        )
        selected = policy.select_tokens(ctx)
        recalls = [
            ctx.needle_recall(selected, needle_index=i)
            for i in range(-1, len(ctx.extra_needles))
        ]
        # All keys must be recovered; the task score is the product of per-key
        # success probabilities (graded like exact-match over multiple answers).
        scores.append(float(np.prod([recall_to_accuracy(r) for r in recalls])))
    return float(np.mean(scores))


def _multihop_task(policy, length, cfg, seed) -> float:
    scores = []
    rng = np.random.default_rng(seed)
    for s in range(cfg.samples_per_task):
        depths = rng.permutation(np.linspace(0.15, 0.85, cfg.n_hops))
        hop_score = 1.0
        for hop, depth in enumerate(depths):
            ctx = generate_needle_context(
                length, depth_fraction=float(depth), needle_length=cfg.needle_length,
                head_dim=cfg.head_dim, seed=seed + 977 * s + hop,
            )
            selected = policy.select_tokens(ctx)
            hop_score *= recall_to_accuracy(ctx.needle_recall(selected))
            if hop_score == 0.0:
                break
        scores.append(hop_score)
    return float(np.mean(scores))


def _aggregation_task(policy, length, cfg, seed) -> float:
    scores = []
    rng = np.random.default_rng(seed + 13)
    for s in range(cfg.samples_per_task):
        ctx = generate_needle_context(
            length, depth_fraction=0.5, needle_length=cfg.needle_length,
            head_dim=cfg.head_dim, seed=seed + 31 * s,
        )
        n_relevant = max(1, int(cfg.aggregation_fraction * length))
        relevant = rng.choice(length, size=n_relevant, replace=False)
        selected = policy.select_tokens(ctx)
        # Aggregation answers are mostly carried by frequent/recent evidence, so
        # coverage translates sub-linearly into accuracy.
        coverage = coverage_score(selected, relevant)
        scores.append(float(np.sqrt(coverage)))
    return float(np.mean(scores))


_TASK_RUNNERS = {
    "single": _single_task,
    "multikey": _multikey_task,
    "multihop": _multihop_task,
    "aggregation": _aggregation_task,
}


def run_ruler(policy: SelectionPolicy, config: RulerConfig | None = None) -> RulerResult:
    """Evaluate one policy on the synthetic RULER suite."""
    config = config or RulerConfig()
    scores: dict[int, dict[str, float]] = {}
    for i, length in enumerate(config.context_lengths):
        per_task = {}
        for j, task in enumerate(TASK_FAMILIES):
            per_task[task] = _TASK_RUNNERS[task](
                policy, length, config, seed=config.seed + 1009 * i + 211 * j
            )
        scores[length] = per_task
    return RulerResult(policy_name=policy.name, config=config, scores=scores)


def reuse_interval_sweep(
    policy: SelectionPolicy,
    reuse_intervals: tuple[int, ...] = (1, 2, 4, 8, 16),
    context_length: int = 16384,
    decode_steps: int = 48,
    focus_period: int = 12,
    n_needles: int = 6,
    head_dim: int = 64,
    samples: int = 3,
    seed: int = 0,
) -> dict[int, float]:
    """Accuracy as a function of the page-selection reuse interval (Table 6).

    Adjacent decode queries attend to similar history (temporal locality), but
    the fact a query needs does change occasionally: here the *focus needle*
    switches every ``focus_period`` decode steps among ``n_needles`` facts with
    distinct directions.  With reuse interval ``C`` the cached selection was
    computed with a query up to ``C - 1`` steps stale, so it can straddle a
    focus switch; accuracy is the average recall of the *current* focus needle.
    Small intervals lose essentially nothing, large intervals start missing the
    switches — the behaviour of Table 6.
    """
    if decode_steps <= 0 or samples <= 0 or focus_period <= 0 or n_needles <= 0:
        raise ValueError("decode_steps, samples, focus_period and n_needles must be positive")
    results: dict[int, float] = {}
    for interval in reuse_intervals:
        if interval < 1:
            raise ValueError("reuse intervals must be >= 1")
        step_scores = []
        for s in range(samples):
            ctx = generate_needle_context(
                context_length,
                depth_fraction=0.5,
                head_dim=head_dim,
                n_extra_needles=n_needles - 1,
                distinct_extra_directions=True,
                seed=seed + 53 * s,
            )
            cached_selection = None
            for step in range(decode_steps):
                focus = (step // focus_period) % n_needles
                query = ctx.query_for_needle(focus)
                if step % interval == 0 or cached_selection is None:
                    cached_selection = policy.select_tokens(ctx, query=query)
                needle_index = -1 if focus == 0 else focus - 1
                step_scores.append(
                    recall_to_accuracy(ctx.needle_recall(cached_selection, needle_index))
                )
        results[interval] = float(np.mean(step_scores))
    return results
