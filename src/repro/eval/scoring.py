"""Shared scoring helpers for the accuracy harnesses."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_to_accuracy", "grid_average", "coverage_score"]


def recall_to_accuracy(recall: float, threshold: float = 0.9) -> float:
    """Convert needle recall into a task accuracy in [0, 1].

    A needle question is answered only when (nearly) the whole needle span is
    attended to — quoting the fact requires reading it, so the default
    threshold is 0.9 of the span.  Partial coverage below the threshold earns
    proportional partial credit (the answer degrades rather than failing
    outright), matching how NIAH grading assigns intermediate scores.
    """
    if not 0.0 <= recall <= 1.0:
        raise ValueError("recall must be in [0, 1]")
    if recall >= threshold:
        return 1.0
    return recall / threshold


def coverage_score(selected: np.ndarray, relevant: np.ndarray) -> float:
    """Fraction of relevant token positions covered by the selection."""
    relevant = np.asarray(relevant).ravel()
    if relevant.size == 0:
        return 1.0
    selected_set = set(int(t) for t in np.asarray(selected).ravel())
    return sum(1 for t in relevant if int(t) in selected_set) / relevant.size


def grid_average(grid: np.ndarray) -> float:
    """Average accuracy over a (context length x depth) result grid."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.size == 0:
        raise ValueError("grid must be non-empty")
    return float(grid.mean())
