"""Synthetic long-context key/query geometry for retrieval evaluation.

The generator produces three ingredients whose interaction drives every
accuracy experiment in the paper:

* **Haystack keys** follow a locality-preserving random walk, so adjacent
  tokens have similar keys — the "semantic continuity of natural language"
  that gives attention its spatial locality (§3.5.3).
* **Distractor spikes**: occasional tokens carry one large coordinate in a
  random channel.  A large page accumulates several spikes in *different*
  channels, so its channel-wise min/max statistics become loose upper bounds
  ("homogenised and less representative", §3.5.2) — this is what breaks
  flat Quest-style selection at big page sizes (Fig. 6).
* **Needle keys** are aligned with the probe query, so their true dot product
  (and hence their Eq. 2 score at fine granularity) stands out.

A retrieval policy answers the needle question iff the tokens it keeps cover
the needle span; recall against the needle positions is the accuracy signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyntheticContext", "generate_needle_context"]


@dataclass
class SyntheticContext:
    """One synthetic long-context retrieval instance."""

    keys: np.ndarray  # (n_tokens, n_kv_heads, head_dim)
    query: np.ndarray  # (n_heads, head_dim)
    needle_positions: np.ndarray  # token indices holding the needle fact
    depth_fraction: float
    extra_needles: list[np.ndarray] = field(default_factory=list)
    # Unit direction of each needle's keys (primary first, then extras); a
    # query aligned with a needle's direction retrieves that needle.
    needle_directions: list[np.ndarray] = field(default_factory=list)

    @property
    def context_length(self) -> int:
        return int(self.keys.shape[0])

    @property
    def n_kv_heads(self) -> int:
        return int(self.keys.shape[1])

    @property
    def head_dim(self) -> int:
        return int(self.keys.shape[2])

    def needle_recall(self, selected_tokens: np.ndarray, needle_index: int = -1) -> float:
        """Fraction of the needle span covered by ``selected_tokens``.

        ``needle_index`` -1 refers to the primary needle; 0..n-1 to extras.
        """
        positions = (
            self.needle_positions if needle_index < 0 else self.extra_needles[needle_index]
        )
        if positions.size == 0:
            return 1.0
        selected = set(int(t) for t in np.asarray(selected_tokens).ravel())
        hit = sum(1 for p in positions if int(p) in selected)
        return hit / positions.size

    def all_needle_positions(self) -> list[np.ndarray]:
        return [self.needle_positions] + list(self.extra_needles)

    def query_for_needle(self, needle_index: int) -> np.ndarray:
        """A probe query aligned with the given needle (0 = primary needle)."""
        direction = self.needle_directions[needle_index]
        return np.tile(direction[None, :], (self.query.shape[0], 1)) * np.sqrt(self.head_dim)


def _locality_random_walk(
    rng: np.random.Generator, n_tokens: int, n_kv_heads: int, head_dim: int, locality: float
) -> np.ndarray:
    """Keys with spatial locality: a stationary AR(1) process along the token axis."""
    from scipy.signal import lfilter

    noise = rng.normal(size=(n_tokens, n_kv_heads, head_dim))
    if locality <= 0.0:
        return noise
    decay = np.sqrt(max(0.0, 1.0 - locality**2))
    # y[t] = locality * y[t-1] + decay * x[t]  (unit stationary variance)
    keys = lfilter([decay], [1.0, -locality], noise, axis=0)
    keys[0] = noise[0]
    return keys


def _plant_needle(
    keys: np.ndarray,
    rng: np.random.Generator,
    query_direction: np.ndarray,
    start: int,
    length: int,
    strength: float,
) -> np.ndarray:
    """Overwrite ``length`` tokens starting at ``start`` with query-aligned keys."""
    n_tokens, n_kv_heads, head_dim = keys.shape
    end = min(n_tokens, start + length)
    positions = np.arange(start, end)
    for pos in positions:
        jitter = rng.normal(scale=0.05, size=(n_kv_heads, head_dim))
        keys[pos] = strength * query_direction[None, :] + jitter
    return positions


def generate_needle_context(
    context_length: int,
    depth_fraction: float,
    needle_length: int = 32,
    n_kv_heads: int = 1,
    head_dim: int = 64,
    needle_strength: float = 1.5,
    locality: float = 0.85,
    spike_rate: float = 1 / 16,
    spike_magnitude: float = 6.0,
    n_extra_needles: int = 0,
    distinct_extra_directions: bool = False,
    seed: int = 0,
) -> SyntheticContext:
    """Generate a needle-in-a-haystack instance.

    Parameters
    ----------
    context_length:
        Number of haystack tokens.
    depth_fraction:
        Where the needle sits, as a fraction of the context (0 = start, 1 = end).
    needle_strength:
        Alignment of the needle keys with the query; controls how much the
        needle's true attention score exceeds the haystack background.
    spike_rate, spike_magnitude:
        Density and size of single-channel distractor spikes; these determine
        how quickly page-level min/max statistics lose resolution as the page
        size grows.
    n_extra_needles:
        Additional needles (for multi-key RULER tasks), placed uniformly.
    distinct_extra_directions:
        When set, each extra needle gets its own random direction (retrievable
        only by a query aligned with it); otherwise all needles share the
        primary query direction.
    """
    if context_length <= 0:
        raise ValueError("context_length must be positive")
    if not 0.0 <= depth_fraction <= 1.0:
        raise ValueError("depth_fraction must be in [0, 1]")
    if needle_length <= 0 or needle_length > context_length:
        raise ValueError("needle_length must be in [1, context_length]")
    rng = np.random.default_rng(seed)

    keys = _locality_random_walk(rng, context_length, n_kv_heads, head_dim, locality)

    # Distractor spikes: one large coordinate on scattered tokens.
    n_spikes = rng.poisson(spike_rate * context_length)
    if n_spikes:
        spike_tokens = rng.integers(0, context_length, size=n_spikes)
        spike_heads = rng.integers(0, n_kv_heads, size=n_spikes)
        spike_channels = rng.integers(0, head_dim, size=n_spikes)
        keys[spike_tokens, spike_heads, spike_channels] += spike_magnitude * rng.choice(
            [-1.0, 1.0], size=n_spikes
        )

    # Query: positive-ish direction so channel maxima matter for Eq. 2 bounds.
    query_direction = rng.normal(size=head_dim)
    query_direction /= np.linalg.norm(query_direction)
    query = np.tile(query_direction[None, :], (n_kv_heads, 1)) * np.sqrt(head_dim)

    # Primary needle.
    max_start = max(0, context_length - needle_length)
    start = int(round(depth_fraction * max_start))
    needle_positions = _plant_needle(
        keys, rng, query_direction * np.sqrt(head_dim), start, needle_length, needle_strength
    )
    directions = [query_direction]

    extra = []
    for i in range(n_extra_needles):
        extra_start = int(rng.integers(0, max_start + 1))
        if distinct_extra_directions:
            direction = rng.normal(size=head_dim)
            direction /= np.linalg.norm(direction)
        else:
            direction = query_direction
        extra.append(
            _plant_needle(
                keys,
                rng,
                direction * np.sqrt(head_dim),
                extra_start,
                needle_length,
                needle_strength,
            )
        )
        directions.append(direction)

    return SyntheticContext(
        keys=keys,
        query=query,
        needle_positions=needle_positions,
        depth_fraction=depth_fraction,
        extra_needles=extra,
        needle_directions=directions,
    )
