"""Token-selection policies used by the accuracy harnesses.

Each policy answers one question: *given the KV cache geometry of a system and
a decode query, which tokens does its attention actually read?*  Accuracy on
the synthetic retrieval tasks is then the recall of the needle span under that
selection.  Dense attention reads everything; streaming heads read sink +
local; Quest-style selection reads the top pages ranked by flat page
statistics; LServe reads the top physical pages ranked by hierarchical
(logical-page) statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.hierarchical_paging import (
    HierarchicalPagingConfig,
    logical_page_scores,
    physical_page_scores,
    select_top_pages,
)
from repro.eval.synthetic_context import SyntheticContext
from repro.kvcache.kv_stats import compute_page_key_stats

__all__ = [
    "SelectionPolicy",
    "DenseSelection",
    "StreamingSelection",
    "FlatPageSelection",
    "HierarchicalPageSelection",
    "policy_for_system",
]


class SelectionPolicy(Protocol):
    """Maps a synthetic context to the set of token indices attention reads."""

    name: str

    def select_tokens(self, context: SyntheticContext, query: np.ndarray | None = None) -> np.ndarray:
        """Return the selected token indices (1-D int array)."""


def _key_stats(context: SyntheticContext, logical_page_size: int) -> tuple[np.ndarray, np.ndarray]:
    stats = compute_page_key_stats(context.keys, logical_page_size)
    kmin = np.stack([s.kmin for s in stats])
    kmax = np.stack([s.kmax for s in stats])
    return kmin, kmax


def _pages_to_tokens(pages: np.ndarray, page_size: int, n_tokens: int) -> np.ndarray:
    tokens = []
    for p in pages:
        start = int(p) * page_size
        tokens.append(np.arange(start, min(start + page_size, n_tokens)))
    if not tokens:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(tokens)


@dataclass
class DenseSelection:
    """Dense attention: every token is read."""

    name: str = "Dense"

    def select_tokens(self, context: SyntheticContext, query: np.ndarray | None = None) -> np.ndarray:
        return np.arange(context.context_length)


@dataclass
class StreamingSelection:
    """Streaming (Λ-mask) attention: sink tokens plus the local window only."""

    sink_tokens: int = 128
    local_tokens: int = 256
    name: str = "StreamingLLM"

    def select_tokens(self, context: SyntheticContext, query: np.ndarray | None = None) -> np.ndarray:
        n = context.context_length
        sink = np.arange(min(self.sink_tokens, n))
        local = np.arange(max(0, n - self.local_tokens), n)
        return np.unique(np.concatenate([sink, local]))


@dataclass
class FlatPageSelection:
    """Quest-style selection: page statistics at *physical* page granularity.

    This is the baseline whose accuracy collapses when the physical page size
    grows (the page-size dilemma, Fig. 6): statistics over large pages become
    loose upper bounds and the needle page no longer stands out.
    """

    page_size: int = 16
    token_budget: int = 4096
    sink_pages: int = 1
    local_pages: int = 1
    name: str = "Quest"

    def select_tokens(self, context: SyntheticContext, query: np.ndarray | None = None) -> np.ndarray:
        q = context.query if query is None else query
        kmin, kmax = _key_stats(context, self.page_size)
        scores = logical_page_scores(q, kmin, kmax, gqa_group_size=1)
        budget_pages = max(1, self.token_budget // self.page_size)
        pages = select_top_pages(
            scores, budget_pages, sink_pages=self.sink_pages, local_pages=self.local_pages
        )[0]
        return _pages_to_tokens(pages, self.page_size, context.context_length)


@dataclass
class HierarchicalPageSelection:
    """LServe's hierarchical paging: logical-page statistics, physical-page selection."""

    physical_page_size: int = 64
    logical_page_size: int = 16
    token_budget: int = 4096
    sink_pages: int = 1
    local_pages: int = 1
    name: str = "LServe"

    def select_tokens(self, context: SyntheticContext, query: np.ndarray | None = None) -> np.ndarray:
        q = context.query if query is None else query
        cfg = HierarchicalPagingConfig(
            physical_page_size=self.physical_page_size,
            logical_page_size=self.logical_page_size,
            token_budget=self.token_budget,
        )
        kmin, kmax = _key_stats(context, cfg.logical_page_size)
        logical = logical_page_scores(q, kmin, kmax, gqa_group_size=1)
        physical = physical_page_scores(logical, cfg.logical_pages_per_physical)
        pages = select_top_pages(
            physical, cfg.budget_pages, sink_pages=self.sink_pages, local_pages=self.local_pages
        )[0]
        return _pages_to_tokens(pages, self.physical_page_size, context.context_length)


def policy_for_system(name: str, token_budget: int = 4096) -> SelectionPolicy:
    """Selection policy matching a named serving system's retrieval behaviour."""
    lowered = name.lower()
    if lowered in ("dense", "vllm", "qserve", "minference", "duoattention"):
        # DuoAttention / MInference keep full-attention retrieval heads, so a
        # needle reachable by dense attention remains reachable.
        return DenseSelection(name=name)
    if lowered in ("streamingllm", "streaming"):
        return StreamingSelection(name=name)
    if lowered == "quest":
        return FlatPageSelection(name=name, token_budget=token_budget)
    if lowered.startswith("lserve"):
        return HierarchicalPageSelection(name=name, token_budget=token_budget)
    raise KeyError(f"no selection policy registered for system {name!r}")
