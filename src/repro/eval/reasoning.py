"""Reasoning-task evaluation (AIME / MATH500, Table 4) on the synthetic substrate.

Reasoning-centric models (DeepSeek-R1 distillations) generate long chains of
thought and must repeatedly *re-read facts they derived earlier in their own
trace*.  The failure mode sparsity could introduce is losing one of those
intermediate facts from the attended KV set.  Each synthetic "problem" is a
reasoning trace of a given length with several intermediate facts planted at
earlier positions; the problem is solved only if every fact remains retrievable
under the system's selection policy.  The dense pass rate is anchored to the
published dense accuracy; sparse systems are scaled by their measured
solve rate relative to dense.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.retrieval_policies import DenseSelection, SelectionPolicy
from repro.eval.scoring import recall_to_accuracy
from repro.eval.synthetic_context import generate_needle_context

__all__ = ["ReasoningConfig", "DENSE_REASONING_ANCHORS", "run_reasoning_eval"]

# Published dense accuracies of DeepSeek-R1-Distill-Llama-8B (Table 4).
DENSE_REASONING_ANCHORS: dict[str, float] = {
    "AIME@2024": 43.3,
    "MATH500": 84.2,
}


@dataclass(frozen=True)
class ReasoningConfig:
    """Synthetic reasoning-trace workload."""

    benchmark: str = "MATH500"
    trace_length: int = 16384
    facts_per_problem: int = 4
    n_problems: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.benchmark not in DENSE_REASONING_ANCHORS:
            raise KeyError(f"unknown reasoning benchmark {self.benchmark!r}")
        if self.trace_length <= 0 or self.facts_per_problem <= 0 or self.n_problems <= 0:
            raise ValueError("trace_length, facts_per_problem and n_problems must be positive")


def _solve_rate(policy: SelectionPolicy, config: ReasoningConfig) -> float:
    """Fraction of synthetic problems whose intermediate facts all stay retrievable."""
    solved = []
    for p in range(config.n_problems):
        ctx = generate_needle_context(
            context_length=config.trace_length,
            depth_fraction=0.4,
            n_extra_needles=config.facts_per_problem - 1,
            seed=config.seed + 31 * p,
        )
        selected = policy.select_tokens(ctx)
        fact_scores = [
            recall_to_accuracy(ctx.needle_recall(selected, i))
            for i in range(-1, len(ctx.extra_needles))
        ]
        solved.append(float(np.prod(fact_scores)))
    return float(np.mean(solved))


def run_reasoning_eval(
    policy: SelectionPolicy, config: ReasoningConfig | None = None
) -> float:
    """Accuracy of ``policy`` on the synthetic reasoning benchmark (anchored scale)."""
    config = config or ReasoningConfig()
    anchor = DENSE_REASONING_ANCHORS[config.benchmark]
    dense_rate = _solve_rate(DenseSelection(), config)
    rate = _solve_rate(policy, config)
    if dense_rate == 0.0:
        return 0.0
    return anchor * rate / dense_rate
