"""Accuracy-evaluation harnesses on synthetic long-context retrieval workloads.

The datasets the paper evaluates (NIAH, RULER, LongBench, AIME/MATH500) are
not available offline, and running them would require the real model weights.
The accuracy phenomena the paper reports, however, are properties of *which KV
tokens the sparse attention policy keeps*: a needle is answered iff the pages
holding it survive page selection; RULER's harder tasks need several scattered
pages at once; reasoning traces need the model to re-read facts it generated
earlier.  This subpackage therefore generates synthetic key/query geometry
with the same structure (locality-preserving haystack, distractor spikes,
query-aligned needles) and measures retrieval recall under each system's
selection policy — reproducing the page-size dilemma (Fig. 6), hierarchical
paging's fix (Fig. 13), the token-budget and reuse-interval sensitivities
(Tables 3/6) and the dense-vs-LServe accuracy parity (Tables 2/4/8).
"""

from repro.eval.synthetic_context import SyntheticContext, generate_needle_context
from repro.eval.retrieval_policies import (
    SelectionPolicy,
    DenseSelection,
    StreamingSelection,
    FlatPageSelection,
    HierarchicalPageSelection,
    policy_for_system,
)
from repro.eval.niah import NIAHConfig, NIAHResult, run_niah
from repro.eval.ruler import RulerConfig, RulerResult, run_ruler, reuse_interval_sweep
from repro.eval.longbench import LONGBENCH_TASKS, run_longbench
from repro.eval.reasoning import ReasoningConfig, run_reasoning_eval

__all__ = [
    "SyntheticContext",
    "generate_needle_context",
    "SelectionPolicy",
    "DenseSelection",
    "StreamingSelection",
    "FlatPageSelection",
    "HierarchicalPageSelection",
    "policy_for_system",
    "NIAHConfig",
    "NIAHResult",
    "run_niah",
    "RulerConfig",
    "RulerResult",
    "run_ruler",
    "reuse_interval_sweep",
    "LONGBENCH_TASKS",
    "run_longbench",
    "ReasoningConfig",
    "run_reasoning_eval",
]
