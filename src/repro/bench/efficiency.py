"""Efficiency experiments (cost-model based): Figs. 2, 10, 11, 12, 14, 15, 16
and Tables 1, 5, 7, plus the head-ratio ablation and the functional kernel
check."""

from __future__ import annotations

import numpy as np

from repro.attention.flash_reference import blockwise_attention
from repro.attention.masks import block_streaming_mask
from repro.baselines.systems import (
    all_decode_baselines,
    all_prefill_baselines,
    lserve_dynamic_only_policy,
    lserve_policy,
    lserve_static_only_policy,
    minference_policy,
    qserve_policy,
    quest_policy,
    vllm_policy,
)
from repro.bench.tables import Table
from repro.gpu.cost_model import SystemCostModel
from repro.gpu.device import A100_80G, L40S_48G, DeviceSpec
from repro.gpu.kernels import KernelCostModel
from repro.gpu.simulator import LatencySimulator, OutOfMemoryError
from repro.model.configs import LLAMA_2_7B, LLAMA_3_8B, MINITRON_4B, ModelConfig
from repro.serving.engine import ServingEngine
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerConfig

__all__ = [
    "fig02_latency_breakdown",
    "tab01_page_size_latency",
    "fig10_decode_speed",
    "fig11_prefill_speed",
    "tab05_quest_comparison",
    "fig12_prefill_kernel",
    "fig14_selector_overhead",
    "fig15_attention_breakdown",
    "fig16_e2e_breakdown",
    "tab07_artifact_latency",
    "ablation_head_ratio",
    "kernel_functional_check",
]

_K = 1024


def fig02_latency_breakdown() -> Table:
    """Figure 2: prefill/decode latency breakdown vs input length (Llama-3-8B, A100)."""
    table = Table(
        title="Figure 2 — Latency breakdown of Llama-3-8B on A100 (dense FP16 serving)",
        columns=["stage", "input length", "attention frac", "gemm frac", "other frac"],
        notes="Attention dominates both stages as the sequence grows (paper: >50% at 64K, ~75% at 128K).",
    )
    cost = SystemCostModel(LLAMA_3_8B, A100_80G, vllm_policy())
    for length in (8 * _K, 16 * _K, 32 * _K, 64 * _K, 128 * _K):
        pre = cost.prefill_breakdown(length)
        dec = cost.decode_step_breakdown(length)
        table.add_row("prefill", f"{length // _K}K", pre.attention_fraction,
                      pre.gemm_s / pre.total_s, (pre.selector_s + pre.other_s) / pre.total_s)
        table.add_row("decode", f"{length // _K}K", dec.attention_fraction,
                      dec.gemm_s / dec.total_s, (dec.selector_s + dec.other_s) / dec.total_s)
    return table


def tab01_page_size_latency() -> Table:
    """Table 1: QServe decode latency (ms/step) vs KV page size, Llama-3-8B, batch 32."""
    table = Table(
        title="Table 1 — Per-step decode latency (ms) of QServe vs page size (Llama-3-8B, batch 32, A100)",
        columns=["seq len", "page 16", "page 32", "page 64", "page 128"],
        notes="Small pages under-utilise HBM bandwidth; paper reports up to 1.52x slowdown for page 16.",
    )
    rows = {}
    for seq in (512, 1024, 2048, 4096, 8192):
        row = [f"{seq}"]
        for page in (16, 32, 64, 128):
            policy = qserve_policy().with_overrides(page_size=page)
            latency = SystemCostModel(LLAMA_3_8B, A100_80G, policy).decode_step_latency(
                seq, batch=32
            )
            row.append(latency * 1e3)
        rows[seq] = row
        table.add_row(*row)
    slowdowns = [
        max(rows[seq][i] / rows[seq][4] for seq in rows) for i in range(1, 5)
    ]
    table.add_row("max slowdown", *slowdowns)
    return table


def _relative_decode_table(
    model: ModelConfig, device: DeviceSpec, lengths: tuple[int, ...], batch: int
) -> Table:
    systems = all_decode_baselines()
    lserve = next(p for p in systems if p.name == "LServe")
    table = Table(
        title=f"Figure 10 — Decode throughput relative to LServe ({model.name}, {device.name}, batch {batch})",
        columns=["system"] + [f"{length // _K}K" for length in lengths] + ["geomean"],
        notes="1.00 = LServe; OOM marks configurations whose KV cache does not fit.",
    )
    lserve_latency = {}
    for length in lengths:
        lserve_latency[length] = LatencySimulator(model, device, lserve).decode_step_latency(
            length, batch
        )
    for policy in systems:
        sim = LatencySimulator(model, device, policy)
        ratios: list[float | str] = []
        numeric = []
        for length in lengths:
            try:
                latency = sim.decode_step_latency(length, batch)
                rel = lserve_latency[length] / latency
                ratios.append(rel)
                numeric.append(rel)
            except OutOfMemoryError:
                ratios.append("OOM")
        geomean = float(np.exp(np.mean(np.log(numeric)))) if numeric else float("nan")
        table.add_row(policy.name, *ratios, geomean)
    return table


def fig10_decode_speed() -> list[Table]:
    """Figure 10: decoding speed vs baselines on the paper's four model/GPU combos."""
    return [
        _relative_decode_table(LLAMA_3_8B, A100_80G, (64 * _K, 96 * _K, 128 * _K, 192 * _K, 256 * _K, 320 * _K), batch=1),
        _relative_decode_table(LLAMA_2_7B, A100_80G, (16 * _K, 32 * _K, 64 * _K, 96 * _K, 128 * _K), batch=1),
        _relative_decode_table(MINITRON_4B, A100_80G, (64 * _K, 128 * _K, 256 * _K, 512 * _K), batch=1),
        _relative_decode_table(LLAMA_3_8B, L40S_48G, (32 * _K, 64 * _K, 96 * _K, 128 * _K, 160 * _K), batch=1),
    ]


def fig11_prefill_speed() -> list[Table]:
    """Figure 11: prefilling speed vs baselines (Llama-3-8B and Llama-2-7B, A100)."""
    tables = []
    for model, lengths in (
        (LLAMA_3_8B, (64 * _K, 96 * _K, 128 * _K, 192 * _K, 256 * _K)),
        (LLAMA_2_7B, (16 * _K, 32 * _K, 64 * _K, 96 * _K, 128 * _K)),
    ):
        systems = all_prefill_baselines()
        lserve = next(p for p in systems if p.name == "LServe")
        lserve_lat = {
            n: LatencySimulator(model, A100_80G, lserve).prefill_latency(n) for n in lengths
        }
        table = Table(
            title=f"Figure 11 — Prefill throughput relative to LServe ({model.name}, A100)",
            columns=["system"] + [f"{n // _K}K" for n in lengths] + ["geomean"],
            notes="1.00 = LServe.",
        )
        for policy in systems:
            sim = LatencySimulator(model, A100_80G, policy)
            ratios, numeric = [], []
            for n in lengths:
                try:
                    rel = lserve_lat[n] / sim.prefill_latency(n)
                    ratios.append(rel)
                    numeric.append(rel)
                except OutOfMemoryError:
                    ratios.append("OOM")
            geomean = float(np.exp(np.mean(np.log(numeric)))) if numeric else float("nan")
            table.add_row(policy.name, *ratios, geomean)
        tables.append(table)
    return tables


def tab05_quest_comparison() -> Table:
    """Table 5: LServe vs Quest latency on Llama-2-7B (prefill seconds, decode ms)."""
    lengths = (4 * _K, 8 * _K, 16 * _K, 32 * _K, 64 * _K)
    quest = LatencySimulator(LLAMA_2_7B, A100_80G, quest_policy())
    lserve = LatencySimulator(LLAMA_2_7B, A100_80G, lserve_policy())
    table = Table(
        title="Table 5 — LServe vs Quest on Llama-2-7B (A100)",
        columns=["seq len", "Quest prefill (s)", "LServe prefill (s)", "prefill speedup",
                 "Quest decode (ms)", "LServe decode (ms)", "decode speedup"],
        notes="Paper reports 1.5-2.1x prefill and 1.3-1.5x decode speedups.",
    )
    for n in lengths:
        qp = quest.prefill_latency(n)
        lp = lserve.prefill_latency(n)
        qd = quest.decode_step_latency(n) * 1e3
        ld = lserve.decode_step_latency(n) * 1e3
        table.add_row(f"{n // _K}K", qp, lp, qp / lp, qd, ld, qd / ld)
    return table


def fig12_prefill_kernel() -> Table:
    """Figure 12: prefill sparse attention kernel latency vs sparsity level."""
    kernels = KernelCostModel(A100_80G)
    n = 64 * _K
    cfg = LLAMA_3_8B
    dense = kernels.prefill_attention_latency(n, n, cfg.n_heads, cfg.head_dim)
    table = Table(
        title="Figure 12 — Prefill attention kernel latency vs sparsity (Llama-3-8B layer, 64K, A100)",
        columns=["sparsity %", "MInference kernel (ms)", "LServe kernel (ms)", "oracle (ms)", "LServe vs MInference"],
        notes=f"Dense attention reference: {dense * 1e3:.1f} ms per layer; oracle = dense * (1 - sparsity).",
    )
    for sparsity in (0.4, 0.5, 0.6, 0.7, 0.8, 0.9):
        visited = 1.0 - sparsity
        lserve_lat = kernels.prefill_attention_latency(
            n, n, cfg.n_heads, cfg.head_dim, visited_fraction=visited
        )
        minference_lat = kernels.prefill_attention_latency(
            n, n, cfg.n_heads, cfg.head_dim, visited_fraction=visited,
            kernel_efficiency_scale=minference_policy().prefill_kernel_efficiency,
        )
        oracle = dense * visited
        table.add_row(
            sparsity * 100, minference_lat * 1e3, lserve_lat * 1e3, oracle * 1e3,
            minference_lat / lserve_lat,
        )
    return table


def fig14_selector_overhead() -> Table:
    """Figure 14: page selector vs sparse attention latency, vanilla vs reusable selector."""
    kernels = KernelCostModel(A100_80G)
    cfg = LLAMA_3_8B
    policy = lserve_policy()
    table = Table(
        title="Figure 14 — Decode-stage dynamic sparsity cost per step, all layers (Llama-3-8B, A100)",
        columns=["context", "sparse attention (ms)", "vanilla selector (ms)", "reusable selector (ms)"],
        notes="The vanilla selector grows linearly and overtakes the budget-bounded attention beyond ~128K; reuse (interval 4) removes that bottleneck.",
    )
    dense_kv_heads = cfg.n_kv_heads // 2
    for length in (8 * _K, 16 * _K, 32 * _K, 64 * _K, 128 * _K, 256 * _K):
        attn = cfg.n_layers * kernels.decode_attention_latency(
            min(length, policy.decode_token_budget or length), dense_kv_heads,
            cfg.head_dim, kv_bits=policy.kv_bits, page_size=policy.page_size,
        )
        selector = cfg.n_layers * kernels.page_selector_latency(
            length // policy.effective_logical_page_size
        )
        table.add_row(f"{length // _K}K", attn * 1e3, selector * 1e3, selector / policy.reuse_interval * 1e3)
    return table


def fig15_attention_breakdown() -> Table:
    """Figure 15: single-layer decode attention latency under each sparsity mode (Llama-2-7B)."""
    kernels = KernelCostModel(A100_80G)
    cfg = LLAMA_2_7B
    table = Table(
        title="Figure 15 — Decode attention latency per layer (Llama-2-7B, A100, µs)",
        columns=["context", "dense", "+static (50%)", "+dynamic (4K budget)", "LServe (both)"],
        notes="Static sparsity helps at short contexts; dynamic sparsity bounds long-context cost to a constant.",
    )
    budget = 4096
    for length in (4 * _K, 8 * _K, 16 * _K, 32 * _K, 64 * _K, 128 * _K, 256 * _K):
        def attn(tokens, heads):
            if heads == 0:
                return 0.0
            return kernels.decode_attention_latency(tokens, heads, cfg.head_dim, kv_bits=8, page_size=64)
        dense = attn(length, cfg.n_kv_heads)
        static = attn(length, cfg.n_kv_heads // 2) + attn(min(length, 384), cfg.n_kv_heads // 2)
        dynamic = attn(min(length, budget), cfg.n_kv_heads)
        both = attn(min(length, budget), cfg.n_kv_heads // 2) + attn(min(length, 384), cfg.n_kv_heads // 2)
        table.add_row(f"{length // _K}K", dense * 1e6, static * 1e6, dynamic * 1e6, both * 1e6)
    return table


def _served_decode_step_latency(
    policy, length: int, output_tokens: int = 9, model: ModelConfig = LLAMA_3_8B
) -> float:
    """Per-step decode latency measured through the serving front door.

    One ``length``-token request is served end to end by a
    ``ServingEngine`` over the policy's cost-model backend, and the per-token
    decode latency is read off the request's :class:`ServingMetrics` record —
    the same path real serving runs report through.
    """
    latency = LatencySimulator(model, A100_80G, policy)
    engine = ServingEngine(
        latency.as_backend(),
        SchedulerConfig(max_batch_size=1, kv_token_capacity=8 * 1024 * 1024),
    )
    metrics = engine.run(
        [Request("probe", prompt_tokens=length, max_new_tokens=output_tokens)]
    )
    return metrics.records[0].time_per_output_token_s


def fig16_e2e_breakdown() -> Table:
    """Figure 16: end-to-end decode throughput breakdown (Llama-3-8B, unit batch)."""
    table = Table(
        title="Figure 16 — End-to-end decode throughput normalised to LServe (Llama-3-8B, A100, batch 1)",
        columns=["context", "dense attention", "+50% streaming heads", "+dynamic sparsity", "LServe"],
        notes="Per-step latencies measured through ServingEngine runs; ablations share "
        "LServe's quantized serving stack; static sparsity dominates the gains at "
        "short contexts, dynamic sparsity at long contexts.",
    )
    systems = {
        "dense": lserve_policy().with_overrides(
            name="LServe-DenseAblation",
            streaming_head_ratio=0.0,
            decode_token_budget=None,
            prefill_sparse=False,
        ),
        "static": lserve_static_only_policy(),
        "dynamic": lserve_dynamic_only_policy(),
        "lserve": lserve_policy(),
    }
    for length in (4 * _K, 8 * _K, 16 * _K, 32 * _K, 64 * _K, 128 * _K, 256 * _K):
        served = {k: _served_decode_step_latency(p, length) for k, p in systems.items()}
        base = served["lserve"]
        row = [base / served[k] for k in ("dense", "static", "dynamic", "lserve")]
        table.add_row(f"{length // _K}K", *row)
    return table


def tab07_artifact_latency() -> Table:
    """Table 7 (artifact appendix): per-step generation latency, vLLM vs LServe."""
    table = Table(
        title="Table 7 — Generation latency (ms/step) of vLLM vs LServe (Llama-3-8B, A100)",
        columns=["seq len", "vLLM (ms)", "LServe (ms)", "speedup"],
        notes="Measured through end-to-end ServingEngine runs. "
        "Paper reference: 1.09x at 64K growing to 1.82x at 320K.",
    )
    for length in (64 * _K, 96 * _K, 128 * _K, 160 * _K, 192 * _K, 224 * _K, 256 * _K, 320 * _K):
        v = _served_decode_step_latency(vllm_policy(), length) * 1e3
        l = _served_decode_step_latency(lserve_policy(), length) * 1e3
        table.add_row(f"{length // _K}K", v, l, v / l)
    return table


def ablation_head_ratio() -> Table:
    """Extra ablation: sensitivity of decode latency to the streaming-head ratio."""
    table = Table(
        title="Ablation — Decode latency vs streaming-head ratio (Llama-3-8B, A100, 256K context)",
        columns=["streaming ratio", "decode latency (ms)", "speedup vs ratio 0"],
        notes="The paper converts 50% of heads; this sweep shows the marginal benefit of each additional quarter.",
    )
    base = None
    for ratio in (0.0, 0.25, 0.5, 0.75):
        policy = lserve_policy(streaming_head_ratio=ratio)
        latency = LatencySimulator(LLAMA_3_8B, A100_80G, policy).decode_step_latency(256 * _K) * 1e3
        if base is None:
            base = latency
        table.add_row(ratio, latency, base / latency)
    return table


def kernel_functional_check() -> Table:
    """Functional check: the block-sparse kernel skips work and matches dense output."""
    rng = np.random.default_rng(0)
    n = 512
    blk = 64
    q = rng.normal(size=(n, 4, 32))
    k = rng.normal(size=(n, 4, 32))
    v = rng.normal(size=(n, 4, 32))
    dense = blockwise_attention(q, k, v, blk, blk)
    mask = block_streaming_mask(n, n, blk, blk, sink_blocks=1, local_blocks=2)
    sparse = blockwise_attention(q, k, v, blk, blk, block_mask=mask)
    max_err = float(np.max(np.abs(
        sparse.output[:, 0] - dense.output[:, 0]
    )))  # first rows match because early blocks are inside the Λ window
    table = Table(
        title="Functional kernel check — block-sparse attention work accounting",
        columns=["kernel", "visited tiles", "total causal tiles", "sparsity", "theoretical speedup"],
        notes=f"Streaming-mask output for early rows matches dense to {max_err:.1e} (same visited blocks).",
    )
    table.add_row("dense causal", dense.visited_blocks, dense.total_blocks, dense.block_sparsity, 1.0)
    table.add_row(
        "streaming Λ", sparse.visited_blocks, sparse.total_blocks, sparse.block_sparsity,
        1.0 / (1.0 - sparse.block_sparsity),
    )
    return table
