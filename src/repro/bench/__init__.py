"""Experiment runners that regenerate every table and figure of the paper.

Each function returns a :class:`~repro.bench.tables.Table` whose rows mirror
the corresponding table/figure in the paper.  The ``benchmarks/`` directory
wraps each runner in a pytest-benchmark target and writes the formatted table
to ``benchmarks/results/``.
"""

from repro.bench.tables import Table
from repro.bench.efficiency import (
    fig02_latency_breakdown,
    tab01_page_size_latency,
    fig10_decode_speed,
    fig11_prefill_speed,
    tab05_quest_comparison,
    fig12_prefill_kernel,
    fig14_selector_overhead,
    fig15_attention_breakdown,
    fig16_e2e_breakdown,
    tab07_artifact_latency,
    ablation_head_ratio,
    kernel_functional_check,
)
from repro.bench.accuracy import (
    fig06_page_size_dilemma,
    fig09_niah,
    fig13_hierarchical_paging,
    tab02_longbench,
    tab03_ruler,
    tab04_reasoning,
    tab06_reuse_interval,
)

__all__ = [
    "Table",
    "fig02_latency_breakdown",
    "tab01_page_size_latency",
    "fig10_decode_speed",
    "fig11_prefill_speed",
    "tab05_quest_comparison",
    "fig12_prefill_kernel",
    "fig14_selector_overhead",
    "fig15_attention_breakdown",
    "fig16_e2e_breakdown",
    "tab07_artifact_latency",
    "ablation_head_ratio",
    "kernel_functional_check",
    "fig06_page_size_dilemma",
    "fig09_niah",
    "fig13_hierarchical_paging",
    "tab02_longbench",
    "tab03_ruler",
    "tab04_reasoning",
    "tab06_reuse_interval",
]
