"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled table of rows, printable and writable to a results file."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        if self.notes:
            lines.append("")
            lines.append(f"Note: {self.notes}")
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        """Write the formatted table to ``path`` (parent directories created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.format() + "\n", encoding="utf-8")
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
