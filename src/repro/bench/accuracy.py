"""Accuracy experiments (synthetic-retrieval based): Figs. 6, 9, 13 and
Tables 2, 3, 4, 6, 8.

The synthetic workloads are scaled so one bench run finishes in minutes on a
CPU: contexts go up to 64K tokens with a token budget whose ratio to the
context matches the paper's 4096-at-256K setting.  Absolute scores therefore
live on the synthetic-retrieval scale (or the anchored LongBench scale); the
relationships between systems are the reproduced quantity.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import Table
from repro.eval.longbench import DENSE_ANCHORS, run_longbench
from repro.eval.niah import NIAHConfig, run_niah
from repro.eval.reasoning import ReasoningConfig, run_reasoning_eval
from repro.eval.retrieval_policies import (
    DenseSelection,
    FlatPageSelection,
    HierarchicalPageSelection,
)
from repro.eval.ruler import RulerConfig, reuse_interval_sweep, run_ruler

__all__ = [
    "fig06_page_size_dilemma",
    "fig09_niah",
    "fig13_hierarchical_paging",
    "tab02_longbench",
    "tab03_ruler",
    "tab04_reasoning",
    "tab06_reuse_interval",
]

_K = 1024

# Budget-to-context pressure comparable to the paper's 4096 tokens at 256K.
_NIAH_GRID = NIAHConfig(
    context_lengths=(16 * _K, 32 * _K, 64 * _K),
    depth_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
    needle_strength=1.4,
    samples_per_cell=2,
)
_BUDGET = 2048


def fig06_page_size_dilemma() -> Table:
    """Figure 6: NIAH accuracy of flat (Quest-style) selection vs page size and budget."""
    table = Table(
        title="Figure 6 — NIAH accuracy of flat page selection vs page size / token budget",
        columns=["configuration", "16K", "32K", "64K", "average"],
        notes="Flat selection degrades as the physical page grows, even with a proportionally larger budget.",
    )
    configs = [
        ("dense attention", DenseSelection()),
        ("page 16, budget 2048", FlatPageSelection(page_size=16, token_budget=_BUDGET)),
        ("page 32, budget 2048", FlatPageSelection(page_size=32, token_budget=_BUDGET)),
        ("page 64, budget 2048", FlatPageSelection(page_size=64, token_budget=_BUDGET)),
        ("page 32, budget 4096", FlatPageSelection(page_size=32, token_budget=2 * _BUDGET)),
        ("page 64, budget 8192", FlatPageSelection(page_size=64, token_budget=4 * _BUDGET)),
    ]
    for label, policy in configs:
        result = run_niah(policy, _NIAH_GRID)
        per_length = [result.accuracy_at_length(n) for n in _NIAH_GRID.context_lengths]
        table.add_row(label, *per_length, result.average_accuracy)
    return table


def fig09_niah() -> Table:
    """Figure 9: NIAH accuracy, dense attention vs LServe."""
    table = Table(
        title="Figure 9 — NIAH accuracy: dense vs LServe (hierarchical paging, 2048-token budget)",
        columns=["system", "16K", "32K", "64K", "average"],
        notes="LServe preserves the dense model's needle retrieval across lengths and depths.",
    )
    for label, policy in (
        ("Dense", DenseSelection()),
        ("LServe", HierarchicalPageSelection(physical_page_size=64, logical_page_size=16, token_budget=_BUDGET)),
    ):
        result = run_niah(policy, _NIAH_GRID)
        per_length = [result.accuracy_at_length(n) for n in _NIAH_GRID.context_lengths]
        table.add_row(label, *per_length, result.average_accuracy)
    return table


def fig13_hierarchical_paging() -> Table:
    """Figure 13: hierarchical paging ablation (NP=16/32/64 with NL=16, fixed budget)."""
    table = Table(
        title="Figure 13 — Hierarchical paging ablation (logical page 16, budget 2048)",
        columns=["configuration", "16K", "32K", "64K", "average"],
        notes="Larger physical pages keep full accuracy once selection uses 16-token logical statistics.",
    )
    configs = [
        ("NP=16, NL=16", HierarchicalPageSelection(16, 16, _BUDGET)),
        ("NP=32, NL=16", HierarchicalPageSelection(32, 16, _BUDGET)),
        ("NP=64, NL=16", HierarchicalPageSelection(64, 16, _BUDGET)),
        ("flat NP=64 (Quest)", FlatPageSelection(page_size=64, token_budget=_BUDGET)),
    ]
    for label, policy in configs:
        result = run_niah(policy, _NIAH_GRID)
        per_length = [result.accuracy_at_length(n) for n in _NIAH_GRID.context_lengths]
        table.add_row(label, *per_length, result.average_accuracy)
    return table


def _longbench_table(model_name: str, title: str) -> Table:
    dense_scores = run_longbench(DenseSelection(), model_name=model_name)
    lserve_scores = run_longbench(
        HierarchicalPageSelection(token_budget=4096), model_name=model_name
    )
    table = Table(
        title=title,
        columns=["benchmark", "Dense", "LServe"],
        notes="Dense column anchored to the paper's dense accuracies; LServe scaled by measured evidence recall.",
    )
    for task in list(DENSE_ANCHORS[model_name]) + ["Average"]:
        table.add_row(task, dense_scores[task] if task != "Average" else dense_scores["Average"],
                      lserve_scores[task] if task != "Average" else lserve_scores["Average"])
    return table


def tab02_longbench() -> list[Table]:
    """Table 2 (and Table 8): LongBench accuracy, dense vs LServe, both models."""
    return [
        _longbench_table("Llama-3-8B", "Table 2/8 — LongBench accuracy (Llama-3-8B)"),
        _longbench_table("Llama-2-7B", "Table 2 — LongBench accuracy (Llama-2-7B)"),
    ]


def tab03_ruler() -> Table:
    """Table 3: RULER accuracy vs context length for dense / LServe-4096 / LServe-8192."""
    cfg = RulerConfig(context_lengths=(16 * _K, 32 * _K, 64 * _K), samples_per_task=1)
    table = Table(
        title="Table 3 — RULER composite score vs context length (synthetic suite)",
        columns=["system"] + [f"{n // _K}K" for n in cfg.context_lengths],
        notes="A larger token budget recovers part of the gap to dense at long contexts, as in the paper.",
    )
    systems = (
        ("Dense", DenseSelection()),
        ("LServe-2048", HierarchicalPageSelection(token_budget=2048)),
        ("LServe-4096", HierarchicalPageSelection(token_budget=4096)),
    )
    for label, policy in systems:
        result = run_ruler(policy, cfg)
        table.add_row(label, *[result.composite(n) for n in cfg.context_lengths])
    return table


def tab04_reasoning() -> Table:
    """Table 4: AIME / MATH500 accuracy of dense vs LServe on the reasoning model."""
    table = Table(
        title="Table 4 — Reasoning accuracy (DeepSeek-R1-Distill-Llama-8B scale)",
        columns=["benchmark", "Dense", "LServe"],
        notes="Reasoning traces of 16K tokens with intermediate facts that must stay retrievable.",
    )
    rows = []
    for benchmark in ("AIME@2024", "MATH500"):
        cfg = ReasoningConfig(benchmark=benchmark, trace_length=16 * _K, n_problems=6)
        dense = run_reasoning_eval(DenseSelection(), cfg)
        lserve = run_reasoning_eval(HierarchicalPageSelection(token_budget=4096), cfg)
        rows.append((benchmark, dense, lserve))
        table.add_row(benchmark, dense, lserve)
    table.add_row("Average", float(np.mean([r[1] for r in rows])), float(np.mean([r[2] for r in rows])))
    return table


def tab06_reuse_interval() -> Table:
    """Table 6: accuracy vs page-selection reuse interval."""
    sweep = reuse_interval_sweep(
        HierarchicalPageSelection(token_budget=2048),
        reuse_intervals=(1, 2, 4, 8, 16),
        context_length=16 * _K,
        decode_steps=48,
        focus_period=12,
        samples=2,
    )
    table = Table(
        title="Table 6 — Retrieval accuracy vs reuse interval (16K context, 2048-token budget)",
        columns=["reuse interval", "accuracy"],
        notes="Little degradation up to interval 4 (LServe's default); larger intervals start missing query shifts.",
    )
    for interval, acc in sweep.items():
        table.add_row(interval, acc)
    return table
