"""A runnable NumPy decoder-only transformer with a pluggable attention backend.

The :class:`TinyTransformer` is the functional substrate used by examples and
integration tests: small enough to run on a CPU in milliseconds, but with the
same structure as the models the paper serves (RMSNorm, RoPE, GQA attention,
SwiGLU FFN, tied decode loop over a KV cache).  The attention backend is a
callable, so the same model can be run with dense attention, streaming-head
attention, or the full LServe unified sparse attention engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.attention.dense import dense_attention
from repro.attention.rope import RotaryEmbedding, apply_rope
from repro.attention.softmax import softmax
from repro.model.configs import ModelConfig
from repro.model.weights import SyntheticWeights

__all__ = ["KVCacheProtocol", "SimpleKVCache", "AttentionBackend", "TinyTransformer"]


class KVCacheProtocol(Protocol):
    """Minimal interface the transformer needs from a KV cache."""

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append new key/value tokens ``(n_new, n_kv_heads, head_dim)`` to a layer."""

    def get(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the full cached keys and values for a layer."""

    def seq_len(self) -> int:
        """Number of cached tokens (identical across layers)."""


@dataclass
class SimpleKVCache:
    """Contiguous (non-paged) KV cache — the baseline cache layout."""

    n_layers: int
    _keys: list[list[np.ndarray]] = field(init=False)
    _values: list[list[np.ndarray]] = field(init=False)

    def __post_init__(self) -> None:
        self._keys = [[] for _ in range(self.n_layers)]
        self._values = [[] for _ in range(self.n_layers)]

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        if k.shape != v.shape:
            raise ValueError("k and v must have matching shapes")
        self._keys[layer].append(np.asarray(k, dtype=np.float64))
        self._values[layer].append(np.asarray(v, dtype=np.float64))

    def get(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        if not self._keys[layer]:
            raise ValueError(f"layer {layer} cache is empty")
        return np.concatenate(self._keys[layer]), np.concatenate(self._values[layer])

    def seq_len(self) -> int:
        if not self._keys[0]:
            return 0
        return int(sum(chunk.shape[0] for chunk in self._keys[0]))


# An attention backend maps (layer, q, k, v, n_new_tokens) -> output.
# q has shape (n_new, n_heads, head_dim); k/v are the *full* cached
# keys/values (n_ctx, n_kv_heads, head_dim) including the new tokens.
AttentionBackend = Callable[[int, np.ndarray, np.ndarray, np.ndarray, int], np.ndarray]


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalisation (Llama-style, no mean centering)."""
    variance = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by the SwiGLU feed-forward network."""
    return x / (1.0 + np.exp(-x))


# Internal aliases kept for readability inside the layer loop.
_rms_norm = rms_norm
_silu = silu


def dense_backend(
    layer: int, q: np.ndarray, k: np.ndarray, v: np.ndarray, n_new: int
) -> np.ndarray:
    """Default attention backend: dense causal GQA attention."""
    del layer, n_new
    return dense_attention(q, k, v, causal=True)


class TinyTransformer:
    """Decoder-only transformer running on NumPy.

    Parameters
    ----------
    config:
        Architecture configuration (use :func:`repro.model.tiny_model_config`
        for test-sized models).
    weights:
        Optional pre-built :class:`SyntheticWeights`; generated from ``seed``
        when omitted.
    attention_backend:
        Callable computing attention for one layer; defaults to dense causal
        attention.  The LServe engine installs its unified sparse attention
        here.
    """

    def __init__(
        self,
        config: ModelConfig,
        weights: SyntheticWeights | None = None,
        seed: int = 0,
        attention_backend: AttentionBackend | None = None,
    ) -> None:
        self.config = config
        self.weights = weights if weights is not None else SyntheticWeights(config, seed=seed)
        if self.weights.config is not config and self.weights.config != config:
            raise ValueError("weights were built for a different configuration")
        self.attention_backend: AttentionBackend = attention_backend or dense_backend
        self.rope = RotaryEmbedding(
            head_dim=config.head_dim,
            base=config.rope_base,
            scaling_factor=config.rope_scaling,
        )

    # -- construction helpers ------------------------------------------------
    def new_cache(self) -> SimpleKVCache:
        """Fresh contiguous KV cache sized for this model."""
        return SimpleKVCache(n_layers=self.config.n_layers)

    # -- forward passes -------------------------------------------------------
    def forward(
        self,
        token_ids: np.ndarray,
        cache: KVCacheProtocol,
        return_hidden: bool = False,
    ) -> np.ndarray:
        """Run the model over ``token_ids`` (1-D int array of new tokens).

        New keys/values are appended to ``cache``; attention sees the whole
        cache (prefix + new tokens).  Returns logits of shape
        ``(n_new, vocab_size)``, or the final hidden states when
        ``return_hidden`` is set.
        """
        cfg = self.config
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError(f"token_ids must be 1-D, got shape {token_ids.shape}")
        if np.any((token_ids < 0) | (token_ids >= cfg.vocab_size)):
            raise ValueError("token id out of vocabulary range")
        n_new = token_ids.shape[0]
        if n_new == 0:
            raise ValueError("forward requires at least one token")
        start = cache.seq_len()
        positions = np.arange(start, start + n_new)

        hidden = self.weights.embedding[token_ids]
        for layer_idx, layer in enumerate(self.weights.layers):
            attn_in = _rms_norm(hidden, layer.attn_norm)
            q = (attn_in @ layer.wq).reshape(n_new, cfg.n_heads, cfg.head_dim)
            k = (attn_in @ layer.wk).reshape(n_new, cfg.n_kv_heads, cfg.head_dim)
            v = (attn_in @ layer.wv).reshape(n_new, cfg.n_kv_heads, cfg.head_dim)
            q = apply_rope(q, positions, self.rope)
            k = apply_rope(k, positions, self.rope)
            cache.append(layer_idx, k, v)
            k_all, v_all = cache.get(layer_idx)
            attn_out = self.attention_backend(layer_idx, q, k_all, v_all, n_new)
            attn_out = attn_out.reshape(n_new, cfg.hidden_size)
            hidden = hidden + attn_out @ layer.wo

            ffn_in = _rms_norm(hidden, layer.ffn_norm)
            gate = _silu(ffn_in @ layer.w_gate) * (ffn_in @ layer.w_up)
            hidden = hidden + gate @ layer.w_down

        hidden = _rms_norm(hidden, self.weights.final_norm)
        if return_hidden:
            return hidden
        return hidden @ self.weights.lm_head

    def prefill(self, token_ids: np.ndarray) -> tuple[np.ndarray, SimpleKVCache]:
        """Prefill a fresh cache with a prompt; returns (logits, cache)."""
        cache = self.new_cache()
        logits = self.forward(token_ids, cache)
        return logits, cache

    def decode_step(self, token_id: int, cache: KVCacheProtocol) -> np.ndarray:
        """Run one decode step; returns logits of shape ``(vocab_size,)``."""
        logits = self.forward(np.array([token_id]), cache)
        return logits[0]

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        seed: int = 0,
        stop_token: int | None = None,
    ) -> list[int]:
        """Greedy (or temperature) generation loop exercising prefill + decode."""
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        rng = np.random.default_rng(seed)
        logits, cache = self.prefill(np.asarray(prompt_ids))
        next_logits = logits[-1]
        generated: list[int] = []
        for _ in range(max_new_tokens):
            if temperature <= 0.0:
                next_id = int(np.argmax(next_logits))
            else:
                probs = softmax(next_logits / temperature)
                next_id = int(rng.choice(len(probs), p=probs))
            generated.append(next_id)
            if stop_token is not None and next_id == stop_token:
                break
            next_logits = self.decode_step(next_id, cache)
        return generated
