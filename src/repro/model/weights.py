"""Deterministic synthetic weights for the NumPy transformer.

There are no pretrained checkpoints available in this environment, so the
functional tests and examples run a :class:`~repro.model.transformer.TinyTransformer`
whose weights are drawn from a seeded Gaussian with fan-in scaling.  The point
of the functional path is to exercise the *attention data path* (paged KV
cache, block-sparse kernels, page selection), for which any fixed weights
suffice; accuracy experiments use the synthetic retrieval harness instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.configs import ModelConfig

__all__ = ["LayerWeights", "SyntheticWeights"]


@dataclass
class LayerWeights:
    """Weights of a single transformer layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    attn_norm: np.ndarray
    ffn_norm: np.ndarray


@dataclass
class SyntheticWeights:
    """Deterministic per-layer weights generated from ``seed``."""

    config: ModelConfig
    seed: int = 0
    layers: list[LayerWeights] = field(default_factory=list, init=False)
    embedding: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]
    final_norm: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]
    lm_head: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        cfg = self.config
        h, kv, inter = cfg.hidden_size, cfg.kv_dim, cfg.intermediate_size

        def init(fan_in: int, fan_out: int) -> np.ndarray:
            return rng.normal(0.0, 1.0 / np.sqrt(fan_in), size=(fan_in, fan_out))

        self.embedding = rng.normal(0.0, 0.02, size=(cfg.vocab_size, h))
        self.final_norm = np.ones(h)
        self.lm_head = init(h, cfg.vocab_size)
        self.layers = [
            LayerWeights(
                wq=init(h, h),
                wk=init(h, kv),
                wv=init(h, kv),
                wo=init(h, h),
                w_gate=init(h, inter),
                w_up=init(h, inter),
                w_down=init(inter, h),
                attn_norm=np.ones(h),
                ffn_norm=np.ones(h),
            )
            for _ in range(cfg.n_layers)
        ]

    def num_parameters(self) -> int:
        """Total parameter count (embedding + layers + head)."""
        total = self.embedding.size + self.final_norm.size + self.lm_head.size
        for layer in self.layers:
            total += sum(
                getattr(layer, name).size
                for name in (
                    "wq",
                    "wk",
                    "wv",
                    "wo",
                    "w_gate",
                    "w_up",
                    "w_down",
                    "attn_norm",
                    "ffn_norm",
                )
            )
        return int(total)
