"""Deterministic toy tokenizer.

Real tokenizers are not required for any experiment in the paper that this
repository reproduces — the accuracy harnesses operate on synthetic key/query
embeddings — but the functional examples need a way to turn text into token
ids for the :class:`~repro.model.transformer.TinyTransformer`.  This tokenizer
is word-level with hashing into a fixed vocabulary, deterministic across runs.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

__all__ = ["ToyTokenizer"]

_WORD_RE = re.compile(r"\w+|[^\w\s]")


@dataclass
class ToyTokenizer:
    """Word-level hashing tokenizer with a handful of special tokens."""

    vocab_size: int = 512
    bos_id: int = 0
    eos_id: int = 1
    pad_id: int = 2
    unk_id: int = 3
    _reserved: int = field(default=4, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size <= self._reserved:
            raise ValueError(
                f"vocab_size must exceed {self._reserved} reserved ids, got {self.vocab_size}"
            )

    def _hash_word(self, word: str) -> int:
        digest = hashlib.sha1(word.lower().encode("utf-8")).digest()
        bucket = int.from_bytes(digest[:4], "little") % (self.vocab_size - self._reserved)
        return self._reserved + bucket

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = False) -> list[int]:
        """Encode ``text`` into token ids."""
        tokens = [self._hash_word(w) for w in _WORD_RE.findall(text)]
        if add_bos:
            tokens = [self.bos_id] + tokens
        if add_eos:
            tokens = tokens + [self.eos_id]
        return tokens

    def decode(self, ids: list[int]) -> str:
        """Lossy decode: special tokens are named, others rendered as ``<tok_i>``."""
        names = {
            self.bos_id: "<bos>",
            self.eos_id: "<eos>",
            self.pad_id: "<pad>",
            self.unk_id: "<unk>",
        }
        return " ".join(names.get(i, f"<tok_{i}>") for i in ids)

    def __len__(self) -> int:
        return self.vocab_size
