"""Model substrate: architecture configs, synthetic weights, toy tokenizer and
a runnable NumPy transformer used for functional end-to-end tests."""

from repro.model.configs import (
    ModelConfig,
    LLAMA_3_8B,
    LLAMA_2_7B,
    MINITRON_4B,
    DS_R1_LLAMA_8B,
    MODEL_REGISTRY,
    get_model_config,
    tiny_model_config,
)
from repro.model.tokenizer import ToyTokenizer
from repro.model.weights import SyntheticWeights
from repro.model.transformer import TinyTransformer, KVCacheProtocol, SimpleKVCache

__all__ = [
    "ModelConfig",
    "LLAMA_3_8B",
    "LLAMA_2_7B",
    "MINITRON_4B",
    "DS_R1_LLAMA_8B",
    "MODEL_REGISTRY",
    "get_model_config",
    "tiny_model_config",
    "ToyTokenizer",
    "SyntheticWeights",
    "TinyTransformer",
    "KVCacheProtocol",
    "SimpleKVCache",
]
