"""Transformer architecture configurations.

The latency experiments in the paper (Figures 2, 10, 11, 12, 14, 15, 16 and
Tables 1, 5, 7) depend only on the model *shape* — number of layers, heads,
KV heads, head dimension, hidden/intermediate sizes.  These configs mirror the
published architectures of the models the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ModelConfig",
    "LLAMA_3_8B",
    "LLAMA_2_7B",
    "MINITRON_4B",
    "DS_R1_LLAMA_8B",
    "MODEL_REGISTRY",
    "get_model_config",
    "tiny_model_config",
]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a decoder-only transformer."""

    name: str
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    hidden_size: int
    intermediate_size: int
    vocab_size: int
    max_context_length: int
    rope_base: float = 10_000.0
    rope_scaling: float = 1.0

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads ({self.n_heads}) must be divisible by n_kv_heads "
                f"({self.n_kv_heads})"
            )
        if self.hidden_size != self.n_heads * self.head_dim:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must equal n_heads * head_dim "
                f"({self.n_heads * self.head_dim})"
            )
        for field_name in (
            "n_layers",
            "n_heads",
            "n_kv_heads",
            "head_dim",
            "hidden_size",
            "intermediate_size",
            "vocab_size",
            "max_context_length",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # -- derived quantities ------------------------------------------------
    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing each KV head."""
        return self.n_heads // self.n_kv_heads

    @property
    def is_gqa(self) -> bool:
        return self.n_kv_heads < self.n_heads

    @property
    def kv_dim(self) -> int:
        """Width of the key (or value) projection output."""
        return self.n_kv_heads * self.head_dim

    def kv_bytes_per_token(self, bytes_per_element: float = 2.0) -> float:
        """KV-cache bytes per token across all layers (keys + values)."""
        return 2.0 * self.n_layers * self.kv_dim * bytes_per_element

    def attention_qkv_flops_per_token(self) -> float:
        """FLOPs of the QKV + output projections for one token (all layers)."""
        per_layer = 2.0 * self.hidden_size * (
            self.hidden_size  # Q proj
            + 2 * self.kv_dim  # K and V proj
            + self.hidden_size  # output proj
        )
        return self.n_layers * per_layer

    def ffn_flops_per_token(self) -> float:
        """FLOPs of the (SwiGLU) feed-forward network for one token (all layers)."""
        per_layer = 2.0 * 3.0 * self.hidden_size * self.intermediate_size
        return self.n_layers * per_layer

    def linear_flops_per_token(self) -> float:
        """All GEMM FLOPs (projections + FFN + LM head amortised) per token."""
        lm_head = 2.0 * self.hidden_size * self.vocab_size
        return self.attention_qkv_flops_per_token() + self.ffn_flops_per_token() + lm_head

    def linear_weight_bytes(self, bytes_per_element: float = 2.0) -> float:
        """Total weight bytes of all linear layers (used for decode memory traffic)."""
        per_layer = (
            self.hidden_size * self.hidden_size  # Q
            + 2 * self.hidden_size * self.kv_dim  # K, V
            + self.hidden_size * self.hidden_size  # O
            + 3 * self.hidden_size * self.intermediate_size  # SwiGLU
        )
        total = self.n_layers * per_layer + self.hidden_size * self.vocab_size
        return total * bytes_per_element


# Published architectures ---------------------------------------------------

LLAMA_3_8B = ModelConfig(
    name="Llama-3-8B",
    n_layers=32,
    n_heads=32,
    n_kv_heads=8,
    head_dim=128,
    hidden_size=4096,
    intermediate_size=14336,
    vocab_size=128_256,
    max_context_length=524_288,
    rope_base=500_000.0,
    rope_scaling=4.0,
)

LLAMA_2_7B = ModelConfig(
    name="Llama-2-7B",
    n_layers=32,
    n_heads=32,
    n_kv_heads=32,
    head_dim=128,
    hidden_size=4096,
    intermediate_size=11008,
    vocab_size=32_000,
    max_context_length=262_144,
    rope_base=10_000.0,
    rope_scaling=8.0,
)

MINITRON_4B = ModelConfig(
    name="Minitron-4B",
    n_layers=32,
    n_heads=24,
    n_kv_heads=8,
    head_dim=128,
    hidden_size=3072,
    intermediate_size=9216,
    vocab_size=256_000,
    max_context_length=524_288,
    rope_base=500_000.0,
    rope_scaling=4.0,
)

DS_R1_LLAMA_8B = ModelConfig(
    name="DeepSeek-R1-Distill-Llama-8B",
    n_layers=32,
    n_heads=32,
    n_kv_heads=8,
    head_dim=128,
    hidden_size=4096,
    intermediate_size=14336,
    vocab_size=128_256,
    max_context_length=131_072,
    rope_base=500_000.0,
    rope_scaling=1.0,
)

MODEL_REGISTRY: dict[str, ModelConfig] = {
    cfg.name: cfg for cfg in (LLAMA_3_8B, LLAMA_2_7B, MINITRON_4B, DS_R1_LLAMA_8B)
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a registered architecture by name (case-insensitive)."""
    for key, cfg in MODEL_REGISTRY.items():
        if key.lower() == name.lower():
            return cfg
    raise KeyError(
        f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
    )


def tiny_model_config(
    n_layers: int = 2,
    n_heads: int = 4,
    n_kv_heads: int = 2,
    head_dim: int = 16,
    intermediate_size: int = 128,
    vocab_size: int = 512,
    max_context_length: int = 4096,
    name: str = "tiny",
) -> ModelConfig:
    """Small configuration for functional tests and examples."""
    return ModelConfig(
        name=name,
        n_layers=n_layers,
        n_heads=n_heads,
        n_kv_heads=n_kv_heads,
        head_dim=head_dim,
        hidden_size=n_heads * head_dim,
        intermediate_size=intermediate_size,
        vocab_size=vocab_size,
        max_context_length=max_context_length,
    )


def scaled_config(base: ModelConfig, **overrides) -> ModelConfig:
    """Return a copy of ``base`` with fields replaced (keeps validation)."""
    return replace(base, **overrides)
