"""repro — reproduction of *LServe: Efficient Long-sequence LLM Serving with
Unified Sparse Attention* (MLSys 2025).

Subpackages
-----------
``repro.attention``
    Dense / block-wise attention reference kernels, masks, RoPE.
``repro.model``
    Architecture configs, synthetic weights, toy tokenizer, NumPy transformer.
``repro.kvcache``
    Paged KV cache substrate: allocator, page tables, quantization, key stats.
``repro.core``
    The paper's contribution: unified block-sparse attention, streaming heads,
    hierarchical paging, reusable page selection, the LServe engine.
``repro.gpu``
    A100/L40S roofline cost model and end-to-end latency simulator.
``repro.serving``
    Requests, continuous-batching scheduler, serving metrics.
``repro.baselines``
    vLLM / QServe / Quest / MInference / DuoAttention / StreamingLLM policies.
``repro.eval``
    Synthetic NIAH / RULER / LongBench / reasoning accuracy harnesses.
``repro.bench``
    Experiment runners regenerating every table and figure in the paper.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
