"""Attention masks: causal, streaming (Λ-shaped), and their block-level forms.

A *token-level* mask is a boolean array of shape ``(n_q, n_kv)`` where ``True``
means the query may attend to the key.  A *block-level* mask is a boolean array
of shape ``(n_q_blocks, n_kv_blocks)`` where ``True`` means the whole tile is
computed; this is the granularity at which LServe's unified block-sparse
attention skips work (paper §3.1, Fig. 4).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "causal_mask",
    "streaming_mask",
    "block_causal_mask",
    "block_streaming_mask",
    "mask_from_block_mask",
    "num_blocks",
    "block_sparsity",
]


def num_blocks(n_tokens: int, block_size: int) -> int:
    """Number of blocks of ``block_size`` needed to cover ``n_tokens``."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if n_tokens < 0:
        raise ValueError(f"n_tokens must be non-negative, got {n_tokens}")
    return (n_tokens + block_size - 1) // block_size


def causal_mask(n_q: int, n_kv: int) -> np.ndarray:
    """Token-level causal mask.

    Query ``i`` (the ``i``-th of the *last* ``n_q`` positions of a ``n_kv``-token
    context) may attend to keys ``0 .. n_kv - n_q + i``.
    """
    if n_kv < n_q:
        raise ValueError(f"n_kv ({n_kv}) must be >= n_q ({n_q})")
    q_pos = np.arange(n_kv - n_q, n_kv)[:, None]
    k_pos = np.arange(n_kv)[None, :]
    return k_pos <= q_pos


def streaming_mask(n_q: int, n_kv: int, sink: int, local: int) -> np.ndarray:
    """Token-level Λ-shaped streaming mask (attention sinks + sliding window).

    Each query attends to the first ``sink`` tokens and to the most recent
    ``local`` tokens (including itself), intersected with causality.
    """
    if sink < 0 or local < 0:
        raise ValueError("sink and local must be non-negative")
    q_pos = np.arange(n_kv - n_q, n_kv)[:, None]
    k_pos = np.arange(n_kv)[None, :]
    causal = k_pos <= q_pos
    is_sink = k_pos < sink
    is_local = k_pos > q_pos - local
    return causal & (is_sink | is_local)


def block_causal_mask(n_q: int, n_kv: int, q_block: int, kv_block: int) -> np.ndarray:
    """Block-level causal mask.

    A KV block is computed for a query block if *any* of its (query, key)
    pairs is causally visible — i.e. blocks on the diagonal are kept whole, as
    in the paper's formulation where the most recent block is always computed.
    """
    nqb = num_blocks(n_q, q_block)
    nkb = num_blocks(n_kv, kv_block)
    # Last token position covered by each query block (global positions).
    q_last = np.minimum((np.arange(nqb) + 1) * q_block, n_q) - 1 + (n_kv - n_q)
    k_first = np.arange(nkb) * kv_block
    return k_first[None, :] <= q_last[:, None]


def block_streaming_mask(
    n_q: int,
    n_kv: int,
    q_block: int,
    kv_block: int,
    sink_blocks: int,
    local_blocks: int,
) -> np.ndarray:
    """Block-level Λ-shaped mask: ``sink_blocks`` leading KV blocks plus the
    ``local_blocks`` most recent KV blocks for each query block, intersected
    with block causality."""
    if sink_blocks < 0 or local_blocks < 0:
        raise ValueError("sink_blocks and local_blocks must be non-negative")
    causal = block_causal_mask(n_q, n_kv, q_block, kv_block)
    nqb, nkb = causal.shape
    kb = np.arange(nkb)[None, :]
    is_sink = kb < sink_blocks
    # Index of the newest (diagonal) KV block visible to each query block.
    q_last = np.minimum((np.arange(nqb) + 1) * q_block, n_q) - 1 + (n_kv - n_q)
    diag_block = (q_last // kv_block)[:, None]
    is_local = kb > diag_block - local_blocks
    return causal & (is_sink | is_local)


def mask_from_block_mask(
    block_mask: np.ndarray,
    n_q: int,
    n_kv: int,
    q_block: int,
    kv_block: int,
    causal: bool = True,
) -> np.ndarray:
    """Expand a block-level mask to a token-level mask.

    Tokens inside retained blocks follow standard causal masking when
    ``causal=True`` (paper: retained tiles are computed "as in standard causal
    attention"); tokens inside skipped blocks are fully masked.
    """
    expected = (num_blocks(n_q, q_block), num_blocks(n_kv, kv_block))
    if block_mask.shape != expected:
        raise ValueError(
            f"block_mask shape {block_mask.shape} does not match expected {expected}"
        )
    token_mask = np.repeat(np.repeat(block_mask, q_block, axis=0), kv_block, axis=1)
    token_mask = token_mask[:n_q, :n_kv]
    if causal:
        token_mask = token_mask & causal_mask(n_q, n_kv)
    return token_mask


def block_sparsity(block_mask: np.ndarray, reference: np.ndarray | None = None) -> float:
    """Fraction of blocks skipped relative to ``reference`` (default: causal
    lower-triangular budget, i.e. all blocks in the mask array)."""
    if reference is None:
        total = block_mask.size
        kept = int(np.count_nonzero(block_mask))
    else:
        if reference.shape != block_mask.shape:
            raise ValueError("reference mask shape mismatch")
        total = int(np.count_nonzero(reference))
        kept = int(np.count_nonzero(block_mask & reference))
    if total == 0:
        return 0.0
    return 1.0 - kept / total
