"""Reference attention substrate.

This subpackage provides the numerical building blocks that the LServe core
is built on: a numerically stable softmax, causal and Λ-shaped (streaming)
masks, rotary position embeddings, a dense GQA/MHA attention reference, and a
block-wise online-softmax attention (``flash_reference``) that mirrors the
sequential KV-block loop of the GPU kernel and supports skipping whole blocks.
"""

from repro.attention.softmax import softmax, log_softmax
from repro.attention.masks import (
    causal_mask,
    streaming_mask,
    block_causal_mask,
    block_streaming_mask,
    mask_from_block_mask,
)
from repro.attention.rope import RotaryEmbedding, apply_rope
from repro.attention.dense import dense_attention, attention_weights, repeat_kv
from repro.attention.flash_reference import blockwise_attention

__all__ = [
    "softmax",
    "log_softmax",
    "causal_mask",
    "streaming_mask",
    "block_causal_mask",
    "block_streaming_mask",
    "mask_from_block_mask",
    "RotaryEmbedding",
    "apply_rope",
    "dense_attention",
    "attention_weights",
    "repeat_kv",
    "blockwise_attention",
]
