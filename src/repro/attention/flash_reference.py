"""Block-wise masked-softmax attention (FlashAttention-style reference).

This mirrors the *work accounting* of the GPU attention kernel described in
the paper (Fig. 3): a KV block that is masked out at block level is skipped
entirely — it contributes neither compute nor memory traffic — and the number
of visited blocks is returned so callers (and the cost model) can account for
the work actually performed.

The computation itself is vectorised: instead of walking ``(head, q_block,
kv_block)`` tiles in nested Python loops with an online softmax, heads that
share a block-mask pattern are batched together and each query block computes
one masked softmax over the union of its visited KV blocks.  A full-row
masked softmax over exactly the visited columns is numerically equivalent to
the sequential online-softmax accumulation (both are exact softmax
re-normalisations); fully-masked query rows produce zero output, matching the
``l == 0`` convention of the online form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.dense import repeat_kv
from repro.attention.masks import block_causal_mask, causal_mask, num_blocks
from repro.attention.softmax import NEG_INF, softmax

__all__ = ["BlockAttentionResult", "blockwise_attention"]


@dataclass
class BlockAttentionResult:
    """Output of :func:`blockwise_attention`.

    Attributes
    ----------
    output:
        Attention output, ``(n_q, n_heads, head_dim)``.
    visited_blocks:
        Total number of (head, q_block, kv_block) tiles actually computed.
    total_blocks:
        Number of tiles a dense causal kernel would have computed.
    """

    output: np.ndarray
    visited_blocks: int
    total_blocks: int

    @property
    def block_sparsity(self) -> float:
        """Fraction of causal tiles skipped."""
        if self.total_blocks == 0:
            return 0.0
        return 1.0 - self.visited_blocks / self.total_blocks


def blockwise_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_block: int,
    kv_block: int,
    block_mask: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> BlockAttentionResult:
    """Masked-softmax attention computed block-by-block with block skipping.

    Parameters
    ----------
    q, k, v:
        ``(n_q, n_heads, head_dim)`` queries and ``(n_kv, n_kv_heads, head_dim)``
        keys/values (GQA supported).
    q_block, kv_block:
        Tile sizes ``TQ`` and ``TK`` from the paper. During decoding ``TQ = 1``.
    block_mask:
        Boolean array of shape ``(n_q_blocks, n_kv_blocks)`` or
        ``(n_heads, n_q_blocks, n_kv_blocks)``; ``True`` keeps the tile.  When
        omitted, all causal tiles are computed (dense attention).
    causal:
        Apply token-level causal masking inside retained tiles.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n_q, n_heads, head_dim = q.shape
    n_kv = k.shape[0]
    if n_kv != v.shape[0]:
        raise ValueError("k and v must have the same number of tokens")
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)

    k_full = repeat_kv(k, n_heads)
    v_full = repeat_kv(v, n_heads)

    nqb = num_blocks(n_q, q_block)
    nkb = num_blocks(n_kv, kv_block)

    if block_mask is None:
        block_mask_h = np.ones((n_heads, nqb, nkb), dtype=bool)
    else:
        block_mask = np.asarray(block_mask, dtype=bool)
        if block_mask.shape == (nqb, nkb):
            block_mask_h = np.broadcast_to(block_mask, (n_heads, nqb, nkb))
        elif block_mask.shape == (n_heads, nqb, nkb):
            block_mask_h = block_mask
        else:
            raise ValueError(
                f"block_mask shape {block_mask.shape} incompatible with "
                f"(heads={n_heads}, q_blocks={nqb}, kv_blocks={nkb})"
            )

    if causal:
        token_causal = causal_mask(n_q, n_kv)
        causal_vis = block_causal_mask(n_q, n_kv, q_block, kv_block)
    else:
        token_causal = np.ones((n_q, n_kv), dtype=bool)
        causal_vis = np.ones((nqb, nkb), dtype=bool)

    # Work accounting, fully vectorised: a dense causal kernel visits every
    # causally visible tile of every head; the sparse kernel only visits the
    # retained subset.
    effective = block_mask_h & causal_vis[None, :, :]
    total = int(np.count_nonzero(causal_vis)) * n_heads
    visited = int(np.count_nonzero(effective))

    out = np.zeros((n_q, n_heads, head_dim), dtype=np.float64)

    # Heads with the same block-mask rows visit the same KV columns, so they
    # batch into one gather + masked softmax per query block (for LServe's
    # prefill masks there are at most two patterns: dense and streaming).
    patterns: dict[bytes, list[int]] = {}
    for h in range(n_heads):
        patterns.setdefault(effective[h].tobytes(), []).append(h)

    kv_starts = np.arange(nkb) * kv_block
    for heads in patterns.values():
        head_idx = np.asarray(heads, dtype=np.intp)
        mask_rows = effective[heads[0]]  # (nqb, nkb), shared by the group
        for qb in range(nqb):
            kbs = np.flatnonzero(mask_rows[qb])
            if kbs.size == 0:
                continue
            q_start = qb * q_block
            q_end = min(q_start + q_block, n_q)
            # Token columns of the visited KV blocks (tail block may be short).
            cols = (
                kv_starts[kbs][:, None] + np.arange(kv_block)[None, :]
            ).ravel()
            cols = cols[cols < n_kv]

            q_tile = q[q_start:q_end, head_idx, :].transpose(1, 0, 2)  # (G, tq, d)
            k_sub = k_full[np.ix_(cols, head_idx)].transpose(1, 2, 0)  # (G, d, ns)
            v_sub = v_full[np.ix_(cols, head_idx)].transpose(1, 0, 2)  # (G, ns, d)

            scores = (q_tile @ k_sub) * scale  # (G, tq, ns)
            tile_mask = token_causal[q_start:q_end][:, cols]  # (tq, ns)
            scores = np.where(tile_mask[None, :, :], scores, NEG_INF)
            probs = softmax(scores, axis=-1)
            out[q_start:q_end, head_idx, :] = (probs @ v_sub).transpose(1, 0, 2)

    return BlockAttentionResult(output=out, visited_blocks=visited, total_blocks=total)
