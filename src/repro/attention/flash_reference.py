"""Block-wise online-softmax attention (FlashAttention-style reference).

This mirrors the structure of the GPU attention kernel described in the paper
(Fig. 3): for each query block, the kernel iterates over KV blocks
*sequentially*, maintaining running softmax statistics, and a KV block that is
masked out at block level is skipped entirely — it contributes neither compute
nor memory traffic.  The number of visited blocks is returned so callers (and
the cost model) can account for the work actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.dense import repeat_kv
from repro.attention.masks import causal_mask, num_blocks

__all__ = ["BlockAttentionResult", "blockwise_attention"]


@dataclass
class BlockAttentionResult:
    """Output of :func:`blockwise_attention`.

    Attributes
    ----------
    output:
        Attention output, ``(n_q, n_heads, head_dim)``.
    visited_blocks:
        Total number of (head, q_block, kv_block) tiles actually computed.
    total_blocks:
        Number of tiles a dense causal kernel would have computed.
    """

    output: np.ndarray
    visited_blocks: int
    total_blocks: int

    @property
    def block_sparsity(self) -> float:
        """Fraction of causal tiles skipped."""
        if self.total_blocks == 0:
            return 0.0
        return 1.0 - self.visited_blocks / self.total_blocks


def blockwise_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_block: int,
    kv_block: int,
    block_mask: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> BlockAttentionResult:
    """Online-softmax attention computed block-by-block with block skipping.

    Parameters
    ----------
    q, k, v:
        ``(n_q, n_heads, head_dim)`` queries and ``(n_kv, n_kv_heads, head_dim)``
        keys/values (GQA supported).
    q_block, kv_block:
        Tile sizes ``TQ`` and ``TK`` from the paper. During decoding ``TQ = 1``.
    block_mask:
        Boolean array of shape ``(n_q_blocks, n_kv_blocks)`` or
        ``(n_heads, n_q_blocks, n_kv_blocks)``; ``True`` keeps the tile.  When
        omitted, all causal tiles are computed (dense attention).
    causal:
        Apply token-level causal masking inside retained tiles.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n_q, n_heads, head_dim = q.shape
    n_kv = k.shape[0]
    if n_kv != v.shape[0]:
        raise ValueError("k and v must have the same number of tokens")
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)

    k_full = repeat_kv(k, n_heads)
    v_full = repeat_kv(v, n_heads)

    nqb = num_blocks(n_q, q_block)
    nkb = num_blocks(n_kv, kv_block)

    if block_mask is None:
        block_mask_h = np.ones((n_heads, nqb, nkb), dtype=bool)
    else:
        block_mask = np.asarray(block_mask, dtype=bool)
        if block_mask.shape == (nqb, nkb):
            block_mask_h = np.broadcast_to(block_mask, (n_heads, nqb, nkb))
        elif block_mask.shape == (n_heads, nqb, nkb):
            block_mask_h = block_mask
        else:
            raise ValueError(
                f"block_mask shape {block_mask.shape} incompatible with "
                f"(heads={n_heads}, q_blocks={nqb}, kv_blocks={nkb})"
            )

    token_causal = causal_mask(n_q, n_kv) if causal else np.ones((n_q, n_kv), bool)

    out = np.zeros((n_q, n_heads, head_dim), dtype=np.float64)
    visited = 0
    total = 0

    for h in range(n_heads):
        for qb in range(nqb):
            q_start = qb * q_block
            q_end = min(q_start + q_block, n_q)
            q_tile = q[q_start:q_end, h, :]  # (tq, d)
            tq = q_end - q_start

            # Running online-softmax statistics for this query tile.
            m = np.full(tq, -np.inf)
            l = np.zeros(tq)
            acc = np.zeros((tq, head_dim))

            for kb in range(nkb):
                k_start = kb * kv_block
                k_end = min(k_start + kv_block, n_kv)
                # Count tiles a dense causal kernel would visit.
                causal_visible = (not causal) or np.any(
                    token_causal[q_start:q_end, k_start:k_end]
                )
                if causal_visible:
                    total += 1
                if not block_mask_h[h, qb, kb]:
                    continue
                if not causal_visible:
                    # Tile above the causal diagonal: nothing to compute.
                    continue
                visited += 1

                k_tile = k_full[k_start:k_end, h, :]
                v_tile = v_full[k_start:k_end, h, :]
                scores = (q_tile @ k_tile.T) * scale  # (tq, tk)
                if causal:
                    tile_mask = token_causal[q_start:q_end, k_start:k_end]
                    scores = np.where(tile_mask, scores, -np.inf)

                block_max = np.max(scores, axis=1)
                block_max = np.where(np.isfinite(block_max), block_max, -np.inf)
                new_m = np.maximum(m, block_max)
                # Rescale factors; exp(-inf - -inf) handled via where.
                safe_new_m = np.where(np.isfinite(new_m), new_m, 0.0)
                alpha = np.where(np.isfinite(m), np.exp(m - safe_new_m), 0.0)
                p = np.exp(
                    np.where(np.isfinite(scores), scores - safe_new_m[:, None], -np.inf)
                )
                p = np.where(np.isfinite(scores), p, 0.0)
                l = alpha * l + p.sum(axis=1)
                acc = alpha[:, None] * acc + p @ v_tile
                m = new_m

            with np.errstate(invalid="ignore", divide="ignore"):
                normed = np.where(l[:, None] > 0.0, acc / np.where(l[:, None] == 0.0, 1.0, l[:, None]), 0.0)
            out[q_start:q_end, h, :] = normed

    return BlockAttentionResult(output=out, visited_blocks=visited, total_blocks=total)
