"""Dense multi-head / grouped-query attention reference implementation.

This is the "gold standard" against which the block-sparse kernels are tested:
slow, simple, and vectorised with NumPy.  Shapes follow the convention used
throughout the repository:

* queries ``q``: ``(n_q, n_heads, head_dim)``
* keys/values ``k``, ``v``: ``(n_kv, n_kv_heads, head_dim)``
* token-level mask: ``(n_q, n_kv)`` or ``(n_heads, n_q, n_kv)`` boolean,
  ``True`` = attend.
"""

from __future__ import annotations

import numpy as np

from repro.attention.masks import causal_mask
from repro.attention.softmax import NEG_INF, softmax

__all__ = ["repeat_kv", "attention_weights", "dense_attention"]


def repeat_kv(kv: np.ndarray, n_heads: int) -> np.ndarray:
    """Expand ``(n_kv, n_kv_heads, head_dim)`` KV tensors to ``n_heads`` heads.

    Implements GQA head sharing: each KV head serves ``n_heads // n_kv_heads``
    query heads.  For MHA (``n_kv_heads == n_heads``) this is the identity.
    """
    n_tokens, n_kv_heads, head_dim = kv.shape
    if n_heads % n_kv_heads != 0:
        raise ValueError(
            f"n_heads ({n_heads}) must be a multiple of n_kv_heads ({n_kv_heads})"
        )
    group = n_heads // n_kv_heads
    if group == 1:
        return kv
    return np.repeat(kv, group, axis=1).reshape(n_tokens, n_heads, head_dim)


def _prepare_mask(
    mask: np.ndarray | None, n_heads: int, n_q: int, n_kv: int, causal: bool
) -> np.ndarray:
    if mask is None:
        mask = causal_mask(n_q, n_kv) if causal else np.ones((n_q, n_kv), dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape == (n_q, n_kv):
        mask = np.broadcast_to(mask, (n_heads, n_q, n_kv))
    elif mask.shape != (n_heads, n_q, n_kv):
        raise ValueError(
            f"mask shape {mask.shape} incompatible with (heads={n_heads}, "
            f"n_q={n_q}, n_kv={n_kv})"
        )
    return mask


def attention_weights(
    q: np.ndarray,
    k: np.ndarray,
    mask: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Softmax attention probabilities of shape ``(n_heads, n_q, n_kv)``."""
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    n_q, n_heads, head_dim = q.shape
    n_kv = k.shape[0]
    k_full = repeat_kv(k, n_heads)
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    # scores[h, i, j] = q[i, h, :] . k[j, h, :]
    scores = np.einsum("ihd,jhd->hij", q, k_full) * scale
    full_mask = _prepare_mask(mask, n_heads, n_q, n_kv, causal)
    scores = np.where(full_mask, scores, NEG_INF)
    return softmax(scores, axis=-1)


def dense_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Dense scaled-dot-product attention with GQA support.

    Returns the attention output of shape ``(n_q, n_heads, head_dim)``.
    Fully-masked query rows produce zero outputs.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if k.shape != v.shape:
        raise ValueError(f"k and v must share a shape, got {k.shape} vs {v.shape}")
    n_q, n_heads, _ = q.shape
    probs = attention_weights(q, k, mask=mask, causal=causal, scale=scale)
    v_full = repeat_kv(v, n_heads)
    out = np.einsum("hij,jhd->ihd", probs, v_full)
    return out
