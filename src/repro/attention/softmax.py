"""Numerically stable softmax helpers used across the attention stack."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "NEG_INF"]

# Finite stand-in for -inf used when masking attention scores.  Using a finite
# value keeps ``exp`` well-defined for rows that are entirely masked (e.g. a
# fully skipped KV block), where the convention is a uniform / zero output.
NEG_INF = -1.0e30


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Rows whose entries are all masked to ``NEG_INF`` (or smaller) return an
    all-zero row instead of NaN, matching the behaviour of attention kernels
    that skip fully-masked rows.
    """
    x = np.asarray(x, dtype=np.float64)
    x_max = np.max(x, axis=axis, keepdims=True)
    # Guard fully-masked rows: keep the shift finite.
    x_max = np.where(np.isfinite(x_max), x_max, 0.0)
    shifted = x - x_max
    # Anything at or below NEG_INF contributes exactly zero.
    shifted = np.where(x <= NEG_INF, -np.inf, shifted)
    exp = np.exp(shifted)
    denom = np.sum(exp, axis=axis, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(denom > 0.0, exp / np.where(denom == 0.0, 1.0, denom), 0.0)
    return out


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    x_max = np.max(x, axis=axis, keepdims=True)
    x_max = np.where(np.isfinite(x_max), x_max, 0.0)
    shifted = x - x_max
    log_denom = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    return shifted - log_denom
