"""Rotary position embeddings (RoPE) with linear context-extension scaling.

The long-context Llama-3-8B checkpoint the paper evaluates (Gradient) extends
the context window by scaling rotary frequencies; we expose the same knob via
``scaling_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RotaryEmbedding", "apply_rope"]


@dataclass(frozen=True)
class RotaryEmbedding:
    """Precomputed rotary embedding table.

    Parameters
    ----------
    head_dim:
        Dimension of each attention head (must be even).
    base:
        RoPE frequency base (``theta``), 10_000 for Llama-2, 500_000 for Llama-3.
    scaling_factor:
        Linear position-interpolation factor used for context extension.
    """

    head_dim: int
    base: float = 10_000.0
    scaling_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even, got {self.head_dim}")
        if self.base <= 0 or self.scaling_factor <= 0:
            raise ValueError("base and scaling_factor must be positive")

    def frequencies(self) -> np.ndarray:
        """Per-pair inverse frequencies, shape ``(head_dim // 2,)``."""
        half = self.head_dim // 2
        return 1.0 / (self.base ** (np.arange(half, dtype=np.float64) / half))

    def cos_sin(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cosine and sine tables for integer ``positions``.

        Returns arrays of shape ``(len(positions), head_dim // 2)``.
        """
        positions = np.asarray(positions, dtype=np.float64) / self.scaling_factor
        angles = positions[:, None] * self.frequencies()[None, :]
        return np.cos(angles), np.sin(angles)

    def rotate(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Apply the rotation to ``x`` of shape ``(n_tokens, n_heads, head_dim)``."""
        return apply_rope(x, positions, self)


def apply_rope(
    x: np.ndarray, positions: np.ndarray, rope: RotaryEmbedding
) -> np.ndarray:
    """Rotate query/key vectors by their positions.

    ``x`` has shape ``(n_tokens, n_heads, head_dim)``; the first and second
    halves of the head dimension form the rotation pairs (Llama convention).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise ValueError(f"expected (n_tokens, n_heads, head_dim), got shape {x.shape}")
    n_tokens, _, head_dim = x.shape
    if head_dim != rope.head_dim:
        raise ValueError(f"head_dim mismatch: x has {head_dim}, rope has {rope.head_dim}")
    positions = np.asarray(positions)
    if positions.shape != (n_tokens,):
        raise ValueError(
            f"positions must have shape ({n_tokens},), got {positions.shape}"
        )
    cos, sin = rope.cos_sin(positions)  # (n_tokens, head_dim // 2)
    cos = cos[:, None, :]
    sin = sin[:, None, :]
    half = head_dim // 2
    x1, x2 = x[..., :half], x[..., half:]
    rotated = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)
    return rotated
