"""Baseline serving-system policies the paper compares against.

Each baseline is expressed as a :class:`~repro.baselines.policy.SystemPolicy`
— the set of precision / sparsity / paging decisions that system makes — and
is consumed by the GPU cost model (efficiency experiments) and by the
evaluation harnesses (accuracy experiments).  Factory functions build the
published configuration of every comparator: vLLM, QServe, Quest, MInference,
DuoAttention and StreamingLLM, plus the LServe configurations themselves.
"""

from repro.baselines.policy import SystemPolicy
from repro.baselines.systems import (
    vllm_policy,
    qserve_policy,
    lserve_policy,
    lserve_static_only_policy,
    lserve_dynamic_only_policy,
    quest_policy,
    minference_policy,
    duo_attention_policy,
    streaming_llm_policy,
    dense_fp16_policy,
    all_decode_baselines,
    all_prefill_baselines,
)

__all__ = [
    "SystemPolicy",
    "vllm_policy",
    "qserve_policy",
    "lserve_policy",
    "lserve_static_only_policy",
    "lserve_dynamic_only_policy",
    "quest_policy",
    "minference_policy",
    "duo_attention_policy",
    "streaming_llm_policy",
    "dense_fp16_policy",
    "all_decode_baselines",
    "all_prefill_baselines",
]
