"""Factory functions for every serving system evaluated in the paper.

The configurations below follow each system's published design:

* **vLLM** — FP16 weights (W8A8 when available, per the paper's baseline
  setup), FP16 KV, PagedAttention with 16-token pages, dense attention in both
  stages.
* **QServe** — W4A8KV4 quantization, 64-token pages, dense attention.
* **DuoAttention** — FP16 serving with 50% streaming heads (static sparsity
  only) in both stages.
* **MInference** — dynamic *prefill* sparsity with an unoptimised dense
  decode path (the paper notes its decoding performance is limited).
* **Quest** — query-aware dynamic decode sparsity with small (16-token) pages
  and FP16 KV; prefill is dense and it does not support GQA models.
* **StreamingLLM** — every head is a streaming head (sink + window).
* **LServe** — W4A8KV8 on 64-token physical pages with 16-token logical
  pages, 50% streaming heads, a 4096-token decode budget, reuse interval 4 and
  MInference-compatible prefill sparsity activated beyond 128K context.
"""

from __future__ import annotations

from repro.baselines.policy import SystemPolicy

__all__ = [
    "dense_fp16_policy",
    "vllm_policy",
    "qserve_policy",
    "duo_attention_policy",
    "minference_policy",
    "quest_policy",
    "streaming_llm_policy",
    "lserve_policy",
    "lserve_static_only_policy",
    "lserve_dynamic_only_policy",
    "all_decode_baselines",
    "all_prefill_baselines",
    "all_serving_baselines",
]


def dense_fp16_policy() -> SystemPolicy:
    """Plain FP16 dense-attention serving (the accuracy reference)."""
    return SystemPolicy(name="Dense")


def vllm_policy() -> SystemPolicy:
    return SystemPolicy(
        name="vLLM",
        weight_bits=8,
        activation_bits=8,
        kv_bits=16,
        page_size=16,
        per_step_overhead_s=3.0e-3,
        per_prefill_overhead_s=30e-3,
    )


def qserve_policy() -> SystemPolicy:
    return SystemPolicy(
        name="QServe",
        weight_bits=4,
        activation_bits=8,
        kv_bits=4,
        page_size=64,
        decode_attention_efficiency=0.6,  # INT4 dequantisation overhead in the attention kernel
        per_step_overhead_s=3.2e-3,
        per_prefill_overhead_s=30e-3,
    )


def duo_attention_policy(streaming_head_ratio: float = 0.5) -> SystemPolicy:
    return SystemPolicy(
        name="DuoAttention",
        weight_bits=16,
        kv_bits=16,
        page_size=16,
        streaming_head_ratio=streaming_head_ratio,
        sink_tokens=128,
        local_tokens=256,
        per_step_overhead_s=3.2e-3,
        per_prefill_overhead_s=30e-3,
    )


def minference_policy() -> SystemPolicy:
    return SystemPolicy(
        name="MInference",
        weight_bits=16,
        kv_bits=16,
        page_size=16,
        prefill_sparse=True,
        prefill_sparse_threshold=0,
        prefill_sparsity_level=0.65,
        prefill_kernel_efficiency=0.77,  # its kernel is ~1.3x slower at equal sparsity (Fig. 12)
        decode_attention_efficiency=0.55,  # unoptimised dense decoding path
        per_step_overhead_s=5.0e-3,
        per_prefill_overhead_s=45e-3,
    )


def quest_policy(token_budget: int = 4096) -> SystemPolicy:
    return SystemPolicy(
        name="Quest",
        weight_bits=16,
        kv_bits=16,
        page_size=16,
        decode_token_budget=token_budget,
        reuse_interval=1,
        decode_attention_efficiency=0.8,
        per_step_overhead_s=4.5e-3,
        per_prefill_overhead_s=45e-3,
        supports_gqa=False,
    )


def streaming_llm_policy() -> SystemPolicy:
    return SystemPolicy(
        name="StreamingLLM",
        streaming_head_ratio=1.0,
        sink_tokens=4,
        local_tokens=4092,
        per_step_overhead_s=3.0e-3,
    )


def lserve_policy(
    token_budget: int = 4096,
    streaming_head_ratio: float = 0.5,
    reuse_interval: int = 4,
    kv_bits: int = 8,
) -> SystemPolicy:
    return SystemPolicy(
        name=f"LServe-{token_budget}" if token_budget != 4096 else "LServe",
        weight_bits=4,
        activation_bits=8,
        kv_bits=kv_bits,
        page_size=64,
        logical_page_size=16,
        streaming_head_ratio=streaming_head_ratio,
        sink_tokens=128,
        local_tokens=256,
        decode_token_budget=token_budget,
        reuse_interval=reuse_interval,
        prefill_sparse=True,
        prefill_sparse_threshold=131_072,  # MInference-style sparsity activated after 128K
        prefill_sparsity_level=0.65,
        prefill_kernel_efficiency=1.0,
        decode_attention_efficiency=0.6,  # same quantized-attention kernel stack as QServe
        per_step_overhead_s=3.2e-3,
        per_prefill_overhead_s=30e-3,
    )


def lserve_static_only_policy() -> SystemPolicy:
    """LServe with only streaming heads (50%) — the "+Static Sparsity" ablation."""
    return lserve_policy().with_overrides(
        name="LServe-StaticOnly", decode_token_budget=None, prefill_sparse=False
    )


def lserve_dynamic_only_policy(token_budget: int = 4096) -> SystemPolicy:
    """LServe with only dynamic page sparsity — the "+Dynamic Sparsity" ablation."""
    return lserve_policy(token_budget=token_budget).with_overrides(
        name="LServe-DynamicOnly", streaming_head_ratio=0.0, prefill_sparse=False
    )


def all_decode_baselines() -> list[SystemPolicy]:
    """The systems compared in the decoding-speed evaluation (Fig. 10)."""
    return [
        vllm_policy(),
        qserve_policy(),
        minference_policy(),
        duo_attention_policy(),
        lserve_policy(),
    ]


def all_prefill_baselines() -> list[SystemPolicy]:
    """The systems compared in the prefilling-speed evaluation (Fig. 11)."""
    return [
        vllm_policy(),
        qserve_policy(),
        duo_attention_policy(),
        minference_policy(),
        lserve_policy(),
    ]


def all_serving_baselines() -> list[SystemPolicy]:
    """The systems driven through the ``ServingEngine`` front door end to end.

    Each policy becomes one :class:`~repro.serving.backend.SimulatedBackend`
    configuration of the unified serving API (Fig. 16 / Tab. 7 style
    comparisons under continuous batching).
    """
    return all_decode_baselines()
