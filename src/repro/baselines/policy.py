"""System policy: the precision / sparsity / paging decisions of a serving system."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SystemPolicy"]


@dataclass(frozen=True)
class SystemPolicy:
    """Everything the cost model and the accuracy harnesses need to know about
    how a serving system treats attention and the KV cache.

    The default values describe a plain FP16 dense-attention server; factory
    functions in :mod:`repro.baselines.systems` derive every evaluated system
    from it.
    """

    name: str
    # -- precision --
    weight_bits: int = 16
    activation_bits: int = 16
    kv_bits: int = 16
    # -- KV paging --
    page_size: int = 16
    logical_page_size: int | None = None  # None => selection at physical page granularity
    # -- static sparsity (streaming heads) --
    streaming_head_ratio: float = 0.0
    sink_tokens: int = 128
    local_tokens: int = 256
    # -- dynamic decode sparsity --
    decode_token_budget: int | None = None  # None => dense decoding
    reuse_interval: int = 1
    # -- prefill sparsity --
    prefill_sparse: bool = False
    prefill_sparse_threshold: int = 0  # context length above which it activates
    prefill_sparsity_level: float = 0.6  # fraction of causal tiles skipped when active
    prefill_kernel_efficiency: float = 1.0  # relative to LServe's fused kernel (Fig. 12)
    # -- engineering factors --
    decode_attention_efficiency: float = 1.0  # relative to a tuned paged-attention kernel
    per_step_overhead_s: float = 3.5e-3  # scheduler, sampling, non-GEMM kernels per decode step
    per_prefill_overhead_s: float = 30e-3  # tokenisation, scheduling, graph setup per prefill
    supports_gqa: bool = True

    def __post_init__(self) -> None:
        for field_name in ("weight_bits", "activation_bits", "kv_bits"):
            if getattr(self, field_name) not in (4, 8, 16):
                raise ValueError(f"{field_name} must be 4, 8 or 16")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.logical_page_size is not None:
            if self.logical_page_size <= 0 or self.page_size % self.logical_page_size:
                raise ValueError("logical_page_size must divide page_size")
        if not 0.0 <= self.streaming_head_ratio <= 1.0:
            raise ValueError("streaming_head_ratio must be in [0, 1]")
        if self.decode_token_budget is not None and self.decode_token_budget <= 0:
            raise ValueError("decode_token_budget must be positive when set")
        if self.reuse_interval < 1:
            raise ValueError("reuse_interval must be >= 1")
        if not 0.0 <= self.prefill_sparsity_level < 1.0:
            raise ValueError("prefill_sparsity_level must be in [0, 1)")
        if self.per_step_overhead_s < 0 or self.per_prefill_overhead_s < 0:
            raise ValueError("overheads must be non-negative")

    # -- derived helpers ----------------------------------------------------------
    @property
    def effective_logical_page_size(self) -> int:
        return self.logical_page_size or self.page_size

    @property
    def has_dynamic_decode_sparsity(self) -> bool:
        return self.decode_token_budget is not None

    @property
    def has_static_sparsity(self) -> bool:
        return self.streaming_head_ratio > 0.0

    def streaming_window(self) -> int:
        """Tokens a streaming head keeps/attends to (sink + local)."""
        return self.sink_tokens + self.local_tokens

    def dense_decode_tokens(self, context_length: int) -> int:
        """KV tokens a *dense* (retrieval) head reads at one decode step."""
        if self.decode_token_budget is None:
            return context_length
        return min(context_length, self.decode_token_budget)

    def prefill_visited_fraction(self, context_length: int) -> float:
        """Fraction of causal attention tiles computed during prefill.

        Combines static sparsity (streaming heads do nearly constant work at
        long context) and, when enabled past the threshold, dynamic prefill
        sparsity (MInference-style).
        """
        # Streaming heads: constant work ~= window / context per head.
        if self.has_static_sparsity and context_length > 0:
            window = min(1.0, self.streaming_window() / context_length)
            static_fraction = (
                (1.0 - self.streaming_head_ratio) + self.streaming_head_ratio * window
            )
        else:
            static_fraction = 1.0
        dynamic_fraction = 1.0
        if self.prefill_sparse and context_length >= max(1, self.prefill_sparse_threshold):
            dynamic_fraction = 1.0 - self.prefill_sparsity_level
        return static_fraction * dynamic_fraction

    def with_overrides(self, **kwargs) -> "SystemPolicy":
        return replace(self, **kwargs)
