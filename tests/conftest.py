"""Shared fixtures and audit helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer


def pytest_configure(config):
    """Register the ``slow`` marker (long end-to-end runs, split out in CI)."""
    config.addinivalue_line(
        "markers",
        "slow: long-running end-to-end test; excluded from the fast CI lane "
        '(run with `-m slow`, skipped by `-m "not slow"`)',
    )


def assert_no_leaked_pages(allocator, backend=None, cold_store=None, draft_source=None) -> None:
    """Assert every KV page went back to the pool (and every tier drained).

    The shared zero-leak audit used at the end of serving/cluster/tiering
    tests: the page allocator must report nothing allocated, the backend (when
    given) must hold no live KV tokens, and the cold tier (when given) must be
    empty — demoted snapshots count as leaks too.  When ``draft_source`` is
    given, its draft engine (if it has one, e.g. ``CheapEngineDraft``) must
    also hold zero allocated pages and no lingering per-request draft state —
    speculative scratch KV counts as a leak the same as target KV.
    """
    assert allocator.num_allocated == 0, (
        f"leaked {allocator.num_allocated} hot-tier pages "
        f"(free={allocator.num_free}, capacity={allocator.capacity})"
    )
    if backend is not None:
        in_use = backend.kv_tokens_in_use()
        assert in_use == 0, f"backend still holds {in_use} KV tokens"
        store = getattr(backend, "cold_store", None)
        if cold_store is None and store is not None:
            cold_store = store
    if cold_store is not None:
        assert cold_store.num_pages == 0, (
            f"leaked {cold_store.num_pages} cold-tier pages "
            f"({cold_store.num_entries} entries)"
        )
    if draft_source is not None:
        fed = getattr(draft_source, "_fed", None)
        if fed is not None:
            assert not fed, f"draft source still tracks requests: {sorted(fed)}"
        draft_engine = getattr(draft_source, "engine", None)
        if draft_engine is not None:
            dense = draft_engine.cache.dense_cache
            if dense is not None:
                assert dense.allocator.num_allocated == 0, (
                    f"leaked {dense.allocator.num_allocated} draft-KV pages"
                )
            streaming = getattr(draft_engine.cache, "_streaming", None)
            if streaming is not None:
                assert not streaming, (
                    f"draft engine still holds {len(streaming)} streaming KV stores"
                )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def tiny_config():
    return tiny_model_config()


@pytest.fixture()
def tiny_model(tiny_config) -> TinyTransformer:
    return TinyTransformer(tiny_config, seed=7)


def random_qkv(
    rng: np.random.Generator,
    n_q: int,
    n_kv: int,
    n_heads: int = 4,
    n_kv_heads: int = 2,
    head_dim: int = 16,
):
    """Random query/key/value tensors in the repository's shape convention."""
    q = rng.normal(size=(n_q, n_heads, head_dim))
    k = rng.normal(size=(n_kv, n_kv_heads, head_dim))
    v = rng.normal(size=(n_kv, n_kv_heads, head_dim))
    return q, k, v
