"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def tiny_config():
    return tiny_model_config()


@pytest.fixture()
def tiny_model(tiny_config) -> TinyTransformer:
    return TinyTransformer(tiny_config, seed=7)


def random_qkv(
    rng: np.random.Generator,
    n_q: int,
    n_kv: int,
    n_heads: int = 4,
    n_kv_heads: int = 2,
    head_dim: int = 16,
):
    """Random query/key/value tensors in the repository's shape convention."""
    q = rng.normal(size=(n_q, n_heads, head_dim))
    k = rng.normal(size=(n_kv, n_kv_heads, head_dim))
    v = rng.normal(size=(n_kv, n_kv_heads, head_dim))
    return q, k, v
