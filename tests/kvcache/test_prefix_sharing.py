"""Sharing correctness: fork / copy-on-write / attach across the KV stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.allocator import OutOfPagesError
from repro.kvcache.dual_cache import DualPagedKVCache, StreamingKVStore
from repro.kvcache.paged_cache import PagedCacheConfig, PagedKVCache
from repro.kvcache.prefix_index import PrefixIndex


def make_cache(**overrides) -> PagedKVCache:
    defaults = dict(
        n_layers=2, n_kv_heads=2, head_dim=4, page_size=4, num_pages=32, kv_bits=16,
        logical_page_size=None,
    )
    defaults.update(overrides)
    return PagedKVCache(PagedCacheConfig(**defaults))


def fill(cache, seq_id, rng, n_tokens, layers=None):
    """Append ``n_tokens`` random tokens to every layer; returns the k/v drawn."""
    cfg = cache.config
    layers = range(cfg.n_layers) if layers is None else layers
    k = rng.normal(size=(n_tokens, cfg.n_kv_heads, cfg.head_dim))
    v = rng.normal(size=(n_tokens, cfg.n_kv_heads, cfg.head_dim))
    for layer in layers:
        cache.append(seq_id, layer, k, v)
    return k, v


class TestForkCopyOnWrite:
    def test_fork_shares_pages_by_reference(self, rng):
        cache = make_cache()
        cache.add_sequence("parent")
        fill(cache, "parent", rng, 10)  # 3 pages (4+4+2)
        before = cache.allocator.num_allocated
        cache.fork_sequence("parent", "child")
        assert cache.allocator.num_allocated == before  # no new physical pages
        assert cache.page_table("child").pages == cache.page_table("parent").pages
        for page in cache.page_table("parent").pages:
            assert cache.allocator.refcount(page) == 2
        # Reads are identical.
        for layer in range(cache.config.n_layers):
            kp, vp = cache.get("parent", layer)
            kc, vc = cache.get("child", layer)
            np.testing.assert_array_equal(kp, kc)
            np.testing.assert_array_equal(vp, vc)

    def test_divergent_append_copies_tail_page_once(self, rng):
        cache = make_cache()
        cache.add_sequence("parent")
        fill(cache, "parent", rng, 10)
        cache.fork_sequence("parent", "child")
        allocated_before = cache.allocator.num_allocated
        k_parent, _ = cache.get("parent", 0)

        fill(cache, "child", rng, 1)  # lands in the shared partial tail page
        # Exactly one page was copied, and the tables now diverge at the tail.
        assert cache.allocator.num_allocated == allocated_before + 1
        assert cache.page_table("child").pages[:-1] == cache.page_table("parent").pages[:-1]
        assert cache.page_table("child").pages[-1] != cache.page_table("parent").pages[-1]
        tail = cache.page_table("parent").pages[-1]
        assert cache.allocator.refcount(tail) == 1
        # The parent's data is untouched; the child kept the shared history.
        k_parent_after, _ = cache.get("parent", 0)
        np.testing.assert_array_equal(k_parent, k_parent_after)
        k_child, _ = cache.get("child", 0)
        np.testing.assert_array_equal(k_child[:10], k_parent)

    def test_parent_append_also_triggers_cow(self, rng):
        """CoW is symmetric: whichever side writes first copies the tail."""
        cache = make_cache()
        cache.add_sequence("parent")
        k0, _ = fill(cache, "parent", rng, 6)
        cache.fork_sequence("parent", "child")
        fill(cache, "parent", rng, 2)  # parent diverges first
        assert cache.page_table("parent").pages[-1] != cache.page_table("child").pages[-1]
        k_child, _ = cache.get("child", 0)
        np.testing.assert_array_equal(k_child, k0)

    def test_fork_at_page_boundary_needs_no_cow(self, rng):
        cache = make_cache()
        cache.add_sequence("parent")
        fill(cache, "parent", rng, 8)  # exactly 2 full pages
        cache.fork_sequence("parent", "child")
        allocated_before = cache.allocator.num_allocated
        fill(cache, "child", rng, 1)
        # One fresh page for the child's new token; no copy of shared pages.
        assert cache.allocator.num_allocated == allocated_before + 1
        for page in cache.page_table("parent").pages:
            assert cache.allocator.refcount(page) == 2

    def test_key_stats_isolated_after_fork(self, rng):
        cache = make_cache(logical_page_size=2)
        cache.add_sequence("parent")
        fill(cache, "parent", rng, 5)  # tail logical page is partial
        cache.fork_sequence("parent", "child")
        kmin_before, kmax_before = cache.key_stats("parent", 0)
        fill(cache, "child", rng, 1)
        kmin_after, kmax_after = cache.key_stats("parent", 0)
        np.testing.assert_array_equal(kmin_before, kmin_after)
        np.testing.assert_array_equal(kmax_before, kmax_after)
        # Full-page stats objects stay shared with the page (aliased).
        assert (
            cache.key_stats_objects("parent", 0)[0]
            is cache.key_stats_objects("child", 0)[0]
        )

    def test_release_decrefs_instead_of_freeing(self, rng):
        """Removing one sibling must not free the other's shared pages."""
        cache = make_cache()
        cache.add_sequence("parent")
        fill(cache, "parent", rng, 10)
        cache.fork_sequence("parent", "child")
        k_child, v_child = cache.get("child", 1)
        cache.remove_sequence("parent")
        assert cache.allocator.num_allocated == 3
        k_after, v_after = cache.get("child", 1)
        np.testing.assert_array_equal(k_child, k_after)
        np.testing.assert_array_equal(v_child, v_after)
        cache.remove_sequence("child")
        assert cache.allocator.num_allocated == 0

    def test_fork_validation(self, rng):
        cache = make_cache()
        cache.add_sequence("a")
        with pytest.raises(KeyError):
            cache.fork_sequence("missing", "b")
        with pytest.raises(ValueError):
            cache.fork_sequence("a", "a")

    def test_memory_model_counts_shared_pages_once(self, rng):
        cache = make_cache()
        cache.add_sequence("a")
        fill(cache, "a", rng, 8)
        solo = cache.memory_bytes_model()
        cache.fork_sequence("a", "b")
        assert cache.memory_bytes_model() == solo


class TestPrepareAppend:
    def test_reservation_is_atomic(self, rng):
        cache = make_cache(num_pages=2)
        cache.add_sequence("a")
        fill(cache, "a", rng, 8)  # pool exhausted (2 pages)
        with pytest.raises(OutOfPagesError):
            cache.prepare_append("a", 1)
        # Nothing changed: the failed reservation left no trace.
        assert cache.page_table("a").num_pages == 2
        assert cache.allocator.num_free == 0
        assert cache.seq_len("a") == 8

    def test_reservation_covers_cow(self, rng):
        cache = make_cache(num_pages=4)
        cache.add_sequence("a")
        fill(cache, "a", rng, 6)
        cache.fork_sequence("a", "b")
        assert cache.pages_required("b", 1) == 1  # the CoW copy
        assert cache.pages_required("b", 3) == 2  # CoW + one growth page
        cache.prepare_append("b", 1)
        # After reservation the append cannot allocate (tail now private).
        free_before = cache.allocator.num_free
        fill(cache, "b", rng, 1)
        assert cache.allocator.num_free == free_before

    def test_failed_cow_reservation_raises_before_mutation(self, rng):
        cache = make_cache(num_pages=2)
        cache.add_sequence("a")
        fill(cache, "a", rng, 6)  # 2 pages, pool full
        cache.fork_sequence("a", "b")
        with pytest.raises(OutOfPagesError):
            cache.prepare_append("b", 1)  # CoW needs a page; none free
        assert cache.page_table("b").pages == cache.page_table("a").pages


class TestAttachPrefix:
    def test_attach_shares_full_pages(self, rng):
        cache = make_cache(logical_page_size=2)
        cache.add_sequence("donor")
        fill(cache, "donor", rng, 8)
        pages = list(cache.page_table("donor").pages)
        stats = [list(cache.key_stats_objects("donor", layer)) for layer in range(2)]
        cache.attach_prefix("twin", pages, 8, stats)
        for layer in range(2):
            kd, vd = cache.get("donor", layer)
            kt, vt = cache.get("twin", layer)
            np.testing.assert_array_equal(kd, kt)
            np.testing.assert_array_equal(vd, vt)
        for page in pages:
            assert cache.allocator.refcount(page) == 2
        with pytest.raises(ValueError):
            cache.attach_prefix("twin", pages, 8, stats)
        with pytest.raises(ValueError):
            cache.attach_prefix("bad", pages, 7, stats)  # not whole pages

    def test_attach_then_append_extends_privately(self, rng):
        cache = make_cache()
        cache.add_sequence("donor")
        k0, _ = fill(cache, "donor", rng, 8)
        pages = list(cache.page_table("donor").pages)
        stats = [list(cache.key_stats_objects("donor", layer)) for layer in range(2)]
        cache.attach_prefix("twin", pages, 8, stats)
        fill(cache, "twin", rng, 3)
        assert cache.seq_len("twin") == 11
        assert cache.seq_len("donor") == 8
        k_twin, _ = cache.get("twin", 0)
        np.testing.assert_array_equal(k_twin[:8], k0)


class TestDualCacheSharing:
    def make_dual(self, retain=False, num_pages=64):
        config = PagedCacheConfig(
            n_layers=2, n_kv_heads=4, head_dim=4, page_size=4, num_pages=num_pages,
            kv_bits=16,
        )
        mask = np.array([False, True, False, True])
        return DualPagedKVCache(
            config, streaming_head_mask=mask, sink_tokens=4, local_tokens=8,
            retain_streaming_pages=retain,
        )

    def test_fork_clones_streaming_state(self, rng):
        dual = self.make_dual()
        dual.add_sequence("p")
        for layer in range(2):
            dual.append("p", layer, rng.normal(size=(10, 4, 4)), rng.normal(size=(10, 4, 4)))
        dual.fork_sequence("p", "c")
        kp, vp, pp = dual.get_streaming("p", 0)
        kc, vc, pc = dual.get_streaming("c", 0)
        np.testing.assert_array_equal(kp, kc)
        np.testing.assert_array_equal(pp, pc)
        # Divergence: the child's streaming store evolves independently.
        for layer in range(2):
            dual.append("c", layer, rng.normal(size=(6, 4, 4)), rng.normal(size=(6, 4, 4)))
        _, _, pp2 = dual.get_streaming("p", 0)
        np.testing.assert_array_equal(pp, pp2)
        assert dual.seq_len("c") == 16
        assert dual.seq_len("p") == 10

    def test_streaming_restore_matches_incremental(self, rng):
        k_hist = rng.normal(size=(23, 2, 4))
        v_hist = rng.normal(size=(23, 2, 4))
        live = StreamingKVStore(
            n_kv_heads=2, head_dim=4, sink_tokens=4, local_tokens=8, eviction_granularity=4
        )
        live.append(k_hist, v_hist)
        for boundary in (0, 3, 4, 8, 12, 20, 23):
            restored = StreamingKVStore.restore(
                n_kv_heads=2, head_dim=4, sink_tokens=4, local_tokens=8,
                eviction_granularity=4, k_history=k_hist, v_history=v_hist,
                total_tokens=boundary,
            )
            ref = StreamingKVStore(
                n_kv_heads=2, head_dim=4, sink_tokens=4, local_tokens=8,
                eviction_granularity=4,
            )
            ref.append(k_hist[:boundary], v_hist[:boundary])
            k_a, v_a, p_a = restored.get()
            k_b, v_b, p_b = ref.get()
            np.testing.assert_array_equal(p_a, p_b)
            np.testing.assert_array_equal(k_a, k_b)
            np.testing.assert_array_equal(v_a, v_b)

    def test_streaming_history_retention(self, rng):
        dual = self.make_dual(retain=True)
        dual.add_sequence("p")
        k = rng.normal(size=(13, 4, 4))
        v = rng.normal(size=(13, 4, 4))
        for layer in range(2):
            dual.append("p", layer, k, v)
        k_hist, v_hist = dual.streaming_history("p", 0)
        np.testing.assert_array_equal(k_hist, k[:, [1, 3]])
        np.testing.assert_array_equal(v_hist, v[:, [1, 3]])
        dual2 = self.make_dual(retain=False)
        dual2.add_sequence("p")
        with pytest.raises(RuntimeError):
            dual2.streaming_history("p", 0)


class TestRefcountChurn:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_randomized_fork_append_release_no_leak(self, seed):
        """After arbitrary fork/append/release churn, releasing everything
        (sequences and index) must return every page to the pool — no leaks,
        and no double-free along the way."""
        rng = np.random.default_rng(seed)
        cache = make_cache(num_pages=128, n_layers=1)
        index = PrefixIndex(page_size=4, allocator=cache.allocator)
        live: list[str] = []
        counter = 0
        for _ in range(40):
            op = rng.integers(0, 4)
            if op == 0 or not live:  # new sequence
                seq = f"s{counter}"
                counter += 1
                cache.add_sequence(seq)
                live.append(seq)
            elif op == 1:  # fork a live sequence
                parent = live[int(rng.integers(0, len(live)))]
                child = f"s{counter}"
                counter += 1
                cache.fork_sequence(parent, child)
                live.append(child)
            elif op == 2:  # append a few tokens
                seq = live[int(rng.integers(0, len(live)))]
                n = int(rng.integers(1, 7))
                if cache.allocator.can_allocate(cache.pages_required(seq, n)):
                    k = rng.normal(size=(n, 2, 4))
                    cache.append(seq, 0, k, k)
            else:  # release
                seq = live.pop(int(rng.integers(0, len(live))))
                cache.remove_sequence(seq)
            # Occasionally pin a live sequence's full pages in the index.
            if live and rng.integers(0, 3) == 0:
                seq = live[int(rng.integers(0, len(live)))]
                n_pages = cache.seq_len(seq) // 4
                if n_pages:
                    tokens = np.arange(n_pages * 4) + hash(seq) % 97
                    index.register(
                        tokens,
                        list(cache.page_table(seq).pages[:n_pages]),
                        lambda i: [[]],
                        lambda i: (None, None),
                    )
            assert (
                cache.allocator.num_free + cache.allocator.num_allocated
                == cache.allocator.capacity
            )
        for seq in live:
            cache.remove_sequence(seq)
        index.clear()
        assert cache.allocator.num_allocated == 0
        assert cache.allocator.num_free == cache.allocator.capacity
