"""Tests for KV quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kvcache.quantization import (
    dequantize,
    quantization_error_bound,
    quantize,
)


class TestQuantize:
    def test_rejects_unsupported_bits(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(4), bits=3)

    def test_fp16_passthrough(self, rng):
        x = rng.normal(size=(4, 8))
        qt = quantize(x, bits=16)
        np.testing.assert_array_equal(dequantize(qt), x)
        assert quantization_error_bound(x, 16).max() == 0.0

    @pytest.mark.parametrize("bits", [4, 8])
    def test_roundtrip_error_within_bound(self, rng, bits):
        x = rng.normal(size=(16, 4, 32))
        qt = quantize(x, bits=bits)
        err = np.abs(dequantize(qt) - x)
        bound = quantization_error_bound(x, bits)
        assert np.all(err <= bound + 1e-12)

    def test_int8_more_accurate_than_int4(self, rng):
        x = rng.normal(size=(8, 64))
        err4 = np.abs(dequantize(quantize(x, 4)) - x).mean()
        err8 = np.abs(dequantize(quantize(x, 8)) - x).mean()
        assert err8 < err4

    def test_constant_input_exact(self):
        x = np.full((3, 8), 2.5)
        qt = quantize(x, bits=4)
        np.testing.assert_allclose(dequantize(qt), x)

    def test_codes_within_range(self, rng):
        x = rng.normal(size=(5, 16)) * 100
        qt = quantize(x, bits=4)
        assert qt.codes.dtype == np.uint8
        assert qt.codes.max() <= 15
        qt8 = quantize(x, bits=8)
        assert qt8.codes.max() <= 255

    def test_extremes_preserved(self, rng):
        """Group min and max quantize exactly (asymmetric quantization)."""
        x = rng.normal(size=(4, 16))
        deq = dequantize(quantize(x, bits=8))
        np.testing.assert_allclose(deq.min(axis=-1), x.min(axis=-1), atol=1e-9)
        np.testing.assert_allclose(deq.max(axis=-1), x.max(axis=-1), rtol=1e-6)

    def test_group_axis(self, rng):
        x = rng.normal(size=(6, 10))
        qt = quantize(x, bits=8, group_axis=0)
        assert qt.scale.shape == (1, 10)
        err = np.abs(dequantize(qt) - x)
        bound = quantization_error_bound(x, 8, group_axis=0)
        assert np.all(err <= bound + 1e-12)

    def test_nbytes_model_ordering(self, rng):
        x = rng.normal(size=(16, 64))
        b16 = quantize(x, 16).nbytes_model()
        b8 = quantize(x, 8).nbytes_model()
        b4 = quantize(x, 4).nbytes_model()
        assert b4 < b8 < b16

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(2, 32)),
            elements=st.floats(-1e4, 1e4),
        ),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_bounded(self, x, bits):
        qt = quantize(x, bits)
        err = np.abs(dequantize(qt) - x)
        bound = quantization_error_bound(x, bits)
        assert np.all(err <= bound + 1e-9 + 1e-9 * np.abs(x))
