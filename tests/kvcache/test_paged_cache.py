"""Tests for the paged KV cache."""

import numpy as np
import pytest

from repro.kvcache.allocator import OutOfPagesError
from repro.kvcache.paged_cache import PagedCacheConfig, PagedKVCache


def make_cache(**overrides) -> PagedKVCache:
    defaults = dict(
        n_layers=2, n_kv_heads=2, head_dim=4, page_size=4, num_pages=32, kv_bits=16,
        logical_page_size=None,
    )
    defaults.update(overrides)
    return PagedKVCache(PagedCacheConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PagedCacheConfig(n_layers=0, n_kv_heads=1, head_dim=1)
        with pytest.raises(ValueError):
            PagedCacheConfig(n_layers=1, n_kv_heads=1, head_dim=1, kv_bits=5)
        with pytest.raises(ValueError):
            PagedCacheConfig(
                n_layers=1, n_kv_heads=1, head_dim=1, page_size=10, logical_page_size=3
            )

    def test_logical_page_defaults(self):
        cfg = PagedCacheConfig(n_layers=1, n_kv_heads=1, head_dim=1, page_size=64)
        assert cfg.effective_logical_page_size == 64
        assert cfg.logical_pages_per_physical == 1
        cfg2 = PagedCacheConfig(
            n_layers=1, n_kv_heads=1, head_dim=1, page_size=64, logical_page_size=16
        )
        assert cfg2.logical_pages_per_physical == 4


class TestSequenceLifecycle:
    def test_add_remove(self, rng):
        cache = make_cache()
        cache.add_sequence("a")
        assert cache.has_sequence("a")
        k = rng.normal(size=(9, 2, 4))
        for layer in range(2):
            cache.append("a", layer, k, k)
        used = cache.allocator.num_allocated
        assert used == 3  # ceil(9 / 4)
        cache.remove_sequence("a")
        assert cache.allocator.num_allocated == 0
        assert not cache.has_sequence("a")

    def test_duplicate_add(self):
        cache = make_cache()
        cache.add_sequence("a")
        with pytest.raises(ValueError):
            cache.add_sequence("a")

    def test_unknown_sequence(self):
        cache = make_cache()
        with pytest.raises(KeyError):
            cache.get("missing", 0)

    def test_out_of_pages(self, rng):
        cache = make_cache(num_pages=2)
        cache.add_sequence("a")
        with pytest.raises(OutOfPagesError):
            cache.append("a", 0, rng.normal(size=(9, 2, 4)), rng.normal(size=(9, 2, 4)))


class TestAppendGet:
    def test_roundtrip_fp16(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        k = rng.normal(size=(7, 2, 4))
        v = rng.normal(size=(7, 2, 4))
        cache.append("s", 0, k, v)
        k_out, v_out = cache.get("s", 0)
        np.testing.assert_allclose(k_out, k)
        np.testing.assert_allclose(v_out, v)
        assert cache.seq_len("s") == 7

    def test_incremental_append_matches(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        k = rng.normal(size=(10, 2, 4))
        v = rng.normal(size=(10, 2, 4))
        cache.append("s", 0, k[:6], v[:6])
        cache.append("s", 0, k[6:], v[6:])
        k_out, _ = cache.get("s", 0)
        np.testing.assert_allclose(k_out, k)

    def test_layers_are_independent(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        k0 = rng.normal(size=(4, 2, 4))
        k1 = rng.normal(size=(4, 2, 4))
        cache.append("s", 0, k0, k0)
        cache.append("s", 1, k1, k1)
        np.testing.assert_allclose(cache.get("s", 0)[0], k0)
        np.testing.assert_allclose(cache.get("s", 1)[0], k1)

    def test_multiple_sequences_isolated(self, rng):
        cache = make_cache()
        cache.add_sequence("a")
        cache.add_sequence("b")
        ka = rng.normal(size=(5, 2, 4))
        kb = rng.normal(size=(3, 2, 4))
        cache.append("a", 0, ka, ka)
        cache.append("b", 0, kb, kb)
        np.testing.assert_allclose(cache.get("a", 0)[0], ka)
        np.testing.assert_allclose(cache.get("b", 0)[0], kb)

    def test_quantized_append_close_but_lossy(self, rng):
        cache = make_cache(kv_bits=4)
        cache.add_sequence("s")
        k = rng.normal(size=(8, 2, 4))
        cache.append("s", 0, k, k)
        k_out, _ = cache.get("s", 0)
        assert not np.allclose(k_out, k)  # lossy
        assert np.abs(k_out - k).max() < 0.5  # but close

    def test_empty_append_is_noop(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        cache.append("s", 0, np.zeros((0, 2, 4)), np.zeros((0, 2, 4)))
        assert cache.seq_len("s") == 0

    def test_shape_validation(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        with pytest.raises(ValueError):
            cache.append("s", 0, rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)))
        with pytest.raises(IndexError):
            cache.append("s", 5, rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)))

    def test_get_empty(self):
        cache = make_cache()
        cache.add_sequence("s")
        k, v = cache.get("s", 0)
        assert k.shape == (0, 2, 4)


class TestGatherPages:
    def test_gather_selected_pages(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        k = rng.normal(size=(12, 2, 4))
        cache.append("s", 0, k, k)
        k_out, v_out, pos = cache.gather_pages("s", 0, [0, 2])
        np.testing.assert_allclose(k_out, np.concatenate([k[0:4], k[8:12]]))
        np.testing.assert_array_equal(pos, np.r_[0:4, 8:12])

    def test_gather_partial_last_page(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        k = rng.normal(size=(6, 2, 4))
        cache.append("s", 0, k, k)
        k_out, _, pos = cache.gather_pages("s", 0, [1])
        assert k_out.shape[0] == 2
        np.testing.assert_array_equal(pos, [4, 5])

    def test_gather_deduplicates_and_sorts(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        k = rng.normal(size=(8, 2, 4))
        cache.append("s", 0, k, k)
        _, _, pos = cache.gather_pages("s", 0, [1, 0, 1])
        np.testing.assert_array_equal(pos, np.arange(8))

    def test_gather_out_of_range(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        cache.append("s", 0, rng.normal(size=(4, 2, 4)), rng.normal(size=(4, 2, 4)))
        with pytest.raises(IndexError):
            cache.gather_pages("s", 0, [3])

    def test_gather_empty_selection(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        cache.append("s", 0, rng.normal(size=(4, 2, 4)), rng.normal(size=(4, 2, 4)))
        k, v, pos = cache.gather_pages("s", 0, [])
        assert k.shape[0] == 0 and pos.size == 0


class TestKeyStats:
    def test_stats_cover_keys(self, rng):
        cache = make_cache(page_size=8, logical_page_size=4)
        cache.add_sequence("s")
        k = rng.normal(size=(13, 2, 4))
        cache.append("s", 0, k[:5], k[:5])
        cache.append("s", 0, k[5:], k[5:])
        kmin, kmax = cache.key_stats("s", 0)
        assert kmin.shape == (4, 2, 4)  # ceil(13 / 4) logical pages
        for i in range(4):
            chunk = k[i * 4 : (i + 1) * 4]
            assert np.all(chunk >= kmin[i][None] - 1e-12)
            assert np.all(chunk <= kmax[i][None] + 1e-12)

    def test_stats_incremental_equals_batch(self, rng):
        k = rng.normal(size=(11, 2, 4))
        batch = make_cache(page_size=8, logical_page_size=4)
        batch.add_sequence("s")
        batch.append("s", 0, k, k)
        inc = make_cache(page_size=8, logical_page_size=4)
        inc.add_sequence("s")
        for i in range(11):
            inc.append("s", 0, k[i : i + 1], k[i : i + 1])
        for a, b in zip(batch.key_stats("s", 0), inc.key_stats("s", 0)):
            np.testing.assert_allclose(a, b)

    def test_num_logical_pages(self, rng):
        cache = make_cache(page_size=8, logical_page_size=4)
        cache.add_sequence("s")
        cache.append("s", 0, rng.normal(size=(9, 2, 4)), rng.normal(size=(9, 2, 4)))
        assert cache.num_logical_pages("s", 0) == 3

    def test_stats_empty(self):
        cache = make_cache()
        cache.add_sequence("s")
        kmin, kmax = cache.key_stats("s", 0)
        assert kmin.shape[0] == 0


class TestMemoryModel:
    def test_quantized_cache_smaller(self, rng):
        # Use a realistic head_dim so the per-token scale/zero overhead does
        # not dominate the quantized code size.
        k = rng.normal(size=(64, 2, 64))
        sizes = {}
        for bits in (16, 8, 4):
            cache = make_cache(kv_bits=bits, page_size=16, head_dim=64)
            cache.add_sequence("s")
            cache.append("s", 0, k, k)
            sizes[bits] = cache.memory_bytes_model()
        assert sizes[4] < sizes[8] < sizes[16]

    def test_memory_scales_with_pages(self, rng):
        cache = make_cache()
        cache.add_sequence("s")
        cache.append("s", 0, rng.normal(size=(4, 2, 4)), rng.normal(size=(4, 2, 4)))
        m1 = cache.memory_bytes_model()
        cache.append("s", 0, rng.normal(size=(8, 2, 4)), rng.normal(size=(8, 2, 4)))
        m2 = cache.memory_bytes_model()
        assert m2 == pytest.approx(3 * m1)

    def test_per_sequence_accounting(self, rng):
        cache = make_cache()
        cache.add_sequence("a")
        cache.add_sequence("b")
        cache.append("a", 0, rng.normal(size=(4, 2, 4)), rng.normal(size=(4, 2, 4)))
        cache.append("b", 0, rng.normal(size=(8, 2, 4)), rng.normal(size=(8, 2, 4)))
        total = cache.memory_bytes_model()
        assert total == pytest.approx(
            cache.memory_bytes_model("a") + cache.memory_bytes_model("b")
        )
