"""Tests for the two-way (dense + streaming) paged KV cache."""

import numpy as np
import pytest

from repro.kvcache.dual_cache import DualPagedKVCache, StreamingKVStore
from repro.kvcache.paged_cache import PagedCacheConfig


def make_dual(mask=(False, True), sink=4, local=4, **overrides) -> DualPagedKVCache:
    defaults = dict(n_layers=2, n_kv_heads=len(mask), head_dim=4, page_size=4, num_pages=64)
    defaults.update(overrides)
    cfg = PagedCacheConfig(**defaults)
    return DualPagedKVCache(cfg, np.array(mask), sink_tokens=sink, local_tokens=local)


class TestStreamingKVStore:
    def test_keeps_sink_and_local_only(self, rng):
        store = StreamingKVStore(n_kv_heads=1, head_dim=2, sink_tokens=2, local_tokens=3)
        k = rng.normal(size=(10, 1, 2))
        store.append(k, k)
        k_out, _, pos = store.get()
        np.testing.assert_array_equal(pos, [0, 1, 7, 8, 9])
        np.testing.assert_allclose(k_out, k[pos])
        assert store.total_tokens == 10
        assert store.stored_tokens == 5

    def test_short_context_keeps_everything(self, rng):
        store = StreamingKVStore(n_kv_heads=1, head_dim=2, sink_tokens=4, local_tokens=4)
        k = rng.normal(size=(3, 1, 2))
        store.append(k, k)
        _, _, pos = store.get()
        np.testing.assert_array_equal(pos, [0, 1, 2])

    def test_memory_constant_in_context_length(self, rng):
        store = StreamingKVStore(n_kv_heads=2, head_dim=4, sink_tokens=4, local_tokens=8)
        mem0 = store.memory_bytes_model()
        store.append(rng.normal(size=(100, 2, 4)), rng.normal(size=(100, 2, 4)))
        assert store.memory_bytes_model() == mem0
        assert store.stored_tokens <= 12

    def test_empty_get(self):
        store = StreamingKVStore(n_kv_heads=1, head_dim=2, sink_tokens=1, local_tokens=1)
        k, v, pos = store.get()
        assert k.shape[0] == 0 and pos.size == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingKVStore(n_kv_heads=1, head_dim=2, sink_tokens=-1, local_tokens=1)
        with pytest.raises(ValueError):
            StreamingKVStore(n_kv_heads=1, head_dim=2, sink_tokens=1, local_tokens=0)

    def test_shape_validation(self, rng):
        store = StreamingKVStore(n_kv_heads=2, head_dim=2, sink_tokens=1, local_tokens=1)
        with pytest.raises(ValueError):
            store.append(rng.normal(size=(2, 1, 2)), rng.normal(size=(2, 1, 2)))


class TestDualPagedKVCache:
    def test_mask_validation(self):
        cfg = PagedCacheConfig(n_layers=1, n_kv_heads=2, head_dim=4)
        with pytest.raises(ValueError):
            DualPagedKVCache(cfg, np.array([True]), sink_tokens=1, local_tokens=1)

    def test_routes_heads(self, rng):
        dual = make_dual(mask=(False, True))
        dual.add_sequence("s")
        k = rng.normal(size=(10, 2, 4))
        v = rng.normal(size=(10, 2, 4))
        dual.append("s", 0, k, v)
        k_dense, _ = dual.get_dense("s", 0)
        assert k_dense.shape == (10, 1, 4)
        np.testing.assert_allclose(k_dense[:, 0], k[:, 0])
        k_stream, _, pos = dual.get_streaming("s", 0)
        assert k_stream.shape[1] == 1
        np.testing.assert_allclose(k_stream[:, 0], k[pos, 1])

    def test_streaming_positions_bounded(self, rng):
        # Page size 4 with a 2-token local window: eviction is page-granular,
        # so the local window spans back to the start of the newest page.
        dual = make_dual(mask=(False, True), sink=2, local=2)
        dual.add_sequence("s")
        k = rng.normal(size=(20, 2, 4))
        dual.append("s", 0, k, k)
        _, _, pos = dual.get_streaming("s", 0)
        assert pos.size <= 2 + 4  # sink tokens + one local page
        np.testing.assert_array_equal(pos, [0, 1, 16, 17, 18, 19])

    def test_all_dense(self, rng):
        dual = make_dual(mask=(False, False))
        dual.add_sequence("s")
        k = rng.normal(size=(5, 2, 4))
        dual.append("s", 0, k, k)
        k_dense, _ = dual.get_dense("s", 0)
        assert k_dense.shape == (5, 2, 4)
        k_stream, _, pos = dual.get_streaming("s", 0)
        assert k_stream.shape[0] == 0

    def test_all_streaming(self, rng):
        dual = make_dual(mask=(True, True))
        dual.add_sequence("s")
        k = rng.normal(size=(5, 2, 4))
        dual.append("s", 0, k, k)
        assert dual.seq_len("s") == 5
        k_dense, _ = dual.get_dense("s", 0)
        assert k_dense.shape[0] == 0

    def test_seq_lifecycle(self, rng):
        dual = make_dual()
        dual.add_sequence("s")
        with pytest.raises(ValueError):
            dual.add_sequence("s")
        dual.append("s", 0, rng.normal(size=(4, 2, 4)), rng.normal(size=(4, 2, 4)))
        dual.remove_sequence("s")
        assert not dual.has_sequence("s")
        with pytest.raises(KeyError):
            dual.remove_sequence("s")
        with pytest.raises(KeyError):
            dual.seq_len("s")

    def test_append_head_count_validation(self, rng):
        dual = make_dual()
        dual.add_sequence("s")
        with pytest.raises(ValueError):
            dual.append("s", 0, rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)))

    def test_dense_key_stats_exposed(self, rng):
        dual = make_dual(mask=(False, True), page_size=4, logical_page_size=2)
        dual.add_sequence("s")
        k = rng.normal(size=(8, 2, 4))
        dual.append("s", 0, k, k)
        kmin, kmax = dual.dense_key_stats("s", 0)
        assert kmin.shape == (4, 1, 4)
        assert np.all(kmax >= kmin)

    def test_memory_smaller_than_all_dense(self, rng):
        """The two-way cache saves memory versus keeping every head dense."""
        k = rng.normal(size=(64, 2, 4))
        dual = make_dual(mask=(False, True), sink=4, local=4)
        dual.add_sequence("s")
        all_dense = make_dual(mask=(False, False))
        all_dense.add_sequence("s")
        for layer in range(2):
            dual.append("s", layer, k, k)
            all_dense.append("s", layer, k, k)
        assert dual.memory_bytes_model() < all_dense.memory_bytes_model()
