"""Seeded invariant fuzzing of the paged KV cache, prefix index, and cold tier.

Each seed drives a few hundred random operations — sequence creation,
appends, copy-on-write forks, removals, export/import migrations, cold-tier
demote/restore round trips, prefix registration/attachment, prefix-index
demotions and evictions, and the speculative-decoding lifecycle
(draft-append onto a scratch fork, verify-accept committing a prefix back
to the parent, verify-reject rolling the whole fork back, and fused verify
resolving a random subset of live drafts in one call with random accept
counts) — against one small page pool, and re-checks the global bookkeeping
invariants after *every* operation:

* page conservation: ``num_free + num_allocated == capacity``;
* every allocated page has refcount >= 1, and the refcount equals exactly
  the number of owners (sequence tables + prefix-index nodes) we can see;
* pinned pages are precisely the prefix index's hot pages
  (``allocator.num_pinned == index.held_pages``), and every one is allocated;
* per-sequence consistency: all layers agree on the token count and the page
  table covers it;
* the cold tier's entries match the driver's view of what was demoted;
* every live draft scratch is a real sequence extending its recorded base —
  speculative forks obey the same conservation rules as everything else.

At the end of each run everything is torn down and the shared zero-leak
audit must pass — no page may survive in either tier, and no rejected (or
accepted) draft scratch may leave a page behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvcache.allocator import OutOfPagesError
from repro.kvcache.paged_cache import PagedCacheConfig, PagedKVCache
from repro.kvcache.prefix_index import PrefixIndex
from repro.kvcache.tiering import ColdTierStore
from tests.conftest import assert_no_leaked_pages

N_LAYERS = 2
N_KV_HEADS = 2
HEAD_DIM = 4
PAGE_SIZE = 4
NUM_PAGES = 32
VOCAB = 6  # tiny vocabulary so random prompts collide and share prefixes

N_SEEDS = 24
N_OPS = 250


def make_cache() -> PagedKVCache:
    return PagedKVCache(
        PagedCacheConfig(
            n_layers=N_LAYERS,
            n_kv_heads=N_KV_HEADS,
            head_dim=HEAD_DIM,
            page_size=PAGE_SIZE,
            num_pages=NUM_PAGES,
            kv_bits=16,
        )
    )


class FuzzDriver:
    """Random-op driver holding the ground-truth view the invariants check."""

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)
        self.cache = make_cache()
        self.index = PrefixIndex(page_size=PAGE_SIZE, allocator=self.cache.allocator)
        self.cold = ColdTierStore()
        #: live sequence id -> token ids written so far (ground truth).
        self.tokens: dict[str, list[int]] = {}
        #: sequence ids currently parked in the cold tier.
        self.demoted: list[str] = []
        #: draft scratch id -> (parent id, parent token count at fork time).
        self.drafts: dict[str, tuple[str, int]] = {}
        self._next_id = 0

    # -- helpers ---------------------------------------------------------------
    def new_id(self) -> str:
        self._next_id += 1
        return f"seq{self._next_id}"

    def pick_live(self) -> str | None:
        if not self.tokens:
            return None
        return str(self.rng.choice(sorted(self.tokens)))

    def random_tokens(self, n: int) -> list[int]:
        return [int(t) for t in self.rng.integers(0, VOCAB, size=n)]

    def append_tokens(self, seq_id: str, toks: list[int]) -> bool:
        """Reserve + write ``toks`` into every layer; False when out of pages."""
        n = len(toks)
        try:
            self.cache.prepare_append(seq_id, n)
        except OutOfPagesError:
            return False
        for layer in range(N_LAYERS):
            k = self.rng.normal(size=(n, N_KV_HEADS, HEAD_DIM))
            v = self.rng.normal(size=(n, N_KV_HEADS, HEAD_DIM))
            self.cache.append(seq_id, layer, k, v)
        self.tokens[seq_id].extend(toks)
        return True

    # -- operations ------------------------------------------------------------
    def op_add(self) -> None:
        if len(self.tokens) >= 10:
            return
        seq_id = self.new_id()
        self.cache.add_sequence(seq_id)
        self.tokens[seq_id] = []
        self.append_tokens(seq_id, self.random_tokens(int(self.rng.integers(1, 11))))

    def op_append(self) -> None:
        seq_id = self.pick_live()
        if seq_id is not None:
            self.append_tokens(seq_id, self.random_tokens(int(self.rng.integers(1, 7))))

    def op_fork(self) -> None:
        parent = self.pick_live()
        if parent is None or len(self.tokens) >= 10:
            return
        child = self.new_id()
        self.cache.fork_sequence(parent, child)
        self.tokens[child] = list(self.tokens[parent])

    def op_remove(self) -> None:
        seq_id = self.pick_live()
        if seq_id is not None:
            self.cache.remove_sequence(seq_id)
            del self.tokens[seq_id]
            self.drafts.pop(seq_id, None)

    def op_read(self) -> None:
        """Touch a sequence's pages through the access clock the LRU policy uses."""
        seq_id = self.pick_live()
        if seq_id is not None:
            layer = int(self.rng.integers(0, N_LAYERS))
            self.cache.get(seq_id, layer)

    def op_migrate(self) -> None:
        """Export -> remove -> re-import (the disaggregation hand-off shape)."""
        seq_id = self.pick_live()
        if seq_id is None:
            return
        export = self.cache.export_sequence(seq_id)
        self.cache.remove_sequence(seq_id)
        if self.cache.allocator.can_allocate(export.n_pages):
            self.cache.import_sequence(seq_id, export)
        else:
            del self.tokens[seq_id]  # pool too full to take it back: drop it
            self.drafts.pop(seq_id, None)

    def op_demote(self) -> None:
        """Park a sequence's KV snapshot in the cold tier (serving demotion)."""
        seq_id = self.pick_live()
        if seq_id is None:
            return
        export = self.cache.export_sequence(seq_id)
        if seq_id in self.cold or not self.cold.can_accept(export.n_pages):
            return
        self.cache.remove_sequence(seq_id)
        toks = self.tokens.pop(seq_id)
        self.drafts.pop(seq_id, None)
        self.cold.put(seq_id, (export, toks), export.n_pages, export.num_tokens)
        self.demoted.append(seq_id)

    def op_restore(self) -> None:
        """Re-admit a demoted sequence; roll back via ``unpop`` when full."""
        if not self.demoted:
            return
        seq_id = str(self.rng.choice(sorted(self.demoted)))
        entry = self.cold.pop(seq_id)
        export, toks = entry.payload
        if self.cache.allocator.can_allocate(export.n_pages):
            self.cache.import_sequence(seq_id, export)
            self.tokens[seq_id] = toks
            self.demoted.remove(seq_id)
        else:
            self.cold.unpop(seq_id, entry)

    def op_register_prefix(self) -> None:
        """Register a live sequence's full pages in the prefix index (pins them)."""
        seq_id = self.pick_live()
        if seq_id is None:
            return
        n_full = self.cache.seq_len(seq_id) // PAGE_SIZE
        if n_full == 0:
            return
        pages = self.cache.sequence_pages(seq_id)[:n_full]
        stats = [self.cache.key_stats_objects(seq_id, layer) for layer in range(N_LAYERS)]
        self.index.register(
            np.asarray(self.tokens[seq_id][: n_full * PAGE_SIZE]),
            pages,
            stats_for_page=lambda i: [[stats[layer][i]] for layer in range(N_LAYERS)],
            streaming_for_page=lambda i: (None, None),
        )

    def op_attach_prefix(self) -> None:
        """Attach the longest hot registered prefix of a live prompt as a new sequence."""
        probe = self.pick_live()
        if probe is None or len(self.tokens) >= 10:
            return
        toks = self.tokens[probe]
        chain = self.index.match(np.asarray(toks))
        hot = []
        for node in chain:
            if node.page is None:
                break  # a cold node interrupts the attachable page chain
            hot.append(node)
        if not hot:
            return
        pages = [node.page for node in hot]
        stats_per_layer = [
            [node.stats_per_layer[layer][0] for node in hot] for layer in range(N_LAYERS)
        ]
        seq_id = self.new_id()
        self.cache.attach_prefix(seq_id, pages, len(hot) * PAGE_SIZE, stats_per_layer)
        self.tokens[seq_id] = list(toks[: len(hot) * PAGE_SIZE])

    def op_prefix_demote(self) -> None:
        """Demote LRU prefix nodes to the cold tier to free one more page."""
        if self.index.held_pages:
            self.index.evict_until(
                self.cache.allocator.num_free + 1, page_image=self.cache.page_image
            )

    def op_prefix_restore(self) -> None:
        """Bring one demoted prefix node back onto a fresh physical page."""
        cold_nodes = [n for n in self.index._nodes() if n.is_cold]
        if not cold_nodes or not self.cache.allocator.can_allocate(1):
            return
        node = cold_nodes[int(self.rng.integers(0, len(cold_nodes)))]
        page = self.cache.install_page_image(node.cold_k, node.cold_v)
        self.index.adopt_restored(node, page)

    def op_draft_append(self) -> None:
        """Fork a scratch off a live sequence and append draft tokens to it.

        This is the cache-level shape of a speculative verify chunk: the
        drafts land on a copy-on-write fork, never on the parent.
        """
        parent = self.pick_live()
        if parent is None or parent in self.drafts or len(self.tokens) >= 10:
            return
        scratch = self.new_id() + "-draft"
        self.cache.fork_sequence(parent, scratch)
        self.tokens[scratch] = list(self.tokens[parent])
        self.drafts[scratch] = (parent, len(self.tokens[parent]))
        if not self.append_tokens(scratch, self.random_tokens(int(self.rng.integers(1, 5)))):
            # No pages for any draft token: the chunk rolls back immediately.
            self.cache.remove_sequence(scratch)
            del self.tokens[scratch]
            del self.drafts[scratch]

    def pick_draft(self) -> str | None:
        if not self.drafts:
            return None
        return str(self.rng.choice(sorted(self.drafts)))

    def op_verify_accept(self) -> None:
        """Commit an accepted draft prefix to the parent, then drop the fork.

        Mirrors ``LServeEngine.commit_speculative``: the parent re-appends
        the accepted tokens itself (so the commit is charged to the parent's
        page tables), and the scratch is released whole.
        """
        scratch = self.pick_draft()
        if scratch is None:
            return
        parent, base_len = self.drafts[scratch]
        drafted = len(self.tokens[scratch]) - base_len
        stale = (
            parent not in self.tokens
            or len(self.tokens[parent]) != base_len
            or drafted < 1
        )
        if not stale:
            # Parent gone or advanced since the fork would make the chunk
            # stale — it could only be rejected (the engine re-proposes).
            n_commit = int(self.rng.integers(1, drafted + 1))
            accepted = self.tokens[scratch][base_len : base_len + n_commit]
            self.append_tokens(parent, accepted)  # OOM -> commit nothing
        self.cache.remove_sequence(scratch)
        del self.tokens[scratch]
        del self.drafts[scratch]

    def op_verify_reject(self) -> None:
        """Roll a draft fork back without committing anything."""
        scratch = self.pick_draft()
        if scratch is None:
            return
        self.cache.remove_sequence(scratch)
        del self.tokens[scratch]
        del self.drafts[scratch]

    def op_fused_verify(self) -> None:
        """Resolve a random subset of live drafts in one fused verification.

        The cache-level shape of ``decode_speculative_batch`` plus its
        per-member commits: several scratch forks resolve together, each
        committing a random accepted prefix back to its parent, and every
        scratch is released whatever its batchmates did.  The stale-chunk
        guard applies per member — a parent that vanished or advanced since
        the fork (including because an earlier member of the *same* fused
        batch committed to it) can only be rejected.
        """
        if not self.drafts:
            return
        pool = sorted(self.drafts)
        size = int(self.rng.integers(1, len(pool) + 1))
        subset = [str(s) for s in self.rng.choice(pool, size=size, replace=False)]
        for scratch in subset:
            parent, base_len = self.drafts[scratch]
            drafted = len(self.tokens.get(scratch, ())) - base_len
            stale = (
                parent not in self.tokens
                or len(self.tokens[parent]) != base_len
                or drafted < 1
            )
            if not stale and bool(self.rng.integers(0, 2)):
                n_commit = int(self.rng.integers(1, drafted + 1))
                accepted = self.tokens[scratch][base_len : base_len + n_commit]
                self.append_tokens(parent, accepted)  # OOM -> commit nothing
            self.cache.remove_sequence(scratch)
            del self.tokens[scratch]
            del self.drafts[scratch]

    def op_prefix_evict(self) -> None:
        """Hard-drop LRU prefix leaves (no cold tier) to free one more page."""
        if self.index.num_nodes:
            self.index.evict_until(self.cache.allocator.num_free + 1)

    OPS = (
        ("op_add", 4),
        ("op_append", 5),
        ("op_fork", 3),
        ("op_remove", 2),
        ("op_read", 3),
        ("op_migrate", 2),
        ("op_demote", 3),
        ("op_restore", 3),
        ("op_register_prefix", 3),
        ("op_attach_prefix", 3),
        ("op_prefix_demote", 2),
        ("op_prefix_restore", 2),
        ("op_prefix_evict", 1),
        ("op_draft_append", 4),
        ("op_verify_accept", 3),
        ("op_verify_reject", 2),
        ("op_fused_verify", 3),
    )

    def step(self) -> str:
        names = [name for name, _ in self.OPS]
        weights = np.asarray([w for _, w in self.OPS], dtype=float)
        name = str(self.rng.choice(names, p=weights / weights.sum()))
        getattr(self, name)()
        return name

    # -- invariants ------------------------------------------------------------
    def check_invariants(self) -> None:
        cache, index, alloc = self.cache, self.index, self.cache.allocator

        # Page conservation: every page is exactly free or allocated.
        assert alloc.num_free + alloc.num_allocated == alloc.capacity

        # Expected refcount per page = visible owners: one per sequence table
        # containing it plus one per hot prefix node holding it.
        expected: dict[int, int] = {}
        for seq_id in cache.sequences():
            for page in cache.sequence_pages(seq_id):
                expected[page] = expected.get(page, 0) + 1
        pinned: set[int] = set()
        for node in index._nodes():
            if node.page is not None:
                expected[node.page] = expected.get(node.page, 0) + 1
                pinned.add(node.page)
            if node.is_cold:
                assert node.cold_k is not None and node.cold_v is not None

        assert alloc.num_allocated == len(expected), "allocated pages nobody owns"
        assert alloc.total_refs == sum(expected.values())
        for page, refs in expected.items():
            assert refs >= 1
            assert alloc.refcount(page) == refs, f"refcount mismatch on page {page}"

        # Pins are exactly the index's hot pages.
        assert index.held_pages == len(pinned)
        assert alloc.num_pinned == len(pinned)
        for page in pinned:
            assert alloc.is_pinned(page)

        # Per-sequence consistency: layers agree, the table covers the tokens,
        # and the driver's ground-truth token count matches the cache's.
        for seq_id in cache.sequences():
            n_tokens = cache.seq_len(seq_id)
            for layer in range(N_LAYERS):
                assert cache.seq_len(seq_id, layer) == n_tokens
            assert len(cache.sequence_pages(seq_id)) * PAGE_SIZE >= n_tokens
            assert n_tokens == len(self.tokens[seq_id])

        # Cold tier matches the driver's view of what was demoted.
        assert self.cold.num_entries == len(self.demoted)
        for seq_id in self.demoted:
            assert seq_id in self.cold

        # Live sequences and the driver's ground truth are the same set.
        assert set(cache.sequences()) == set(self.tokens)

        # Every draft scratch is live and actually extends its recorded base;
        # a scratch that escaped its record (or vice versa) is a leak-to-be.
        for scratch, (parent, base_len) in self.drafts.items():
            assert scratch in self.tokens, f"draft record for dead scratch {scratch}"
            assert len(self.tokens[scratch]) >= base_len

    def teardown(self) -> None:
        """Drain both tiers completely; nothing may survive."""
        for seq_id in list(self.tokens):
            self.cache.remove_sequence(seq_id)
        self.tokens.clear()
        self.drafts.clear()
        self.index.clear()
        for seq_id in list(self.demoted):
            self.cold.discard(seq_id)
        self.demoted.clear()


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_fuzz_invariants(seed):
    driver = FuzzDriver(seed)
    for step in range(N_OPS):
        name = driver.step()
        try:
            driver.check_invariants()
        except AssertionError as exc:  # pragma: no cover - failure path
            raise AssertionError(
                f"invariant violated after op {step} ({name}) with seed {seed}: {exc}"
            ) from exc
    driver.teardown()
    assert_no_leaked_pages(driver.cache.allocator, cold_store=driver.cold)
    assert driver.cache.allocator.num_pinned == 0


def test_fuzz_exercises_every_op():
    """Sanity: across a few seeds the driver actually hits every operation."""
    hit: set[str] = set()
    for seed in range(6):
        driver = FuzzDriver(seed)
        for _ in range(N_OPS):
            hit.add(driver.step())
        driver.teardown()
    assert hit == {name for name, _ in FuzzDriver.OPS}
