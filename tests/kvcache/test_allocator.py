"""Tests for the physical page allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.allocator import OutOfPagesError, PageAllocator


class TestPageAllocator:
    def test_initial_state(self):
        alloc = PageAllocator(8)
        assert alloc.capacity == 8
        assert alloc.num_free == 8
        assert alloc.num_allocated == 0

    def test_allocate_unique_ids(self):
        alloc = PageAllocator(16)
        pages = [alloc.allocate() for _ in range(16)]
        assert sorted(pages) == list(range(16))

    def test_exhaustion_raises(self):
        alloc = PageAllocator(2)
        alloc.allocate_many(2)
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_allocate_many_atomic(self):
        alloc = PageAllocator(3)
        with pytest.raises(OutOfPagesError):
            alloc.allocate_many(4)
        # Nothing was consumed by the failed request.
        assert alloc.num_free == 3

    def test_allocate_many_negative(self):
        with pytest.raises(ValueError):
            PageAllocator(3).allocate_many(-1)

    def test_free_and_reuse(self):
        alloc = PageAllocator(2)
        a = alloc.allocate()
        b = alloc.allocate()
        alloc.free(a)
        c = alloc.allocate()
        assert c == a
        assert alloc.num_allocated == 2
        alloc.free_many([b, c])
        assert alloc.num_free == 2

    def test_double_free_rejected(self):
        alloc = PageAllocator(2)
        a = alloc.allocate()
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_free_unallocated_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(4).free(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PageAllocator(0)

    def test_can_allocate(self):
        alloc = PageAllocator(2)
        assert alloc.can_allocate(2)
        alloc.allocate()
        assert not alloc.can_allocate(2)
        assert alloc.can_allocate(1)

    @given(st.lists(st.sampled_from(["alloc", "free"]), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_conservation(self, ops):
        """free + allocated == capacity after any sequence of operations."""
        alloc = PageAllocator(10)
        held = []
        for op in ops:
            if op == "alloc":
                if alloc.can_allocate():
                    held.append(alloc.allocate())
            elif held:
                alloc.free(held.pop())
            assert alloc.num_free + alloc.num_allocated == alloc.capacity
            assert len(set(held)) == len(held)
            assert alloc.num_allocated == len(held)
