"""Tests for the physical page allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.allocator import OutOfPagesError, PageAllocator


class TestPageAllocator:
    def test_initial_state(self):
        alloc = PageAllocator(8)
        assert alloc.capacity == 8
        assert alloc.num_free == 8
        assert alloc.num_allocated == 0

    def test_allocate_unique_ids(self):
        alloc = PageAllocator(16)
        pages = [alloc.allocate() for _ in range(16)]
        assert sorted(pages) == list(range(16))

    def test_exhaustion_raises(self):
        alloc = PageAllocator(2)
        alloc.allocate_many(2)
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_allocate_many_atomic(self):
        alloc = PageAllocator(3)
        with pytest.raises(OutOfPagesError):
            alloc.allocate_many(4)
        # Nothing was consumed by the failed request.
        assert alloc.num_free == 3

    def test_allocate_many_negative(self):
        with pytest.raises(ValueError):
            PageAllocator(3).allocate_many(-1)

    def test_free_and_reuse(self):
        alloc = PageAllocator(2)
        a = alloc.allocate()
        b = alloc.allocate()
        alloc.free(a)
        c = alloc.allocate()
        assert c == a
        assert alloc.num_allocated == 2
        alloc.free_many([b, c])
        assert alloc.num_free == 2

    def test_double_free_rejected(self):
        alloc = PageAllocator(2)
        a = alloc.allocate()
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_free_unallocated_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(4).free(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PageAllocator(0)

    def test_can_allocate(self):
        alloc = PageAllocator(2)
        assert alloc.can_allocate(2)
        alloc.allocate()
        assert not alloc.can_allocate(2)
        assert alloc.can_allocate(1)

    def test_incref_keeps_page_alive(self):
        alloc = PageAllocator(2)
        a = alloc.allocate()
        assert alloc.refcount(a) == 1 and not alloc.is_shared(a)
        assert alloc.incref(a) == 2
        assert alloc.is_shared(a)
        assert alloc.decref(a) == 1
        assert alloc.num_free == 1  # still held by one owner
        assert alloc.decref(a) == 0
        assert alloc.num_free == 2
        assert alloc.refcount(a) == 0

    def test_double_decref_raises(self):
        alloc = PageAllocator(2)
        a = alloc.allocate()
        alloc.decref(a)
        with pytest.raises(ValueError):
            alloc.decref(a)

    def test_incref_free_page_rejected(self):
        alloc = PageAllocator(2)
        with pytest.raises(ValueError):
            alloc.incref(0)
        a = alloc.allocate()
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.incref(a)

    def test_free_is_one_decref(self):
        """``free`` drops exactly one reference — a shared page survives it."""
        alloc = PageAllocator(1)
        a = alloc.allocate()
        alloc.incref(a)
        alloc.free(a)
        assert alloc.refcount(a) == 1
        assert alloc.num_free == 0
        alloc.free(a)
        assert alloc.num_free == 1

    def test_total_refs(self):
        alloc = PageAllocator(4)
        a = alloc.allocate()
        b = alloc.allocate()
        alloc.incref(a)
        alloc.incref(a)
        assert alloc.total_refs == 4
        assert alloc.num_allocated == 2
        alloc.decref(a)
        alloc.decref(b)
        assert alloc.total_refs == 2

    @given(st.lists(st.sampled_from(["alloc", "incref", "decref"]), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_refcount_conservation(self, ops):
        """Refcounts stay consistent under random alloc/incref/decref churn."""
        alloc = PageAllocator(8)
        refs: list[int] = []  # one entry per outstanding reference
        for i, op in enumerate(ops):
            if op == "alloc":
                if alloc.can_allocate():
                    refs.append(alloc.allocate())
            elif not refs:
                continue
            elif op == "incref":
                page = refs[i % len(refs)]
                alloc.incref(page)
                refs.append(page)
            else:
                alloc.decref(refs.pop(i % len(refs)))
            assert alloc.total_refs == len(refs)
            assert alloc.num_allocated == len(set(refs))
            assert alloc.num_free + alloc.num_allocated == alloc.capacity
            for page in set(refs):
                assert alloc.refcount(page) == refs.count(page)
        for page in list(refs):
            alloc.decref(page)
        assert alloc.num_free == alloc.capacity

    @given(st.lists(st.sampled_from(["alloc", "free"]), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_conservation(self, ops):
        """free + allocated == capacity after any sequence of operations."""
        alloc = PageAllocator(10)
        held = []
        for op in ops:
            if op == "alloc":
                if alloc.can_allocate():
                    held.append(alloc.allocate())
            elif held:
                alloc.free(held.pop())
            assert alloc.num_free + alloc.num_allocated == alloc.capacity
            assert len(set(held)) == len(held)
            assert alloc.num_allocated == len(held)
