"""Tests for the per-sequence page table."""

import pytest

from repro.kvcache.page_table import PageTable


class TestPageTable:
    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageTable(page_size=0)

    def test_pages_needed(self):
        table = PageTable(page_size=16)
        assert table.pages_needed_for(0) == 0
        assert table.pages_needed_for(1) == 1
        assert table.pages_needed_for(16) == 1
        assert table.pages_needed_for(17) == 2
        table.append_pages([3])
        table.record_tokens(10)
        assert table.pages_needed_for(6) == 0
        assert table.pages_needed_for(7) == 1

    def test_pages_needed_negative(self):
        with pytest.raises(ValueError):
            PageTable(page_size=4).pages_needed_for(-1)

    def test_record_tokens_requires_capacity(self):
        table = PageTable(page_size=4)
        with pytest.raises(ValueError):
            table.record_tokens(1)
        table.append_pages([0])
        table.record_tokens(4)
        with pytest.raises(ValueError):
            table.record_tokens(1)

    def test_last_page_fill(self):
        table = PageTable(page_size=4)
        assert table.last_page_fill == 0
        table.append_pages([0, 1])
        table.record_tokens(5)
        assert table.last_page_fill == 1
        table.record_tokens(3)
        assert table.last_page_fill == 4

    def test_slot_mapping(self):
        table = PageTable(page_size=4)
        table.append_pages([7, 2])
        table.record_tokens(6)
        assert table.slot(0) == (7, 0)
        assert table.slot(3) == (7, 3)
        assert table.slot(4) == (2, 0)
        with pytest.raises(IndexError):
            table.slot(6)

    def test_tokens_in_page(self):
        table = PageTable(page_size=4)
        table.append_pages([0, 1])
        table.record_tokens(6)
        assert table.tokens_in_page(0) == 4
        assert table.tokens_in_page(1) == 2
        with pytest.raises(IndexError):
            table.tokens_in_page(2)

    def test_truncate_pages(self):
        table = PageTable(page_size=4)
        table.append_pages([10, 11, 12, 13])
        table.record_tokens(16)
        released = table.truncate_pages([0, 3])
        assert released == [11, 12]
        assert table.pages == [10, 13]
        assert table.num_tokens == 8

    def test_truncate_pages_out_of_range(self):
        table = PageTable(page_size=4)
        table.append_pages([1])
        with pytest.raises(IndexError):
            table.truncate_pages([2])
