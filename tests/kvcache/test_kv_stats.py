"""Tests for per-logical-page key statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.kv_stats import PageKeyStats, compute_page_key_stats, merge_key_stats


class TestComputePageKeyStats:
    def test_single_full_page(self, rng):
        keys = rng.normal(size=(8, 2, 4))
        stats = compute_page_key_stats(keys, logical_page_size=8)
        assert len(stats) == 1
        np.testing.assert_array_equal(stats[0].kmin, keys.min(axis=0))
        np.testing.assert_array_equal(stats[0].kmax, keys.max(axis=0))
        assert stats[0].n_tokens == 8

    def test_partial_last_page(self, rng):
        keys = rng.normal(size=(10, 2, 4))
        stats = compute_page_key_stats(keys, logical_page_size=4)
        assert [s.n_tokens for s in stats] == [4, 4, 2]

    def test_bounds_contain_all_keys(self, rng):
        keys = rng.normal(size=(13, 3, 5))
        stats = compute_page_key_stats(keys, logical_page_size=4)
        for i, s in enumerate(stats):
            chunk = keys[i * 4 : (i + 1) * 4]
            assert np.all(chunk >= s.kmin[None] - 1e-12)
            assert np.all(chunk <= s.kmax[None] + 1e-12)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            compute_page_key_stats(rng.normal(size=(4, 4)), 2)
        with pytest.raises(ValueError):
            compute_page_key_stats(rng.normal(size=(4, 2, 2)), 0)


class TestUpdateAndMerge:
    def test_incremental_update_matches_batch(self, rng):
        keys = rng.normal(size=(6, 2, 3))
        batch = compute_page_key_stats(keys, logical_page_size=6)[0]
        inc = compute_page_key_stats(keys[:2], logical_page_size=6)[0]
        inc.update(keys[2:4])
        inc.update(keys[4:])
        np.testing.assert_array_equal(inc.kmin, batch.kmin)
        np.testing.assert_array_equal(inc.kmax, batch.kmax)
        assert inc.n_tokens == 6

    def test_update_empty_noop(self, rng):
        keys = rng.normal(size=(3, 1, 2))
        s = compute_page_key_stats(keys, 4)[0]
        before = (s.kmin.copy(), s.kmax.copy(), s.n_tokens)
        s.update(np.zeros((0, 1, 2)))
        np.testing.assert_array_equal(s.kmin, before[0])
        assert s.n_tokens == before[2]

    def test_update_shape_validation(self, rng):
        s = compute_page_key_stats(rng.normal(size=(2, 1, 2)), 4)[0]
        with pytest.raises(ValueError):
            s.update(np.zeros((2, 2)))

    def test_merge_equals_flat_stats(self, rng):
        keys = rng.normal(size=(16, 2, 4))
        fine = compute_page_key_stats(keys, logical_page_size=4)
        merged = merge_key_stats(fine)
        flat = compute_page_key_stats(keys, logical_page_size=16)[0]
        np.testing.assert_array_equal(merged.kmin, flat.kmin)
        np.testing.assert_array_equal(merged.kmax, flat.kmax)
        assert merged.n_tokens == 16

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_key_stats([])

    @given(n=st.integers(1, 40), lps=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_property_page_count(self, n, lps):
        rng = np.random.default_rng(n)
        keys = rng.normal(size=(n, 1, 2))
        stats = compute_page_key_stats(keys, lps)
        assert len(stats) == -(-n // lps)
        assert sum(s.n_tokens for s in stats) == n
