"""Tests for token- and block-level attention masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.masks import (
    block_causal_mask,
    block_sparsity,
    block_streaming_mask,
    causal_mask,
    mask_from_block_mask,
    num_blocks,
    streaming_mask,
)


class TestNumBlocks:
    @pytest.mark.parametrize(
        "n, block, expected",
        [(0, 16, 0), (1, 16, 1), (16, 16, 1), (17, 16, 2), (128, 64, 2), (129, 64, 3)],
    )
    def test_values(self, n, block, expected):
        assert num_blocks(n, block) == expected

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            num_blocks(10, 0)

    def test_negative_tokens(self):
        with pytest.raises(ValueError):
            num_blocks(-1, 16)


class TestCausalMask:
    def test_square_case(self):
        mask = causal_mask(3, 3)
        expected = np.tril(np.ones((3, 3), dtype=bool))
        np.testing.assert_array_equal(mask, expected)

    def test_decode_case_single_query(self):
        mask = causal_mask(1, 5)
        np.testing.assert_array_equal(mask, np.ones((1, 5), dtype=bool))

    def test_prefix_case(self):
        # 2 new queries appended to a 3-token prefix.
        mask = causal_mask(2, 5)
        expected = np.array([[1, 1, 1, 1, 0], [1, 1, 1, 1, 1]], dtype=bool)
        np.testing.assert_array_equal(mask, expected)

    def test_rejects_nkv_smaller_than_nq(self):
        with pytest.raises(ValueError):
            causal_mask(5, 3)


class TestStreamingMask:
    def test_sink_and_local_visible(self):
        mask = streaming_mask(8, 8, sink=2, local=3)
        # Last query: sinks 0-1 and locals 5-7 visible, middle hidden.
        np.testing.assert_array_equal(
            mask[-1], np.array([1, 1, 0, 0, 0, 1, 1, 1], dtype=bool)
        )

    def test_subset_of_causal(self):
        full = causal_mask(10, 10)
        stream = streaming_mask(10, 10, sink=1, local=2)
        assert np.all(stream <= full)

    def test_zero_sink_zero_local_only_self_excluded(self):
        mask = streaming_mask(4, 4, sink=0, local=1)
        np.testing.assert_array_equal(mask, np.eye(4, dtype=bool))

    def test_large_windows_recover_causal(self):
        mask = streaming_mask(6, 6, sink=6, local=6)
        np.testing.assert_array_equal(mask, causal_mask(6, 6))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            streaming_mask(4, 4, sink=-1, local=2)


class TestBlockMasks:
    def test_block_causal_shape(self):
        mask = block_causal_mask(64, 64, 16, 16)
        assert mask.shape == (4, 4)
        np.testing.assert_array_equal(mask, np.tril(np.ones((4, 4), dtype=bool)))

    def test_block_causal_decode(self):
        mask = block_causal_mask(1, 128, 1, 16)
        assert mask.shape == (1, 8)
        assert mask.all()

    def test_block_streaming_keeps_sink_and_diagonal(self):
        mask = block_streaming_mask(128, 128, 16, 16, sink_blocks=1, local_blocks=2)
        # Last query block sees block 0 (sink) and blocks 6,7 (local).
        np.testing.assert_array_equal(
            mask[-1], np.array([1, 0, 0, 0, 0, 0, 1, 1], dtype=bool)
        )

    def test_block_streaming_subset_of_block_causal(self):
        causal = block_causal_mask(96, 96, 16, 16)
        stream = block_streaming_mask(96, 96, 16, 16, 1, 2)
        assert np.all(stream <= causal)

    def test_mask_expansion_matches_token_streaming(self):
        n = 64
        blk = 16
        block = block_streaming_mask(n, n, blk, blk, sink_blocks=1, local_blocks=2)
        expanded = mask_from_block_mask(block, n, n, blk, blk, causal=True)
        # The expanded mask must cover the token-level streaming mask with the
        # corresponding sink/local token counts (block granularity is coarser,
        # so it may include extra tokens but never fewer).
        token = streaming_mask(n, n, sink=blk, local=blk)
        assert np.all(expanded >= token)
        assert np.all(expanded <= causal_mask(n, n))

    def test_mask_expansion_shape_validation(self):
        block = np.ones((2, 2), dtype=bool)
        with pytest.raises(ValueError):
            mask_from_block_mask(block, 64, 64, 16, 16)

    def test_block_sparsity_values(self):
        mask = np.array([[True, False], [True, True]])
        assert block_sparsity(mask) == pytest.approx(0.25)
        ref = np.array([[True, False], [True, True]])
        assert block_sparsity(mask, ref) == pytest.approx(0.0)

    def test_block_sparsity_empty(self):
        assert block_sparsity(np.zeros((0, 0), dtype=bool)) == 0.0

    @given(
        n=st.integers(1, 200),
        blk=st.sampled_from([1, 4, 16, 32]),
        sink=st.integers(0, 4),
        local=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_streaming_block_count_constant(self, n, blk, sink, local):
        """Streaming attention touches at most sink+local blocks per query row."""
        mask = block_streaming_mask(n, n, blk, blk, sink, local)
        per_row = mask.sum(axis=1)
        assert np.all(per_row <= sink + local)
