"""Tests for the dense GQA attention reference."""

import numpy as np
import pytest

from repro.attention.dense import attention_weights, dense_attention, repeat_kv
from repro.attention.masks import causal_mask, streaming_mask
from tests.conftest import random_qkv


class TestRepeatKV:
    def test_mha_identity(self, rng):
        kv = rng.normal(size=(5, 4, 8))
        np.testing.assert_array_equal(repeat_kv(kv, 4), kv)

    def test_gqa_expansion(self, rng):
        kv = rng.normal(size=(3, 2, 8))
        out = repeat_kv(kv, 6)
        assert out.shape == (3, 6, 8)
        # Heads 0-2 replicate KV head 0; heads 3-5 replicate KV head 1.
        for h in range(3):
            np.testing.assert_array_equal(out[:, h], kv[:, 0])
        for h in range(3, 6):
            np.testing.assert_array_equal(out[:, h], kv[:, 1])

    def test_invalid_group(self, rng):
        kv = rng.normal(size=(3, 3, 8))
        with pytest.raises(ValueError):
            repeat_kv(kv, 4)


class TestAttentionWeights:
    def test_rows_sum_to_one(self, rng):
        q, k, _ = random_qkv(rng, 4, 8)
        probs = attention_weights(q, k, causal=False)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_causal_zeroes_future(self, rng):
        q, k, _ = random_qkv(rng, 6, 6)
        probs = attention_weights(q, k, causal=True)
        future = ~causal_mask(6, 6)
        assert np.all(probs[:, future] == 0.0)

    def test_uniform_when_keys_identical(self, rng):
        q = rng.normal(size=(1, 2, 8))
        k = np.tile(rng.normal(size=(1, 1, 8)), (4, 2, 1))
        probs = attention_weights(q, k, causal=False)
        np.testing.assert_allclose(probs, 0.25)

    def test_custom_scale(self, rng):
        q, k, _ = random_qkv(rng, 2, 4)
        p1 = attention_weights(q, k, causal=False, scale=1.0)
        p2 = attention_weights(q, k, causal=False, scale=0.0)
        np.testing.assert_allclose(p2, 1.0 / 4)
        assert not np.allclose(p1, p2)

    def test_bad_mask_shape(self, rng):
        q, k, _ = random_qkv(rng, 2, 4)
        with pytest.raises(ValueError):
            attention_weights(q, k, mask=np.ones((3, 3), dtype=bool))


class TestDenseAttention:
    def test_output_shape(self, rng):
        q, k, v = random_qkv(rng, 4, 9)
        out = dense_attention(q, k, v)
        assert out.shape == (4, 4, 16)

    def test_single_key_returns_value(self, rng):
        q = rng.normal(size=(1, 2, 8))
        k = rng.normal(size=(1, 2, 8))
        v = rng.normal(size=(1, 2, 8))
        out = dense_attention(q, k, v, causal=False)
        np.testing.assert_allclose(out[0], v[0], rtol=1e-10)

    def test_matches_explicit_loop(self, rng):
        """Cross-check against a plain per-head loop implementation."""
        q, k, v = random_qkv(rng, 5, 5, n_heads=4, n_kv_heads=4, head_dim=8)
        out = dense_attention(q, k, v, causal=True)
        scale = 1.0 / np.sqrt(8)
        for h in range(4):
            scores = q[:, h, :] @ k[:, h, :].T * scale
            scores = np.where(causal_mask(5, 5), scores, -np.inf)
            probs = np.exp(scores - scores.max(axis=1, keepdims=True))
            probs /= probs.sum(axis=1, keepdims=True)
            np.testing.assert_allclose(out[:, h, :], probs @ v[:, h, :], rtol=1e-8)

    def test_gqa_equivalent_to_expanded_mha(self, rng):
        q, k, v = random_qkv(rng, 4, 6, n_heads=4, n_kv_heads=2)
        out_gqa = dense_attention(q, k, v)
        out_mha = dense_attention(q, repeat_kv(k, 4), repeat_kv(v, 4))
        np.testing.assert_allclose(out_gqa, out_mha, rtol=1e-12)

    def test_streaming_mask_ignores_middle_tokens(self, rng):
        n = 12
        q, k, v = random_qkv(rng, n, n)
        mask = streaming_mask(n, n, sink=2, local=2)
        out = dense_attention(q, k, v, mask=mask)
        # Changing a middle value token must not change the last query's output.
        v2 = v.copy()
        v2[5] += 10.0
        out2 = dense_attention(q, k, v2, mask=mask)
        np.testing.assert_allclose(out[-1], out2[-1], rtol=1e-12)

    def test_mismatched_kv_shapes(self, rng):
        q, k, v = random_qkv(rng, 2, 4)
        with pytest.raises(ValueError):
            dense_attention(q, k, v[:-1])

    def test_convex_combination_of_values(self, rng):
        """Attention output lies within the per-dimension value range."""
        q, k, v = random_qkv(rng, 3, 7, n_heads=2, n_kv_heads=2, head_dim=4)
        out = dense_attention(q, k, v, causal=False)
        vmin, vmax = v.min(axis=0), v.max(axis=0)
        assert np.all(out >= vmin[None] - 1e-9)
        assert np.all(out <= vmax[None] + 1e-9)
