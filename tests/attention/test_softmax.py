"""Tests for the numerically stable softmax helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attention.softmax import NEG_INF, log_softmax, softmax


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_matches_naive_definition(self):
        x = np.array([0.5, -1.0, 2.0])
        expected = np.exp(x) / np.exp(x).sum()
        np.testing.assert_allclose(softmax(x), expected, rtol=1e-12)

    def test_invariant_to_constant_shift(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-12)

    def test_large_values_do_not_overflow(self):
        x = np.array([1e5, 1e5 + 1.0])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_fully_masked_row_returns_zeros(self):
        x = np.full((2, 4), NEG_INF)
        out = softmax(x)
        np.testing.assert_array_equal(out, np.zeros_like(x))

    def test_partially_masked_row(self):
        x = np.array([1.0, NEG_INF, 2.0])
        out = softmax(x)
        assert out[1] == 0.0
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_axis_argument(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        out0 = softmax(x, axis=0)
        np.testing.assert_allclose(out0.sum(axis=0), 1.0)

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
            elements=st.floats(-50, 50),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_rows_sum_to_one_and_nonnegative(self, x):
        out = softmax(x)
        assert np.all(out >= 0.0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)

    @given(
        hnp.arrays(np.float64, (5,), elements=st.floats(-30, 30)),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_monotonic(self, x):
        # Softmax is order-preserving: sorting inputs sorts outputs.
        out = softmax(x)
        order = np.argsort(x, kind="stable")
        assert np.all(np.diff(out[order]) >= -1e-12)


class TestLogSoftmax:
    def test_consistent_with_softmax(self):
        x = np.array([[0.1, 1.5, -2.0, 3.0]])
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), rtol=1e-10)

    def test_logsumexp_is_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        out = log_softmax(x)
        np.testing.assert_allclose(np.log(np.exp(out).sum()), 0.0, atol=1e-12)
