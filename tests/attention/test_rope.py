"""Tests for rotary position embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.rope import RotaryEmbedding, apply_rope


@pytest.fixture()
def rope():
    return RotaryEmbedding(head_dim=16)


class TestRotaryEmbedding:
    def test_rejects_odd_head_dim(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(head_dim=15)

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(head_dim=16, base=0.0)

    def test_position_zero_is_identity(self, rope, rng=np.random.default_rng(0)):
        x = rng.normal(size=(1, 2, 16))
        out = apply_rope(x, np.array([0]), rope)
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_preserves_norm(self, rope):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 3, 16))
        out = apply_rope(x, np.arange(5), rope)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-10
        )

    def test_relative_position_property(self, rope):
        """q(m) . k(n) depends only on m - n (the defining property of RoPE)."""
        rng = np.random.default_rng(9)
        q = rng.normal(size=(1, 1, 16))
        k = rng.normal(size=(1, 1, 16))
        def dot(m, n):
            qm = apply_rope(q, np.array([m]), rope)[0, 0]
            kn = apply_rope(k, np.array([n]), rope)[0, 0]
            return float(qm @ kn)
        np.testing.assert_allclose(dot(10, 4), dot(106, 100), rtol=1e-8)
        np.testing.assert_allclose(dot(3, 3), dot(50, 50), rtol=1e-8)

    def test_scaling_factor_stretches_positions(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 1, 16))
        base_rope = RotaryEmbedding(head_dim=16, scaling_factor=1.0)
        scaled = RotaryEmbedding(head_dim=16, scaling_factor=4.0)
        out_scaled = apply_rope(x, np.array([8]), scaled)
        out_base = apply_rope(x, np.array([2]), base_rope)
        np.testing.assert_allclose(out_scaled, out_base, rtol=1e-10)

    def test_shape_validation(self, rope):
        with pytest.raises(ValueError):
            apply_rope(np.zeros((3, 16)), np.arange(3), rope)
        with pytest.raises(ValueError):
            apply_rope(np.zeros((3, 2, 16)), np.arange(4), rope)
        with pytest.raises(ValueError):
            apply_rope(np.zeros((3, 2, 8)), np.arange(3), rope)

    @given(pos=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_norm_preserved_any_position(self, pos):
        rope = RotaryEmbedding(head_dim=8)
        rng = np.random.default_rng(pos)
        x = rng.normal(size=(1, 1, 8))
        out = apply_rope(x, np.array([pos]), rope)
        np.testing.assert_allclose(
            np.linalg.norm(out), np.linalg.norm(x), rtol=1e-9
        )
