"""Tests for the block-wise online-softmax attention kernel model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.dense import dense_attention
from repro.attention.flash_reference import blockwise_attention
from repro.attention.masks import (
    block_causal_mask,
    block_streaming_mask,
    mask_from_block_mask,
)
from tests.conftest import random_qkv


class TestBlockwiseDenseEquivalence:
    @pytest.mark.parametrize("n_q,n_kv,qb,kb", [(16, 16, 4, 4), (7, 13, 4, 4), (1, 32, 1, 8), (20, 20, 8, 16)])
    def test_matches_dense_causal(self, rng, n_q, n_kv, qb, kb):
        q, k, v = random_qkv(rng, n_q, n_kv)
        res = blockwise_attention(q, k, v, qb, kb)
        expected = dense_attention(q, k, v, causal=True)
        np.testing.assert_allclose(res.output, expected, rtol=1e-8, atol=1e-10)

    def test_matches_dense_noncausal(self, rng):
        q, k, v = random_qkv(rng, 8, 8)
        res = blockwise_attention(q, k, v, 4, 4, causal=False)
        expected = dense_attention(q, k, v, causal=False)
        np.testing.assert_allclose(res.output, expected, rtol=1e-8)

    def test_full_mask_zero_sparsity(self, rng):
        q, k, v = random_qkv(rng, 16, 16)
        res = blockwise_attention(q, k, v, 4, 4)
        assert res.visited_blocks == res.total_blocks
        assert res.block_sparsity == 0.0

    @given(
        n_q=st.integers(1, 24),
        extra_kv=st.integers(0, 24),
        qb=st.sampled_from([1, 4, 8]),
        kb=st.sampled_from([4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_dense_equivalence(self, n_q, extra_kv, qb, kb):
        rng = np.random.default_rng(n_q * 100 + extra_kv)
        n_kv = n_q + extra_kv
        q, k, v = random_qkv(rng, n_q, n_kv)
        res = blockwise_attention(q, k, v, qb, kb)
        expected = dense_attention(q, k, v, causal=True)
        np.testing.assert_allclose(res.output, expected, rtol=1e-7, atol=1e-9)


class TestBlockSkipping:
    def test_block_mask_matches_expanded_token_mask(self, rng):
        n = 32
        blk = 8
        q, k, v = random_qkv(rng, n, n)
        bmask = block_streaming_mask(n, n, blk, blk, sink_blocks=1, local_blocks=2)
        res = blockwise_attention(q, k, v, blk, blk, block_mask=bmask)
        token_mask = mask_from_block_mask(bmask, n, n, blk, blk, causal=True)
        expected = dense_attention(q, k, v, mask=token_mask)
        np.testing.assert_allclose(res.output, expected, rtol=1e-8, atol=1e-10)

    def test_skipped_blocks_reduce_visits(self, rng):
        n = 64
        blk = 16
        q, k, v = random_qkv(rng, n, n)
        bmask = block_streaming_mask(n, n, blk, blk, sink_blocks=1, local_blocks=1)
        res = blockwise_attention(q, k, v, blk, blk, block_mask=bmask)
        dense = blockwise_attention(q, k, v, blk, blk)
        assert res.visited_blocks < dense.visited_blocks
        assert 0.0 < res.block_sparsity < 1.0

    def test_per_head_block_masks(self, rng):
        n = 32
        blk = 8
        q, k, v = random_qkv(rng, n, n, n_heads=2, n_kv_heads=2)
        full = block_causal_mask(n, n, blk, blk)
        stream = block_streaming_mask(n, n, blk, blk, 1, 1)
        per_head = np.stack([full, stream])
        res = blockwise_attention(q, k, v, blk, blk, block_mask=per_head)
        # Head 0 behaves densely, head 1 follows the streaming pattern.
        dense_out = dense_attention(q, k, v, causal=True)
        np.testing.assert_allclose(res.output[:, 0], dense_out[:, 0], rtol=1e-8)
        token_mask = mask_from_block_mask(stream, n, n, blk, blk)
        stream_out = dense_attention(q, k, v, mask=token_mask)
        np.testing.assert_allclose(res.output[:, 1], stream_out[:, 1], rtol=1e-8)

    def test_all_blocks_skipped_gives_zero_output(self, rng):
        q, k, v = random_qkv(rng, 8, 8)
        bmask = np.zeros((2, 2), dtype=bool)
        res = blockwise_attention(q, k, v, 4, 4, block_mask=bmask)
        np.testing.assert_array_equal(res.output, np.zeros_like(res.output))
        assert res.visited_blocks == 0

    def test_invalid_block_mask_shape(self, rng):
        q, k, v = random_qkv(rng, 8, 8)
        with pytest.raises(ValueError):
            blockwise_attention(q, k, v, 4, 4, block_mask=np.ones((3, 3), dtype=bool))

    def test_theoretical_speedup_matches_block_count(self, rng):
        """Paper §3.1: speedup of block sparse attention is 1 / (1 - r)."""
        n = 128
        blk = 16
        q, k, v = random_qkv(rng, n, n)
        bmask = block_streaming_mask(n, n, blk, blk, 1, 2)
        res = blockwise_attention(q, k, v, blk, blk, block_mask=bmask)
        r = res.block_sparsity
        speedup = res.total_blocks / res.visited_blocks
        np.testing.assert_allclose(speedup, 1.0 / (1.0 - r), rtol=1e-12)
