"""Tests for the NIAH / RULER / LongBench / reasoning harnesses."""

import numpy as np
import pytest

from repro.eval.longbench import DENSE_ANCHORS, LONGBENCH_TASKS, run_longbench
from repro.eval.niah import NIAHConfig, run_niah
from repro.eval.reasoning import ReasoningConfig, run_reasoning_eval
from repro.eval.retrieval_policies import (
    DenseSelection,
    HierarchicalPageSelection,
    StreamingSelection,
)
from repro.eval.ruler import RulerConfig, run_ruler, reuse_interval_sweep
from repro.eval.scoring import coverage_score, grid_average, recall_to_accuracy


SMALL_NIAH = NIAHConfig(context_lengths=(4096, 8192), depth_fractions=(0.0, 0.5, 1.0))
SMALL_RULER = RulerConfig(context_lengths=(8192,), samples_per_task=1)


class TestScoring:
    def test_recall_to_accuracy(self):
        assert recall_to_accuracy(1.0) == 1.0
        assert recall_to_accuracy(0.95) == 1.0
        assert recall_to_accuracy(0.45) == pytest.approx(0.5)
        assert recall_to_accuracy(0.0) == 0.0
        assert recall_to_accuracy(0.5, threshold=0.5) == 1.0
        with pytest.raises(ValueError):
            recall_to_accuracy(1.5)

    def test_coverage_score(self):
        assert coverage_score(np.array([1, 2, 3]), np.array([2, 3, 4])) == pytest.approx(2 / 3)
        assert coverage_score(np.array([]), np.array([])) == 1.0

    def test_grid_average(self):
        assert grid_average(np.array([[1.0, 0.0], [1.0, 0.0]])) == 0.5
        with pytest.raises(ValueError):
            grid_average(np.zeros((0, 0)))


class TestNIAH:
    def test_dense_scores_one_everywhere(self):
        result = run_niah(DenseSelection(), SMALL_NIAH)
        np.testing.assert_allclose(result.grid, 1.0)
        assert result.average_accuracy == 1.0

    def test_lserve_matches_dense_at_moderate_lengths(self):
        """Fig. 9: LServe preserves NIAH accuracy."""
        result = run_niah(HierarchicalPageSelection(token_budget=2048), SMALL_NIAH)
        assert result.average_accuracy > 0.95

    def test_streaming_fails_mid_depth(self):
        result = run_niah(StreamingSelection(sink_tokens=64, local_tokens=128), SMALL_NIAH)
        depths = SMALL_NIAH.depth_fractions
        mid = depths.index(0.5)
        last = depths.index(1.0)
        assert np.all(result.grid[:, mid] < 0.5)
        assert np.all(result.grid[:, last] == 1.0)

    def test_result_helpers(self):
        result = run_niah(DenseSelection(), SMALL_NIAH)
        assert result.accuracy_at_length(4096) == 1.0
        rows = result.to_rows()
        assert len(rows) == len(SMALL_NIAH.context_lengths) * len(SMALL_NIAH.depth_fractions)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NIAHConfig(context_lengths=())
        with pytest.raises(ValueError):
            NIAHConfig(samples_per_cell=0)


class TestRuler:
    def test_dense_scores_high(self):
        result = run_ruler(DenseSelection(), SMALL_RULER)
        assert result.composite(8192) > 0.95
        assert result.average() > 0.95

    def test_lserve_close_to_dense(self):
        dense = run_ruler(DenseSelection(), SMALL_RULER)
        lserve = run_ruler(HierarchicalPageSelection(token_budget=2048), SMALL_RULER)
        assert lserve.composite(8192) > 0.8 * dense.composite(8192)

    def test_bigger_budget_not_worse(self):
        """Table 3: LServe-8192 >= LServe-4096 on average."""
        cfg = RulerConfig(context_lengths=(16384,), samples_per_task=1)
        small = run_ruler(HierarchicalPageSelection(token_budget=1024), cfg)
        large = run_ruler(HierarchicalPageSelection(token_budget=4096), cfg)
        assert large.average() >= small.average() - 1e-9

    def test_streaming_much_worse(self):
        dense = run_ruler(DenseSelection(), SMALL_RULER)
        stream = run_ruler(StreamingSelection(sink_tokens=64, local_tokens=128), SMALL_RULER)
        assert stream.average() < dense.average() - 0.3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RulerConfig(context_lengths=())
        with pytest.raises(ValueError):
            RulerConfig(n_keys=0)
        with pytest.raises(ValueError):
            RulerConfig(aggregation_fraction=0.0)


class TestReuseIntervalSweep:
    def test_degradation_is_monotone_and_gentle(self):
        """Table 6: little loss up to interval 4, visible loss by 16."""
        sweep = reuse_interval_sweep(
            HierarchicalPageSelection(token_budget=2048),
            reuse_intervals=(1, 4, 16),
            context_length=8192,
            decode_steps=24,
            focus_period=12,
            n_needles=4,
            samples=2,
        )
        assert sweep[1] >= sweep[4] >= sweep[16]
        assert sweep[1] - sweep[4] < 0.1
        assert sweep[16] < sweep[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            reuse_interval_sweep(DenseSelection(), reuse_intervals=(0,))
        with pytest.raises(ValueError):
            reuse_interval_sweep(DenseSelection(), decode_steps=0)


class TestLongBench:
    def test_dense_reproduces_anchors(self):
        scores = run_longbench(DenseSelection(), model_name="Llama-3-8B", samples_per_task=1)
        for task in LONGBENCH_TASKS:
            assert scores[task.name] == pytest.approx(DENSE_ANCHORS["Llama-3-8B"][task.name])

    def test_lserve_close_to_dense(self):
        """Table 2: LServe average within ~1 point of dense."""
        dense = run_longbench(DenseSelection(), samples_per_task=1)
        lserve = run_longbench(HierarchicalPageSelection(token_budget=4096), samples_per_task=1)
        assert abs(dense["Average"] - lserve["Average"]) < 2.0

    def test_streaming_noticeably_worse(self):
        dense = run_longbench(DenseSelection(), samples_per_task=1)
        stream = run_longbench(
            StreamingSelection(sink_tokens=64, local_tokens=256), samples_per_task=1
        )
        assert stream["Average"] < dense["Average"]

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            run_longbench(DenseSelection(), model_name="GPT-5")


class TestReasoning:
    def test_dense_matches_anchor(self):
        cfg = ReasoningConfig(benchmark="MATH500", trace_length=8192, n_problems=4)
        assert run_reasoning_eval(DenseSelection(), cfg) == pytest.approx(84.2)

    def test_lserve_close_to_dense(self):
        """Table 4: LServe maintains reasoning accuracy."""
        cfg = ReasoningConfig(benchmark="AIME@2024", trace_length=8192, n_problems=4)
        dense = run_reasoning_eval(DenseSelection(), cfg)
        lserve = run_reasoning_eval(HierarchicalPageSelection(token_budget=4096), cfg)
        assert abs(dense - lserve) < 3.0

    def test_config_validation(self):
        with pytest.raises(KeyError):
            ReasoningConfig(benchmark="GSM8K")
        with pytest.raises(ValueError):
            ReasoningConfig(trace_length=0)
