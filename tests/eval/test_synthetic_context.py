"""Tests for the synthetic long-context generator."""

import numpy as np
import pytest

from repro.eval.synthetic_context import generate_needle_context


class TestGenerator:
    def test_shapes_and_determinism(self):
        ctx = generate_needle_context(1024, 0.5, seed=3)
        assert ctx.keys.shape == (1024, 1, 64)
        assert ctx.query.shape == (1, 64)
        ctx2 = generate_needle_context(1024, 0.5, seed=3)
        np.testing.assert_array_equal(ctx.keys, ctx2.keys)
        ctx3 = generate_needle_context(1024, 0.5, seed=4)
        assert not np.allclose(ctx.keys, ctx3.keys)

    def test_needle_position_respects_depth(self):
        shallow = generate_needle_context(2048, 0.0, needle_length=8)
        deep = generate_needle_context(2048, 1.0, needle_length=8)
        middle = generate_needle_context(2048, 0.5, needle_length=8)
        assert shallow.needle_positions[0] == 0
        assert deep.needle_positions[-1] == 2047
        assert 900 < middle.needle_positions[0] < 1100

    def test_needle_tokens_align_with_query(self):
        ctx = generate_needle_context(2048, 0.5, seed=1)
        dots = np.einsum("td,d->t", ctx.keys[:, 0, :], ctx.query[0])
        needle_mean = dots[ctx.needle_positions].mean()
        haystack = np.delete(dots, ctx.needle_positions)
        assert needle_mean > haystack.mean() + 5 * haystack.std()

    def test_haystack_locality(self):
        """Adjacent haystack keys are positively correlated (AR(1) structure)."""
        ctx = generate_needle_context(4096, 0.0, needle_length=1, spike_rate=0.0, seed=2)
        keys = ctx.keys[10:, 0, :]
        sims = np.sum(keys[1:] * keys[:-1], axis=1) / (
            np.linalg.norm(keys[1:], axis=1) * np.linalg.norm(keys[:-1], axis=1)
        )
        assert sims.mean() > 0.5

    def test_extra_needles(self):
        ctx = generate_needle_context(2048, 0.5, n_extra_needles=3, seed=5)
        assert len(ctx.extra_needles) == 3
        assert len(ctx.needle_directions) == 4
        assert len(ctx.all_needle_positions()) == 4

    def test_distinct_directions(self):
        ctx = generate_needle_context(
            2048, 0.5, n_extra_needles=2, distinct_extra_directions=True, seed=6
        )
        d0, d1 = ctx.needle_directions[0], ctx.needle_directions[1]
        assert abs(float(d0 @ d1)) < 0.5
        q1 = ctx.query_for_needle(1)
        assert q1.shape == ctx.query.shape

    def test_needle_recall(self):
        ctx = generate_needle_context(256, 0.5, needle_length=8, seed=7)
        assert ctx.needle_recall(np.arange(256)) == 1.0
        assert ctx.needle_recall(np.array([])) == 0.0
        half = ctx.needle_positions[:4]
        assert ctx.needle_recall(half) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_needle_context(0, 0.5)
        with pytest.raises(ValueError):
            generate_needle_context(100, 1.5)
        with pytest.raises(ValueError):
            generate_needle_context(100, 0.5, needle_length=200)
