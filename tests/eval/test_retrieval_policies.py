"""Tests for token-selection policies and the accuracy phenomena they produce."""

import numpy as np
import pytest

from repro.eval.retrieval_policies import (
    DenseSelection,
    FlatPageSelection,
    HierarchicalPageSelection,
    StreamingSelection,
    policy_for_system,
)
from repro.eval.synthetic_context import generate_needle_context


@pytest.fixture(scope="module")
def mid_needle_context():
    return generate_needle_context(16384, 0.5, seed=11)


class TestBasicPolicies:
    def test_dense_selects_everything(self, mid_needle_context):
        sel = DenseSelection().select_tokens(mid_needle_context)
        assert sel.size == mid_needle_context.context_length
        assert mid_needle_context.needle_recall(sel) == 1.0

    def test_streaming_misses_middle_needle(self, mid_needle_context):
        sel = StreamingSelection(sink_tokens=128, local_tokens=256).select_tokens(
            mid_needle_context
        )
        assert sel.size <= 384
        assert mid_needle_context.needle_recall(sel) == 0.0

    def test_streaming_keeps_recent_needle(self):
        ctx = generate_needle_context(8192, 1.0, seed=3)
        sel = StreamingSelection(sink_tokens=128, local_tokens=256).select_tokens(ctx)
        assert ctx.needle_recall(sel) == 1.0

    def test_policy_for_system(self):
        assert isinstance(policy_for_system("Dense"), DenseSelection)
        assert isinstance(policy_for_system("Quest"), FlatPageSelection)
        assert isinstance(policy_for_system("LServe"), HierarchicalPageSelection)
        assert isinstance(policy_for_system("StreamingLLM"), StreamingSelection)
        assert policy_for_system("LServe-8192", token_budget=8192).token_budget == 8192
        with pytest.raises(KeyError):
            policy_for_system("unknown-system")


class TestPageSizeDilemma:
    """The paper's core accuracy phenomena (Figs. 6 and 13).

    The paper observes them at 256K context with a 4096-token budget; the
    tests use a 64K context with a 2048-token budget, which has the same
    budget-to-context ratio and therefore the same selection pressure.
    """

    CONTEXT = 65_536
    BUDGET = 2_048
    SEEDS = range(5)

    def _recalls(self, policy_factory):
        recalls = []
        for seed in self.SEEDS:
            ctx = generate_needle_context(self.CONTEXT, 0.5, seed=100 + seed)
            recalls.append(ctx.needle_recall(policy_factory().select_tokens(ctx)))
        return float(np.mean(recalls))

    def test_quest_small_pages_recover_needle(self):
        recall = self._recalls(
            lambda: FlatPageSelection(page_size=16, token_budget=self.BUDGET)
        )
        assert recall > 0.9

    def test_quest_large_pages_fail(self):
        """Flat selection with 64-token pages loses the needle on most contexts."""
        large = self._recalls(lambda: FlatPageSelection(page_size=64, token_budget=self.BUDGET))
        small = self._recalls(lambda: FlatPageSelection(page_size=16, token_budget=self.BUDGET))
        assert large < small - 0.2

    def test_hierarchical_paging_restores_accuracy(self):
        """64-token physical pages with 16-token logical pages match page-16 Quest."""
        flat64 = self._recalls(lambda: FlatPageSelection(page_size=64, token_budget=self.BUDGET))
        hier64 = self._recalls(
            lambda: HierarchicalPageSelection(
                physical_page_size=64, logical_page_size=16, token_budget=self.BUDGET
            )
        )
        assert hier64 > 0.9
        assert hier64 > flat64 + 0.2

    def test_hierarchical_respects_budget(self, mid_needle_context):
        sel = HierarchicalPageSelection(token_budget=2048).select_tokens(mid_needle_context)
        assert sel.size <= 2048 + 64

    def test_budget_one_needs_no_selection(self):
        ctx = generate_needle_context(1024, 0.5, seed=1)
        sel = HierarchicalPageSelection(token_budget=4096).select_tokens(ctx)
        assert sel.size == 1024

    def test_larger_budget_helps_flat_selection_but_not_fully(self):
        """Fig. 6(e,f): a larger budget does not fully rescue large flat pages."""
        small_budget = self._recalls(
            lambda: FlatPageSelection(page_size=64, token_budget=self.BUDGET)
        )
        big_budget = self._recalls(
            lambda: FlatPageSelection(page_size=64, token_budget=2 * self.BUDGET)
        )
        assert big_budget >= small_budget
        assert small_budget < 1.0
