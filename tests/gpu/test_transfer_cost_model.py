"""Tests for the KV-migration transfer cost model."""

import numpy as np
import pytest

from repro.baselines.systems import lserve_policy
from repro.gpu.cost_model import TransferCostModel
from repro.gpu.device import A100_80G
from repro.gpu.simulator import LatencySimulator
from repro.model.configs import LLAMA_3_8B
from repro.serving import SimulatedBackend

GEOM = dict(page_size=16, n_layers=32, n_kv_heads=8, head_dim=128, kv_bits=16)


def test_page_bytes_formula():
    model = TransferCostModel()
    expected = 16 * 32 * 8 * 128 * 2 * (16 / 8)
    assert model.page_bytes(**GEOM) == expected


def test_transfer_bytes_scale_linearly_in_pages():
    model = TransferCostModel()
    one = model.transfer_bytes(1, **GEOM)
    assert model.transfer_bytes(7, **GEOM) == pytest.approx(7 * one)


def test_latency_monotone_in_page_count():
    model = TransferCostModel()
    latencies = [model.transfer_latency_s(n, **GEOM) for n in range(0, 64, 4)]
    assert all(b > a for a, b in zip(latencies, latencies[1:]))


def test_zero_pages_costs_only_base_latency():
    model = TransferCostModel(bandwidth_bytes_per_s=1e9, base_latency_s=2.5e-3)
    assert model.transfer_bytes(0, **GEOM) == 0.0
    assert model.transfer_latency_s(0, **GEOM) == pytest.approx(2.5e-3)


def test_latency_decomposes_into_base_plus_wire_time():
    model = TransferCostModel(bandwidth_bytes_per_s=5e10, base_latency_s=1e-3)
    payload = model.transfer_bytes(12, **GEOM)
    assert model.transfer_latency_s(12, **GEOM) == pytest.approx(
        1e-3 + payload / 5e10
    )


def test_halving_kv_bits_halves_payload():
    model = TransferCostModel()
    fp16 = model.transfer_bytes(4, **GEOM)
    int8 = model.transfer_bytes(4, **{**GEOM, "kv_bits": 8})
    assert int8 == pytest.approx(fp16 / 2)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(bandwidth_bytes_per_s=0.0),
        dict(bandwidth_bytes_per_s=-1.0),
        dict(base_latency_s=-1e-3),
    ],
)
def test_invalid_construction_rejected(kwargs):
    with pytest.raises(ValueError):
        TransferCostModel(**kwargs)


def test_invalid_geometry_rejected():
    model = TransferCostModel()
    with pytest.raises(ValueError):
        model.page_bytes(**{**GEOM, "page_size": 0})
    with pytest.raises(ValueError):
        model.transfer_bytes(-1, **GEOM)


def test_round_trip_with_simulated_backend_timing_units():
    """A SimulatedBackend hand-off prices exactly like the cost model.

    The backend's hand-off geometry comes from the same LatencySimulator that
    bills every prefill/decode call, so a transfer latency computed through
    :class:`KVHandoff` is in the same virtual-clock seconds as
    ``StepResult.elapsed_s``.
    """
    latency = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
    backend = SimulatedBackend(latency)
    n_tokens = 1_000
    backend.prefill("seq", np.zeros(n_tokens, dtype=np.int64))
    handoff = backend.handoff_out("seq")

    model = TransferCostModel()
    cfg = latency.model
    policy = latency.policy
    expected_pages = -(-n_tokens // policy.page_size)
    assert handoff.n_pages == expected_pages
    direct = model.transfer_latency_s(
        expected_pages,
        page_size=policy.page_size,
        n_layers=cfg.n_layers,
        n_kv_heads=cfg.n_kv_heads,
        head_dim=cfg.head_dim,
        kv_bits=policy.kv_bits,
    )
    assert handoff.transfer_latency_s(model) == pytest.approx(direct)
    assert handoff.transfer_bytes(model) == pytest.approx(
        model.transfer_bytes(
            expected_pages,
            page_size=policy.page_size,
            n_layers=cfg.n_layers,
            n_kv_heads=cfg.n_kv_heads,
            head_dim=cfg.head_dim,
            kv_bits=policy.kv_bits,
        )
    )
    # Seconds, like every other simulated-backend bill: a decode step and the
    # transfer live on the same clock and can be summed directly.
    assert handoff.transfer_latency_s(model) > model.base_latency_s
