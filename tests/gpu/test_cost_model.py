"""Tests for the system cost model and latency simulator."""

import pytest

from repro.baselines.systems import (
    duo_attention_policy,
    lserve_policy,
    lserve_static_only_policy,
    minference_policy,
    qserve_policy,
    quest_policy,
    vllm_policy,
)
from repro.gpu.cost_model import SystemCostModel
from repro.gpu.device import A100_80G, L40S_48G
from repro.gpu.simulator import LatencySimulator, OutOfMemoryError
from repro.model.configs import LLAMA_2_7B, LLAMA_3_8B


def cost(policy, model=LLAMA_3_8B, device=A100_80G) -> SystemCostModel:
    return SystemCostModel(model, device, policy)


class TestDecodeCostModel:
    def test_lserve_faster_than_vllm_at_long_context(self):
        ctx = 262_144
        lserve = cost(lserve_policy()).decode_step_latency(ctx)
        vllm = cost(vllm_policy()).decode_step_latency(ctx)
        assert 1.2 < vllm / lserve < 8.0

    def test_speedup_grows_with_context(self):
        lserve = cost(lserve_policy())
        vllm = cost(vllm_policy())
        ratios = [
            vllm.decode_step_latency(ctx) / lserve.decode_step_latency(ctx)
            for ctx in (65_536, 131_072, 262_144)
        ]
        assert ratios == sorted(ratios)

    def test_lserve_attention_constant_beyond_budget(self):
        lserve = cost(lserve_policy())
        a1 = lserve.decode_attention_latency(65_536)
        a2 = lserve.decode_attention_latency(262_144)
        assert a2 == pytest.approx(a1, rel=0.05)

    def test_dense_attention_linear_in_context(self):
        vllm = cost(vllm_policy())
        a1 = vllm.decode_attention_latency(65_536)
        a2 = vllm.decode_attention_latency(131_072)
        assert 1.8 < a2 / a1 < 2.2

    def test_mha_model_benefits_more(self):
        """Llama-2 (MHA) has 4x the KV traffic of Llama-3 (GQA), so sparsity helps more."""
        def speedup(model):
            return (
                cost(vllm_policy(), model).decode_step_latency(131_072)
                / cost(lserve_policy(), model).decode_step_latency(131_072)
            )
        assert speedup(LLAMA_2_7B) > speedup(LLAMA_3_8B)

    def test_selector_amortised_by_reuse_interval(self):
        with_reuse = cost(lserve_policy(reuse_interval=4)).selector_latency(262_144)
        without = cost(lserve_policy(reuse_interval=1)).selector_latency(262_144)
        assert without / with_reuse == pytest.approx(4.0, rel=0.01)

    def test_selector_disabled_below_budget(self):
        assert cost(lserve_policy()).selector_latency(2048) == 0.0

    def test_static_only_between_dense_and_full_lserve(self):
        ctx = 262_144
        dense = cost(qserve_policy()).decode_attention_latency(ctx)
        static = cost(lserve_static_only_policy()).decode_attention_latency(ctx)
        full = cost(lserve_policy()).decode_attention_latency(ctx)
        assert full < static < dense

    def test_breakdown_sums(self):
        bd = cost(lserve_policy()).decode_step_breakdown(131_072)
        assert bd.total_s == pytest.approx(
            bd.attention_s + bd.gemm_s + bd.selector_s + bd.other_s
        )
        assert 0 < bd.attention_fraction < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            cost(vllm_policy()).decode_step_breakdown(-1)
        with pytest.raises(ValueError):
            cost(vllm_policy()).prefill_breakdown(0)


class TestPrefillCostModel:
    def test_lserve_faster_than_vllm(self):
        seq = 131_072
        lserve = cost(lserve_policy()).prefill_latency(seq)
        vllm = cost(vllm_policy()).prefill_latency(seq)
        assert 1.2 < vllm / lserve < 4.0

    def test_attention_dominates_at_long_context(self):
        """Fig. 2: attention is >50% of prefill beyond 64K, ~75% at 128K."""
        bd = cost(vllm_policy()).prefill_breakdown(131_072)
        assert bd.attention_fraction > 0.5
        short = cost(vllm_policy()).prefill_breakdown(8_192)
        assert short.attention_fraction < bd.attention_fraction

    def test_minference_sparsity_helps_prefill(self):
        seq = 262_144
        minf = cost(minference_policy()).prefill_latency(seq)
        vllm = cost(vllm_policy()).prefill_latency(seq)
        assert minf < vllm

    def test_quadratic_attention_scaling(self):
        vllm = cost(vllm_policy())
        a1 = vllm.prefill_attention_latency(65_536)
        a2 = vllm.prefill_attention_latency(131_072)
        assert 3.5 < a2 / a1 < 4.5


class TestMemoryModel:
    def test_vllm_kv_larger_than_lserve(self):
        ctx = 262_144
        assert cost(vllm_policy()).kv_memory_bytes(ctx) > cost(lserve_policy()).kv_memory_bytes(ctx)

    def test_mha_kv_larger_than_gqa(self):
        ctx = 131_072
        assert (
            cost(vllm_policy(), LLAMA_2_7B).kv_memory_bytes(ctx)
            > cost(vllm_policy(), LLAMA_3_8B).kv_memory_bytes(ctx)
        )

    def test_llama3_fp16_kv_bytes_per_token(self):
        """FP16 KV for Llama-3-8B is 128 KB per token (2 * 32 * 1024 * 2 bytes)."""
        per_token = cost(vllm_policy()).kv_memory_bytes(1)
        assert per_token == pytest.approx(131072, rel=0.01)

    def test_oom_on_l40s_for_mha_long_context(self):
        sim = LatencySimulator(LLAMA_2_7B, L40S_48G, vllm_policy())
        with pytest.raises(OutOfMemoryError):
            sim.decode_step_latency(262_144, batch=2)

    def test_lserve_fits_where_vllm_does_not(self):
        ctx, batch = 262_144, 4
        vllm = cost(vllm_policy(), LLAMA_3_8B, A100_80G)
        lserve = cost(lserve_policy(), LLAMA_3_8B, A100_80G)
        assert not vllm.fits_in_memory(ctx, batch)
        assert lserve.fits_in_memory(ctx, batch)

    def test_max_context_ordering(self):
        vllm = LatencySimulator(LLAMA_3_8B, A100_80G, vllm_policy())
        lserve = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        assert lserve.max_context_in_memory(batch=8) > vllm.max_context_in_memory(batch=8)


class TestLatencySimulator:
    def test_generation_estimate(self):
        sim = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        est = sim.generation_estimate(prompt_tokens=65_536, output_tokens=512)
        assert est.prefill_s > 0
        assert est.decode_steps == 512
        assert est.mean_decode_step_s > 0
        assert est.total_s == pytest.approx(est.prefill_s + est.decode_s)
        assert est.decode_throughput_tokens_s > 0

    def test_decode_throughput_decreases_with_context_for_dense(self):
        sim = LatencySimulator(LLAMA_3_8B, A100_80G, vllm_policy())
        assert sim.decode_throughput(32_768) > sim.decode_throughput(262_144)

    def test_memory_check_can_be_disabled(self):
        sim = LatencySimulator(LLAMA_2_7B, L40S_48G, vllm_policy(), check_memory=False)
        assert sim.decode_step_latency(262_144, batch=2) > 0

    def test_generation_estimate_validation(self):
        sim = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        with pytest.raises(ValueError):
            sim.generation_estimate(0, 10)

    def test_quest_vs_lserve_table5_direction(self):
        """Table 5: LServe beats Quest in both stages on Llama-2-7B."""
        quest = LatencySimulator(LLAMA_2_7B, A100_80G, quest_policy())
        lserve = LatencySimulator(LLAMA_2_7B, A100_80G, lserve_policy())
        for seq in (8_192, 32_768):
            assert lserve.prefill_latency(seq) < quest.prefill_latency(seq)
            assert lserve.decode_step_latency(seq) < quest.decode_step_latency(seq)

    def test_duoattention_slower_than_lserve_decode(self):
        duo = LatencySimulator(LLAMA_3_8B, A100_80G, duo_attention_policy())
        lserve = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        assert lserve.decode_step_latency(262_144) < duo.decode_step_latency(262_144)
