"""Tests for device specs and per-kernel latency models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import A100_80G, L40S_48G, DeviceSpec, get_device
from repro.gpu.kernels import KernelCostModel, bandwidth_utilization


class TestDeviceSpec:
    def test_registry_lookup(self):
        assert get_device("A100-80GB") is A100_80G
        assert get_device("a100") is A100_80G
        assert get_device("L40S") is L40S_48G
        with pytest.raises(KeyError):
            get_device("H100")

    def test_a100_faster_than_l40s(self):
        assert A100_80G.memory_bandwidth_gb_s > L40S_48G.memory_bandwidth_gb_s
        assert A100_80G.fp16_tflops > L40S_48G.fp16_tflops
        assert A100_80G.memory_gb > L40S_48G.memory_gb

    def test_int8_rate_higher_than_fp16(self):
        assert A100_80G.flops_per_second(8) > A100_80G.flops_per_second(16)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", memory_gb=0, memory_bandwidth_gb_s=1, fp16_tflops=1, int8_tops=1, sm_count=1)


class TestBandwidthUtilization:
    def test_monotone_in_page_size(self):
        utils = [bandwidth_utilization(p) for p in (16, 32, 64, 128)]
        assert utils == sorted(utils)
        assert all(0 < u < 1 for u in utils)

    def test_table1_shape(self):
        """Relative slowdown of small pages matches the magnitude of Table 1."""
        slowdown_16 = bandwidth_utilization(128) / bandwidth_utilization(16)
        slowdown_64 = bandwidth_utilization(128) / bandwidth_utilization(64)
        assert 1.3 < slowdown_16 < 1.8  # paper: 1.52x
        assert 1.0 < slowdown_64 < 1.15  # paper: ~1.01x

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_utilization(0)
        with pytest.raises(ValueError):
            bandwidth_utilization(16, overhead_tokens=-1)


@pytest.fixture()
def kernels():
    return KernelCostModel(A100_80G)


class TestGemmLatency:
    def test_scales_with_work(self, kernels):
        small = kernels.gemm_latency(128, 4096, 4096)
        big = kernels.gemm_latency(1024, 4096, 4096)
        assert big > small

    def test_low_bit_weights_faster_at_batch_one(self, kernels):
        fp16 = kernels.gemm_latency(1, 4096, 4096, weight_bits=16)
        w4 = kernels.gemm_latency(1, 4096, 4096, weight_bits=4, act_bits=8)
        assert w4 < fp16

    def test_memory_bound_at_batch_one(self, kernels):
        """Decode GEMMs are weight-bandwidth bound: latency ~ weight bytes / bw."""
        lat = kernels.gemm_latency(1, 4096, 4096, weight_bits=16)
        weight_time = 4096 * 4096 * 2 / A100_80G.memory_bandwidth_bytes_s
        assert lat == pytest.approx(weight_time + kernels.kernel_launch_overhead_s, rel=0.05)

    def test_compute_bound_at_large_batch(self, kernels):
        m = 16384
        lat = kernels.gemm_latency(m, 4096, 4096, weight_bits=16)
        flop_time = 2 * m * 4096 * 4096 / (A100_80G.flops_per_second(16) * kernels.gemm_efficiency)
        assert lat == pytest.approx(flop_time + kernels.kernel_launch_overhead_s, rel=0.05)

    def test_validation(self, kernels):
        with pytest.raises(ValueError):
            kernels.gemm_latency(0, 10, 10)


class TestAttentionLatency:
    def test_prefill_quadratic_growth(self, kernels):
        t1 = kernels.prefill_attention_latency(16384, 16384, 32, 128)
        t2 = kernels.prefill_attention_latency(32768, 32768, 32, 128)
        assert 3.5 < t2 / t1 < 4.5

    def test_prefill_sparsity_speedup(self, kernels):
        dense = kernels.prefill_attention_latency(65536, 65536, 32, 128, visited_fraction=1.0)
        sparse = kernels.prefill_attention_latency(65536, 65536, 32, 128, visited_fraction=0.5)
        assert dense / sparse == pytest.approx(2.0, rel=0.05)

    def test_decode_linear_in_tokens(self, kernels):
        t1 = kernels.decode_attention_latency(65536, 8, 128)
        t2 = kernels.decode_attention_latency(131072, 8, 128)
        assert 1.8 < t2 / t1 < 2.2

    def test_decode_quantization_speedup(self, kernels):
        fp16 = kernels.decode_attention_latency(131072, 8, 128, kv_bits=16)
        kv4 = kernels.decode_attention_latency(131072, 8, 128, kv_bits=4, page_size=64)
        assert kv4 < fp16 / 2

    def test_decode_small_pages_slower(self, kernels):
        big = kernels.decode_attention_latency(131072, 8, 128, kv_bits=4, page_size=128)
        small = kernels.decode_attention_latency(131072, 8, 128, kv_bits=4, page_size=16)
        assert small > big

    def test_decode_batch_scaling(self, kernels):
        b1 = kernels.decode_attention_latency(65536, 8, 128, batch=1)
        b8 = kernels.decode_attention_latency(65536, 8, 128, batch=8)
        assert 7 < (b8 - kernels.kernel_launch_overhead_s) / (b1 - kernels.kernel_launch_overhead_s) < 9

    def test_zero_tokens(self, kernels):
        assert kernels.decode_attention_latency(0, 8, 128) == kernels.kernel_launch_overhead_s

    def test_validation(self, kernels):
        with pytest.raises(ValueError):
            kernels.prefill_attention_latency(16, 16, 2, 8, visited_fraction=1.5)
        with pytest.raises(ValueError):
            kernels.decode_attention_latency(-1, 8, 128)


class TestSelectorAndPooling:
    def test_selector_linear_in_pages(self, kernels):
        t1 = kernels.page_selector_latency(4096)
        t2 = kernels.page_selector_latency(8192)
        growth = (t2 - kernels.selector_launch_overhead_s) / (t1 - kernels.selector_launch_overhead_s)
        assert growth == pytest.approx(2.0, rel=0.01)

    def test_selector_matches_paper_magnitude(self, kernels):
        """Fig. 14: ~0.24 ms selector latency per decode step for a 128K context
        (16-token logical pages, 32 layers)."""
        t = 32 * kernels.page_selector_latency(131072 // 16)
        assert 0.15e-3 < t < 0.45e-3

    def test_selector_zero_pages(self, kernels):
        assert kernels.page_selector_latency(0) == 0.0

    def test_pooling_negligible_vs_prefill(self, kernels):
        """§5.3: context pooling is well under 1 ms even at 128K."""
        assert kernels.pooling_latency(131072, 8, 128) < 1e-3

    @given(pages=st.integers(1, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_property_selector_positive_and_monotone(self, pages):
        kernels = KernelCostModel(A100_80G)
        assert kernels.page_selector_latency(pages) > 0
        assert kernels.page_selector_latency(pages + 1) >= kernels.page_selector_latency(pages)
