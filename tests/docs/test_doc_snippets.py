"""Executable documentation: every fenced ``python`` block in the docs must run.

The harness extracts fenced code blocks tagged ``python`` from ``README.md``
and every page under ``docs/`` and executes them **in order, sharing one
namespace per file** — exactly how a reader would paste them into a REPL
session.  A snippet that imports a removed symbol, calls a renamed method, or
depends on state an earlier snippet no longer sets up fails the suite, so
code in prose cannot rot.

Conventions for doc authors:

* ``python`` blocks are executed; use any other info string (``bash``,
  ``text``, ``pycon``, ...) for content that must not run.
* Blocks in one file run top-to-bottom in a shared namespace — later blocks
  may use names defined by earlier ones, and rebinding a name mid-page
  changes it for every later block (name things accordingly).
* Keep snippets tiny-model sized: the whole docs suite should stay in CI
  smoke territory.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Documentation files whose python blocks are executed.  New docs pages are
#: picked up automatically; README is included explicitly.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

#: Files that must contain at least one runnable block (a regression guard:
#: if extraction silently broke, these would otherwise "pass" as empty).
EXPECT_SNIPPETS = {
    "README.md",
    "serving.md",
    "async_serving.md",
    "api.md",
    "cluster.md",
    "disaggregation.md",
    "kv_tiering.md",
    "speculative.md",
}

_FENCE = re.compile(
    r"^```python[ \t]*\n(?P<body>.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def extract_python_blocks(path: Path) -> list[tuple[int, str]]:
    """Fenced ``python`` blocks of one file as ``(start_line, source)`` pairs."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # first line inside fence
        blocks.append((line, match.group("body")))
    return blocks


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_execute(doc):
    blocks = extract_python_blocks(doc)
    if not blocks:
        assert doc.name not in EXPECT_SNIPPETS, (
            f"{doc.name} is expected to contain runnable python snippets but "
            "none were extracted - did the fence info strings change?"
        )
        pytest.skip(f"{doc.name} has no python snippets")
    namespace: dict = {"__name__": f"doc_snippet_{doc.stem}"}
    for line, source in blocks:
        code = compile(source, f"{doc.name}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:
            pytest.fail(
                f"snippet at {doc.name}:{line} failed: {type(exc).__name__}: {exc}"
            )


def test_expected_files_present():
    """The doc set the harness guards actually exists on disk."""
    names = {p.name for p in DOC_FILES}
    missing = EXPECT_SNIPPETS - names
    assert not missing, f"expected documentation files are missing: {missing}"
