"""Tests for model architecture configurations."""

import pytest

from repro.model.configs import (
    DS_R1_LLAMA_8B,
    LLAMA_2_7B,
    LLAMA_3_8B,
    MINITRON_4B,
    MODEL_REGISTRY,
    ModelConfig,
    get_model_config,
    tiny_model_config,
)


class TestRegisteredConfigs:
    def test_llama3_is_gqa(self):
        assert LLAMA_3_8B.is_gqa
        assert LLAMA_3_8B.gqa_group_size == 4
        assert LLAMA_3_8B.kv_dim == 1024

    def test_llama2_is_mha(self):
        assert not LLAMA_2_7B.is_gqa
        assert LLAMA_2_7B.gqa_group_size == 1

    def test_registry_contains_all_paper_models(self):
        assert set(MODEL_REGISTRY) == {
            "Llama-3-8B",
            "Llama-2-7B",
            "Minitron-4B",
            "DeepSeek-R1-Distill-Llama-8B",
        }

    def test_lookup_case_insensitive(self):
        assert get_model_config("llama-3-8b") is LLAMA_3_8B

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model_config("gpt-17")

    def test_kv_bytes_per_token_llama3_fp16(self):
        # 2 (K+V) * 32 layers * 1024 dims * 2 bytes = 131072 bytes per token.
        assert LLAMA_3_8B.kv_bytes_per_token(2.0) == pytest.approx(131072)

    def test_kv_cache_smaller_for_gqa_than_mha(self):
        assert LLAMA_3_8B.kv_bytes_per_token() < LLAMA_2_7B.kv_bytes_per_token()

    def test_minitron_smaller_than_llama3(self):
        assert MINITRON_4B.linear_flops_per_token() < LLAMA_3_8B.linear_flops_per_token()

    def test_ds_r1_shares_llama3_architecture(self):
        assert DS_R1_LLAMA_8B.n_heads == LLAMA_3_8B.n_heads
        assert DS_R1_LLAMA_8B.kv_dim == LLAMA_3_8B.kv_dim


class TestValidation:
    def test_heads_divisible_by_kv_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", n_layers=1, n_heads=6, n_kv_heads=4, head_dim=8,
                hidden_size=48, intermediate_size=64, vocab_size=10,
                max_context_length=128,
            )

    def test_hidden_size_consistency(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", n_layers=1, n_heads=4, n_kv_heads=4, head_dim=8,
                hidden_size=64, intermediate_size=64, vocab_size=10,
                max_context_length=128,
            )

    def test_positive_fields(self):
        with pytest.raises(ValueError):
            tiny_model_config(n_layers=0)

    def test_tiny_config_valid(self):
        cfg = tiny_model_config()
        assert cfg.hidden_size == cfg.n_heads * cfg.head_dim
        assert cfg.gqa_group_size == 2
