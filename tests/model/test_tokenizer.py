"""Tests for the toy tokenizer."""

import pytest

from repro.model.tokenizer import ToyTokenizer


class TestToyTokenizer:
    def test_deterministic(self):
        tok = ToyTokenizer(vocab_size=256)
        assert tok.encode("hello world") == tok.encode("hello world")

    def test_case_insensitive(self):
        tok = ToyTokenizer()
        assert tok.encode("Hello", add_bos=False) == tok.encode("hello", add_bos=False)

    def test_bos_eos(self):
        tok = ToyTokenizer()
        ids = tok.encode("a b", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id

    def test_ids_within_vocab(self):
        tok = ToyTokenizer(vocab_size=64)
        ids = tok.encode("the quick brown fox jumps over the lazy dog!")
        assert all(0 <= i < 64 for i in ids)

    def test_punctuation_tokenised_separately(self):
        tok = ToyTokenizer()
        with_punct = tok.encode("hello, world", add_bos=False)
        without = tok.encode("hello world", add_bos=False)
        assert len(with_punct) == len(without) + 1

    def test_decode_roundtrip_shape(self):
        tok = ToyTokenizer()
        ids = tok.encode("alpha beta", add_bos=True)
        text = tok.decode(ids)
        assert text.startswith("<bos>")
        assert len(text.split()) == len(ids)

    def test_vocab_too_small_raises(self):
        with pytest.raises(ValueError):
            ToyTokenizer(vocab_size=3)

    def test_len(self):
        assert len(ToyTokenizer(vocab_size=99)) == 99
