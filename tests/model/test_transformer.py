"""Tests for the NumPy TinyTransformer and its KV cache."""

import numpy as np
import pytest

from repro.model.transformer import SimpleKVCache, TinyTransformer
from repro.model.weights import SyntheticWeights


class TestSyntheticWeights:
    def test_deterministic_for_seed(self, tiny_config):
        w1 = SyntheticWeights(tiny_config, seed=3)
        w2 = SyntheticWeights(tiny_config, seed=3)
        np.testing.assert_array_equal(w1.layers[0].wq, w2.layers[0].wq)

    def test_different_seeds_differ(self, tiny_config):
        w1 = SyntheticWeights(tiny_config, seed=1)
        w2 = SyntheticWeights(tiny_config, seed=2)
        assert not np.allclose(w1.layers[0].wq, w2.layers[0].wq)

    def test_parameter_count_positive(self, tiny_config):
        assert SyntheticWeights(tiny_config).num_parameters() > 0


class TestSimpleKVCache:
    def test_append_and_get(self, rng):
        cache = SimpleKVCache(n_layers=2)
        k = rng.normal(size=(3, 2, 4))
        v = rng.normal(size=(3, 2, 4))
        cache.append(0, k, v)
        cache.append(1, k, v)
        k_out, v_out = cache.get(0)
        np.testing.assert_array_equal(k_out, k)
        assert cache.seq_len() == 3

    def test_concatenates_appends(self, rng):
        cache = SimpleKVCache(n_layers=1)
        k1 = rng.normal(size=(2, 1, 4))
        k2 = rng.normal(size=(1, 1, 4))
        cache.append(0, k1, k1)
        cache.append(0, k2, k2)
        k_out, _ = cache.get(0)
        assert k_out.shape == (3, 1, 4)
        assert cache.seq_len() == 3

    def test_empty_layer_raises(self):
        cache = SimpleKVCache(n_layers=1)
        with pytest.raises(ValueError):
            cache.get(0)

    def test_empty_seq_len_zero(self):
        assert SimpleKVCache(n_layers=1).seq_len() == 0

    def test_shape_mismatch(self, rng):
        cache = SimpleKVCache(n_layers=1)
        with pytest.raises(ValueError):
            cache.append(0, rng.normal(size=(2, 1, 4)), rng.normal(size=(3, 1, 4)))


class TestTinyTransformer:
    def test_prefill_shapes(self, tiny_model, tiny_config):
        tokens = np.array([5, 6, 7, 8])
        logits, cache = tiny_model.prefill(tokens)
        assert logits.shape == (4, tiny_config.vocab_size)
        assert cache.seq_len() == 4

    def test_decode_matches_prefill(self, tiny_model):
        """Token-by-token decoding must reproduce single-shot prefill logits."""
        tokens = np.array([3, 14, 15, 92, 65])
        full_logits, _ = tiny_model.prefill(tokens)
        cache = tiny_model.new_cache()
        step_logits = []
        for t in tokens:
            step_logits.append(tiny_model.forward(np.array([t]), cache)[0])
        np.testing.assert_allclose(np.stack(step_logits), full_logits, rtol=1e-8, atol=1e-8)

    def test_chunked_prefill_matches(self, tiny_model):
        tokens = np.array([1, 2, 3, 4, 5, 6])
        full_logits, _ = tiny_model.prefill(tokens)
        cache = tiny_model.new_cache()
        l1 = tiny_model.forward(tokens[:3], cache)
        l2 = tiny_model.forward(tokens[3:], cache)
        np.testing.assert_allclose(np.concatenate([l1, l2]), full_logits, rtol=1e-8, atol=1e-8)

    def test_generate_deterministic_greedy(self, tiny_model):
        out1 = tiny_model.generate(np.array([1, 2, 3]), max_new_tokens=5)
        out2 = tiny_model.generate(np.array([1, 2, 3]), max_new_tokens=5)
        assert out1 == out2
        assert len(out1) == 5

    def test_generate_zero_tokens(self, tiny_model):
        assert tiny_model.generate(np.array([1, 2]), max_new_tokens=0) == []

    def test_generate_stop_token(self, tiny_model):
        out = tiny_model.generate(np.array([1, 2, 3]), max_new_tokens=8, stop_token=None)
        stop = out[1]
        out_stopped = tiny_model.generate(
            np.array([1, 2, 3]), max_new_tokens=8, stop_token=stop
        )
        assert out_stopped[-1] == stop
        assert len(out_stopped) <= len(out)

    def test_rejects_out_of_vocab(self, tiny_model, tiny_config):
        with pytest.raises(ValueError):
            tiny_model.prefill(np.array([tiny_config.vocab_size + 1]))

    def test_rejects_empty_input(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.prefill(np.array([], dtype=np.int64))

    def test_custom_attention_backend_is_used(self, tiny_config):
        calls = []

        def recording_backend(layer, q, k, v, n_new):
            calls.append((layer, q.shape[0], k.shape[0]))
            from repro.attention.dense import dense_attention
            return dense_attention(q, k, v, causal=True)

        model = TinyTransformer(tiny_config, seed=1, attention_backend=recording_backend)
        model.prefill(np.array([1, 2, 3]))
        assert len(calls) == tiny_config.n_layers
        assert calls[0] == (0, 3, 3)

    def test_logits_finite(self, tiny_model):
        logits, _ = tiny_model.prefill(np.array([10, 20, 30]))
        assert np.all(np.isfinite(logits))
