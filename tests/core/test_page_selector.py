"""Tests for the (reusable) dynamic page selector."""

import numpy as np
import pytest

from repro.core.hierarchical_paging import HierarchicalPagingConfig
from repro.core.page_selector import PageSelector, ReusablePageSelector
from repro.kvcache.kv_stats import compute_page_key_stats


def stats_from_keys(keys, logical_page_size):
    stats = compute_page_key_stats(keys, logical_page_size)
    return np.stack([s.kmin for s in stats]), np.stack([s.kmax for s in stats])


def make_selector(token_budget=32, physical=16, logical=4, **kwargs) -> PageSelector:
    cfg = HierarchicalPagingConfig(
        physical_page_size=physical, logical_page_size=logical, token_budget=token_budget
    )
    return PageSelector(cfg, **kwargs)


class TestPageSelector:
    def test_selects_needle_page(self, rng):
        """A page containing keys aligned with the query must be selected."""
        n_tokens, n_kv_heads, dim = 256, 1, 16
        keys = rng.normal(scale=0.1, size=(n_tokens, n_kv_heads, dim))
        q = rng.normal(size=(1, dim))
        needle_slice = slice(130, 140)
        keys[needle_slice, 0] = q[0] * 2.0  # strongly aligned with the query
        kmin, kmax = stats_from_keys(keys, 4)
        selector = make_selector(token_budget=64, physical=16, logical=4)
        selection = selector.select(q, kmin, kmax)
        needle_pages = {130 // 16, 139 // 16}
        assert needle_pages <= set(selection.pages_per_kv_head[0].tolist())

    def test_selection_respects_budget(self, rng):
        keys = rng.normal(size=(512, 2, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        q = rng.normal(size=(2, 8))
        selector = make_selector(token_budget=64, physical=16, logical=4)
        selection = selector.select(q, kmin, kmax)
        for pages in selection.pages_per_kv_head:
            assert len(pages) <= 4  # 64-token budget / 16-token pages
        assert selection.selected_fraction() <= 4 / 32 + 1e-9

    def test_short_context_keeps_all_pages(self, rng):
        keys = rng.normal(size=(24, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        q = rng.normal(size=(1, 8))
        selector = make_selector(token_budget=64, physical=16, logical=4)
        selection = selector.select(q, kmin, kmax)
        np.testing.assert_array_equal(selection.pages_per_kv_head[0], [0, 1])
        assert selection.selected_fraction() == 1.0

    def test_counts_invocations(self, rng):
        keys = rng.normal(size=(64, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        q = rng.normal(size=(1, 8))
        selector = make_selector()
        for _ in range(3):
            selector.select(q, kmin, kmax)
        assert selector.num_invocations == 3


class TestReusablePageSelector:
    def test_reuse_reduces_selector_calls(self, rng):
        keys = rng.normal(size=(256, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=4)
        for _ in range(16):
            reusable.select("seq", rng.normal(size=(1, 8)), kmin, kmax)
        assert reusable.num_queries == 16
        assert reusable.num_selector_calls == 4
        assert reusable.overhead_reduction() == pytest.approx(4.0)

    def test_interval_one_selects_every_time(self, rng):
        keys = rng.normal(size=(64, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(), reuse_interval=1)
        for _ in range(5):
            reusable.select("seq", rng.normal(size=(1, 8)), kmin, kmax)
        assert reusable.num_selector_calls == 5

    def test_new_page_forces_reselection(self, rng):
        keys = rng.normal(size=(256, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=8)
        q = rng.normal(size=(1, 8))
        reusable.select("seq", q, kmin, kmax)
        # Growing the context by a physical page invalidates the cached choice.
        keys2 = np.concatenate([keys, rng.normal(size=(16, 1, 8))])
        kmin2, kmax2 = stats_from_keys(keys2, 4)
        reusable.select("seq", q, kmin2, kmax2)
        assert reusable.num_selector_calls == 2

    def test_new_logical_page_forces_reselection(self, rng):
        """Fresh key stats inside the same physical page must refresh the cache.

        Regression: the cached selection used to be refreshed only when the
        *physical* page count grew, so tokens landing in a fresh logical page
        of the same physical page changed kmin/kmax without a refresh.
        """
        keys = rng.normal(size=(252, 1, 8))  # 63 logical pages, 16 physical
        kmin, kmax = stats_from_keys(keys, 4)
        assert kmin.shape[0] == 63
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=8)
        q = rng.normal(size=(1, 8))
        reusable.select("seq", q, kmin, kmax)
        # Four more tokens: 64 logical pages, physical count still 16.
        keys2 = np.concatenate([keys, rng.normal(size=(4, 1, 8))])
        kmin2, kmax2 = stats_from_keys(keys2, 4)
        assert kmin2.shape[0] == 64
        assert -(-64 // 4) == -(-63 // 4)  # physical page count unchanged
        reusable.select("seq", q, kmin2, kmax2)
        assert reusable.num_selector_calls == 2

    def test_per_sequence_caches(self, rng):
        keys = rng.normal(size=(128, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=4)
        q = rng.normal(size=(1, 8))
        reusable.select("a", q, kmin, kmax)
        reusable.select("b", q, kmin, kmax)
        assert reusable.num_selector_calls == 2

    def test_reset(self, rng):
        keys = rng.normal(size=(128, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=4)
        q = rng.normal(size=(1, 8))
        reusable.select("a", q, kmin, kmax)
        reusable.reset("a")
        reusable.select("a", q, kmin, kmax)
        assert reusable.num_selector_calls == 2
        reusable.reset()
        reusable.select("a", q, kmin, kmax)
        assert reusable.num_selector_calls == 3

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ReusablePageSelector(make_selector(), reuse_interval=0)

    def test_cached_selection_identical(self, rng):
        keys = rng.normal(size=(256, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=4)
        first = reusable.select("s", rng.normal(size=(1, 8)), kmin, kmax)
        second = reusable.select("s", rng.normal(size=(1, 8)), kmin, kmax)
        assert first is second

    def test_release_sequence_only_evicts_that_sequence(self, rng):
        keys = rng.normal(size=(256, 1, 8))
        kmin, kmax = stats_from_keys(keys, 4)
        reusable = ReusablePageSelector(make_selector(token_budget=48), reuse_interval=8)
        q = rng.normal(size=(1, 8))
        # Engine-style (seq_id, layer) keys plus a bare key.
        cached = {}
        for key in [("a", 0), ("a", 1), ("b", 0), "c"]:
            cached[key] = reusable.select(key, q, kmin, kmax)
        assert reusable.num_selector_calls == 4
        reusable.release_sequence("a")
        # b and c still hit their caches; a's selections were recomputed.
        assert reusable.select(("b", 0), q, kmin, kmax) is cached[("b", 0)]
        assert reusable.select("c", q, kmin, kmax) is cached["c"]
        assert reusable.num_selector_calls == 4
        reusable.select(("a", 0), q, kmin, kmax)
        assert reusable.num_selector_calls == 5
        reusable.release_sequence("c")
        reusable.select("c", q, kmin, kmax)
        assert reusable.num_selector_calls == 6
