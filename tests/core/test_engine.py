"""Integration tests for the LServe engine."""

import numpy as np
import pytest

from repro.core.config import LServeConfig
from repro.core.engine import LServeEngine
from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(tiny_model_config(), seed=11)


def dense_config(**overrides) -> LServeConfig:
    base = dict(
        streaming_head_ratio=0.0,
        dynamic_sparsity_enabled=False,
        kv_bits=16,
        physical_page_size=16,
        logical_page_size=16,
        sink_tokens=16,
        local_tokens=16,
        q_block_size=16,
        token_budget=64,
    )
    base.update(overrides)
    return LServeConfig(**base)


def sparse_config(**overrides) -> LServeConfig:
    base = dict(
        streaming_head_ratio=0.5,
        dynamic_sparsity_enabled=True,
        kv_bits=8,
        physical_page_size=16,
        logical_page_size=4,
        sink_tokens=16,
        local_tokens=32,
        q_block_size=16,
        token_budget=64,
        reuse_interval=4,
    )
    base.update(overrides)
    return LServeConfig(**base)


class TestDenseEquivalence:
    def test_prefill_matches_reference_model(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        tokens = np.arange(40) % model.config.vocab_size
        engine_logits = engine.prefill("s", tokens)
        ref_logits, _ = model.prefill(tokens)
        np.testing.assert_allclose(engine_logits, ref_logits, rtol=1e-7, atol=1e-7)

    def test_decode_matches_reference_model(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        tokens = np.arange(24) % model.config.vocab_size
        engine.prefill("s", tokens)
        cache = model.new_cache()
        model.forward(tokens, cache)
        for t in [5, 9, 13]:
            ref = model.forward(np.array([t]), cache)[0]
            got = engine.decode("s", t)
            np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)


def hybrid_reference_backend(streaming_query_mask, page_size, q_block, sink_blocks, local_blocks):
    """Reference attention applying LServe's *block-granular* Λ mask to
    streaming heads and full causal attention to dense heads.

    Prefill queries are tiled in ``q_block``-sized blocks; decode queries
    (``n_new == 1``) use a 1-row tile, matching the engine's TQ geometry.
    """
    from repro.attention.dense import dense_attention
    from repro.attention.masks import block_streaming_mask, mask_from_block_mask

    def backend(layer, q, k, v, n_new):
        n_kv = k.shape[0]
        tile = q_block if n_new > 1 else 1
        block_mask = block_streaming_mask(
            n_new, n_kv, tile, page_size, sink_blocks=sink_blocks, local_blocks=local_blocks
        )
        lam = mask_from_block_mask(block_mask, n_new, n_kv, tile, page_size, causal=True)
        full = dense_attention(q, k, v, causal=True)
        stream = dense_attention(q, k, v, mask=lam)
        return np.where(streaming_query_mask[None, :, None], stream, full)

    return backend


class TestSparseServing:
    def test_prefill_matches_masked_reference(self, model):
        """Engine prefill == reference model with per-head Λ / causal masks."""
        tokens = (np.arange(128) * 7) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(kv_bits=16),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine_logits = engine.prefill("s", tokens)
        ref_model = TinyTransformer(
            model.config,
            weights=model.weights,
            attention_backend=hybrid_reference_backend(
                engine.streaming_query_heads,
                page_size=16, q_block=16, sink_blocks=1, local_blocks=2,
            ),
        )
        ref_logits, _ = ref_model.prefill(tokens)
        np.testing.assert_allclose(engine_logits, ref_logits, rtol=1e-6, atol=1e-6)

    def test_decode_matches_masked_reference_when_budget_covers_context(self, model):
        """With the token budget covering the whole context, decode equals the
        hybrid (streaming + dense) reference exactly."""
        tokens = (np.arange(96) * 5) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(kv_bits=16, token_budget=4096),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        ref_model = TinyTransformer(
            model.config,
            weights=model.weights,
            attention_backend=hybrid_reference_backend(
                engine.streaming_query_heads,
                page_size=16, q_block=16, sink_blocks=1, local_blocks=2,
            ),
        )
        cache = ref_model.new_cache()
        ref_model.forward(tokens, cache)
        for t in [3, 8, 21]:
            ref = ref_model.forward(np.array([t]), cache)[0]
            got = engine.decode("s", t)
            np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)

    def test_decode_uses_constant_kv_budget(self, model):
        tokens = (np.arange(320) * 3) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(token_budget=64),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        for t in range(8):
            engine.decode("s", t + 1)
        stats = engine.stats
        assert stats.decode_steps == 8
        # Dense heads read far fewer tokens than the full context.
        assert stats.decode_kv_compression < 0.5
        # Streaming heads touch only sink + local tokens.
        assert stats.streaming_tokens_attended <= 8 * model.config.n_layers * (16 + 32)

    def test_prefill_block_sparsity_recorded(self, model):
        tokens = (np.arange(256) * 5) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        assert 0.2 < engine.stats.prefill_block_sparsity < 0.6

    def test_reusable_selector_invoked_sparsely(self, model):
        tokens = (np.arange(200) * 3) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(reuse_interval=4, token_budget=64),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        for t in range(8):
            engine.decode("s", t + 1)
        assert engine.selector.num_queries > engine.selector.num_selector_calls
        assert engine.selector.overhead_reduction() > 1.5

    def test_generate_runs_end_to_end(self, model):
        engine = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        out = engine.generate(np.arange(64), max_new_tokens=4, seq_id="gen")
        assert len(out) == 4
        assert all(0 <= t < model.config.vocab_size for t in out)

    def test_generate_honors_zero_and_small_budgets(self, model):
        engine = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        assert engine.generate(np.arange(32), max_new_tokens=0, seq_id="z") == []
        assert len(engine.generate(np.arange(32), max_new_tokens=1, seq_id="one")) == 1
        with pytest.raises(ValueError):
            engine.generate(np.arange(32), max_new_tokens=-1, seq_id="neg")

    def test_generate_stops_at_eos(self, model):
        from repro.serving.sampling import SamplingParams

        engine = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        free = engine.generate(np.arange(64), max_new_tokens=6, seq_id="free")
        stop = free[1]  # a token the greedy run emits mid-stream
        engine2 = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        out = engine2.generate(
            np.arange(64),
            max_new_tokens=6,
            seq_id="stopped",
            sampling=SamplingParams(stop_token_ids=(stop,)),
        )
        assert out == free[:2]  # the stop token is kept, generation halts

    def test_chunked_prefill_matches_single_shot(self, model):
        tokens = (np.arange(128) * 7) % model.config.vocab_size
        single = LServeEngine(
            model,
            sparse_config(kv_bits=16),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        chunked = LServeEngine(
            model,
            sparse_config(kv_bits=16),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        ref = single.prefill("s", tokens)
        got = chunked.prefill("s", tokens, chunk_size=32)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)
        assert chunked.stats.prefill_tokens == tokens.size
        # Decode after chunked prefill continues from the same state.
        np.testing.assert_allclose(
            chunked.decode("s", 3), single.decode("s", 3), rtol=1e-9, atol=1e-9
        )

    def test_chunked_prefill_dense_matches_reference_model(self, model):
        tokens = np.arange(72) % model.config.vocab_size
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        logits = engine.prefill("s", tokens, chunk_size=16)
        ref_logits, _ = model.prefill(tokens)
        np.testing.assert_allclose(logits, ref_logits, rtol=1e-6, atol=1e-6)

    def test_chunk_size_validation(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        with pytest.raises(ValueError):
            engine.prefill("s", np.arange(16), chunk_size=0)

    def test_decode_batch_matches_sequential_decode(self, model):
        tokens_a = (np.arange(96) * 5) % model.config.vocab_size
        tokens_b = (np.arange(96) * 11 + 2) % model.config.vocab_size

        def fresh():
            return LServeEngine(
                model,
                sparse_config(kv_bits=16, token_budget=4096),
                streaming_kv_heads=np.array([False, True]),
                num_cache_pages=512,
            )

        batched = fresh()
        batched.prefill("a", tokens_a)
        batched.prefill("b", tokens_b)
        solo = fresh()
        solo.prefill("a", tokens_a)
        solo.prefill("b", tokens_b)
        for t in range(4):
            got = batched.decode_batch(["a", "b"], [t, t + 1])
            ref_a = solo.decode("a", t)
            ref_b = solo.decode("b", t + 1)
            np.testing.assert_allclose(got[0], ref_a, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(got[1], ref_b, rtol=1e-9, atol=1e-9)
        assert batched.stats.decode_steps == 8

    def test_decode_batch_validation(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        engine.prefill("a", np.arange(16))
        with pytest.raises(ValueError):
            engine.decode_batch([], [])
        with pytest.raises(ValueError):
            engine.decode_batch(["a"], [1, 2])
        with pytest.raises(ValueError):
            engine.decode_batch(["a", "a"], [1, 2])

    def test_memory_savings_vs_dense(self, model):
        tokens = np.arange(256) % model.config.vocab_size
        dense = LServeEngine(model, dense_config(), num_cache_pages=512)
        sparse = LServeEngine(
            model,
            sparse_config(kv_bits=4),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        dense.prefill("a", tokens)
        sparse.prefill("a", tokens)
        assert sparse.cache.memory_bytes_model() < dense.cache.memory_bytes_model()


class TestEngineLifecycleAndValidation:
    def test_prefill_twice_rejected(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.prefill("s", np.arange(16))
        with pytest.raises(ValueError):
            engine.prefill("s", np.arange(16))

    def test_decode_before_prefill_rejected(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.add_sequence("s")
        with pytest.raises(ValueError):
            engine.decode("s", 1)

    def test_release_frees_pages(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.prefill("s", np.arange(48))
        assert engine.cache.dense_cache.allocator.num_allocated > 0
        engine.release("s")
        assert engine.cache.dense_cache.allocator.num_allocated == 0

    def test_release_only_evicts_own_selector_entries(self, model):
        engine = LServeEngine(
            model,
            sparse_config(token_budget=64),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        tokens = (np.arange(320) * 3) % model.config.vocab_size
        engine.prefill("a", tokens)
        engine.prefill("b", tokens[::-1].copy())
        engine.decode_batch(["a", "b"], [1, 2])
        assert any(k[0] == "a" for k in engine.selector._cache)
        assert any(k[0] == "b" for k in engine.selector._cache)
        engine.release("a")
        assert not any(k[0] == "a" for k in engine.selector._cache)
        assert any(k[0] == "b" for k in engine.selector._cache)

    def test_empty_prompt_rejected(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        with pytest.raises(ValueError):
            engine.prefill("s", np.array([], dtype=np.int64))

    def test_bad_head_mask_shape(self, model):
        with pytest.raises(ValueError):
            LServeEngine(
                model, sparse_config(), streaming_kv_heads=np.array([True, False, True])
            )

    def test_automatic_head_classification(self, model):
        engine = LServeEngine(
            model,
            sparse_config(streaming_head_ratio=0.5),
            calibration_tokens=np.arange(64) % model.config.vocab_size,
            num_cache_pages=256,
        )
        assert engine.streaming_kv_heads.sum() == 1  # half of 2 KV heads
        assert engine.streaming_query_heads.sum() == 2

    def test_context_length_tracking(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.prefill("s", np.arange(20))
        assert engine.context_length("s") == 20
        engine.decode("s", 3)
        assert engine.context_length("s") == 21
