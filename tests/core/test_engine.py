"""Integration tests for the LServe engine."""

import numpy as np
import pytest

from repro.core.config import LServeConfig
from repro.core.engine import LServeEngine
from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(tiny_model_config(), seed=11)


def dense_config(**overrides) -> LServeConfig:
    base = dict(
        streaming_head_ratio=0.0,
        dynamic_sparsity_enabled=False,
        kv_bits=16,
        physical_page_size=16,
        logical_page_size=16,
        sink_tokens=16,
        local_tokens=16,
        q_block_size=16,
        token_budget=64,
    )
    base.update(overrides)
    return LServeConfig(**base)


def sparse_config(**overrides) -> LServeConfig:
    base = dict(
        streaming_head_ratio=0.5,
        dynamic_sparsity_enabled=True,
        kv_bits=8,
        physical_page_size=16,
        logical_page_size=4,
        sink_tokens=16,
        local_tokens=32,
        q_block_size=16,
        token_budget=64,
        reuse_interval=4,
    )
    base.update(overrides)
    return LServeConfig(**base)


class TestDenseEquivalence:
    def test_prefill_matches_reference_model(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        tokens = np.arange(40) % model.config.vocab_size
        engine_logits = engine.prefill("s", tokens)
        ref_logits, _ = model.prefill(tokens)
        np.testing.assert_allclose(engine_logits, ref_logits, rtol=1e-7, atol=1e-7)

    def test_decode_matches_reference_model(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=256)
        tokens = np.arange(24) % model.config.vocab_size
        engine.prefill("s", tokens)
        cache = model.new_cache()
        model.forward(tokens, cache)
        for t in [5, 9, 13]:
            ref = model.forward(np.array([t]), cache)[0]
            got = engine.decode("s", t)
            np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)


def hybrid_reference_backend(streaming_query_mask, page_size, q_block, sink_blocks, local_blocks):
    """Reference attention applying LServe's *block-granular* Λ mask to
    streaming heads and full causal attention to dense heads.

    Prefill queries are tiled in ``q_block``-sized blocks; decode queries
    (``n_new == 1``) use a 1-row tile, matching the engine's TQ geometry.
    """
    from repro.attention.dense import dense_attention
    from repro.attention.masks import block_streaming_mask, mask_from_block_mask

    def backend(layer, q, k, v, n_new):
        n_kv = k.shape[0]
        tile = q_block if n_new > 1 else 1
        block_mask = block_streaming_mask(
            n_new, n_kv, tile, page_size, sink_blocks=sink_blocks, local_blocks=local_blocks
        )
        lam = mask_from_block_mask(block_mask, n_new, n_kv, tile, page_size, causal=True)
        full = dense_attention(q, k, v, causal=True)
        stream = dense_attention(q, k, v, mask=lam)
        return np.where(streaming_query_mask[None, :, None], stream, full)

    return backend


class TestSparseServing:
    def test_prefill_matches_masked_reference(self, model):
        """Engine prefill == reference model with per-head Λ / causal masks."""
        tokens = (np.arange(128) * 7) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(kv_bits=16),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine_logits = engine.prefill("s", tokens)
        ref_model = TinyTransformer(
            model.config,
            weights=model.weights,
            attention_backend=hybrid_reference_backend(
                engine.streaming_query_heads,
                page_size=16, q_block=16, sink_blocks=1, local_blocks=2,
            ),
        )
        ref_logits, _ = ref_model.prefill(tokens)
        np.testing.assert_allclose(engine_logits, ref_logits, rtol=1e-6, atol=1e-6)

    def test_decode_matches_masked_reference_when_budget_covers_context(self, model):
        """With the token budget covering the whole context, decode equals the
        hybrid (streaming + dense) reference exactly."""
        tokens = (np.arange(96) * 5) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(kv_bits=16, token_budget=4096),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        ref_model = TinyTransformer(
            model.config,
            weights=model.weights,
            attention_backend=hybrid_reference_backend(
                engine.streaming_query_heads,
                page_size=16, q_block=16, sink_blocks=1, local_blocks=2,
            ),
        )
        cache = ref_model.new_cache()
        ref_model.forward(tokens, cache)
        for t in [3, 8, 21]:
            ref = ref_model.forward(np.array([t]), cache)[0]
            got = engine.decode("s", t)
            np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)

    def test_decode_uses_constant_kv_budget(self, model):
        tokens = (np.arange(320) * 3) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(token_budget=64),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        for t in range(8):
            engine.decode("s", t + 1)
        stats = engine.stats
        assert stats.decode_steps == 8
        # Dense heads read far fewer tokens than the full context.
        assert stats.decode_kv_compression < 0.5
        # Streaming heads touch only sink + local tokens.
        assert stats.streaming_tokens_attended <= 8 * model.config.n_layers * (16 + 32)

    def test_prefill_block_sparsity_recorded(self, model):
        tokens = (np.arange(256) * 5) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        assert 0.2 < engine.stats.prefill_block_sparsity < 0.6

    def test_reusable_selector_invoked_sparsely(self, model):
        tokens = (np.arange(200) * 3) % model.config.vocab_size
        engine = LServeEngine(
            model,
            sparse_config(reuse_interval=4, token_budget=64),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        engine.prefill("s", tokens)
        for t in range(8):
            engine.decode("s", t + 1)
        assert engine.selector.num_queries > engine.selector.num_selector_calls
        assert engine.selector.overhead_reduction() > 1.5

    def test_generate_runs_end_to_end(self, model):
        engine = LServeEngine(
            model,
            sparse_config(),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        out = engine.generate(np.arange(64), max_new_tokens=4, seq_id="gen")
        assert len(out) == 4
        assert all(0 <= t < model.config.vocab_size for t in out)

    def test_memory_savings_vs_dense(self, model):
        tokens = np.arange(256) % model.config.vocab_size
        dense = LServeEngine(model, dense_config(), num_cache_pages=512)
        sparse = LServeEngine(
            model,
            sparse_config(kv_bits=4),
            streaming_kv_heads=np.array([False, True]),
            num_cache_pages=512,
        )
        dense.prefill("a", tokens)
        sparse.prefill("a", tokens)
        assert sparse.cache.memory_bytes_model() < dense.cache.memory_bytes_model()


class TestEngineLifecycleAndValidation:
    def test_prefill_twice_rejected(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.prefill("s", np.arange(16))
        with pytest.raises(ValueError):
            engine.prefill("s", np.arange(16))

    def test_decode_before_prefill_rejected(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.add_sequence("s")
        with pytest.raises(ValueError):
            engine.decode("s", 1)

    def test_release_frees_pages(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.prefill("s", np.arange(48))
        assert engine.cache.dense_cache.allocator.num_allocated > 0
        engine.release("s")
        assert engine.cache.dense_cache.allocator.num_allocated == 0

    def test_empty_prompt_rejected(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        with pytest.raises(ValueError):
            engine.prefill("s", np.array([], dtype=np.int64))

    def test_bad_head_mask_shape(self, model):
        with pytest.raises(ValueError):
            LServeEngine(
                model, sparse_config(), streaming_kv_heads=np.array([True, False, True])
            )

    def test_automatic_head_classification(self, model):
        engine = LServeEngine(
            model,
            sparse_config(streaming_head_ratio=0.5),
            calibration_tokens=np.arange(64) % model.config.vocab_size,
            num_cache_pages=256,
        )
        assert engine.streaming_kv_heads.sum() == 1  # half of 2 KV heads
        assert engine.streaming_query_heads.sum() == 2

    def test_context_length_tracking(self, model):
        engine = LServeEngine(model, dense_config(), num_cache_pages=128)
        engine.prefill("s", np.arange(20))
        assert engine.context_length("s") == 20
        engine.decode("s", 3)
        assert engine.context_length("s") == 21
