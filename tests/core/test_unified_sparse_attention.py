"""Tests for the unified block-sparse attention (prefill + decode helpers)."""

import numpy as np
import pytest

from repro.attention.dense import dense_attention
from repro.core.streaming import StreamingConfig
from repro.core.unified_sparse_attention import (
    decode_group_attention,
    prefill_sparse_attention,
)
from tests.conftest import random_qkv


class TestPrefillSparseAttention:
    def test_all_dense_heads_match_dense_attention(self, rng):
        q, k, v = random_qkv(rng, 64, 64)
        out, stats = prefill_sparse_attention(
            q, k, v,
            head_is_streaming=np.zeros(4, dtype=bool),
            streaming=StreamingConfig(sink_tokens=8, local_tokens=8),
            q_block=16, kv_block=16,
        )
        np.testing.assert_allclose(out, dense_attention(q, k, v), rtol=1e-8)
        assert stats.sparsity == 0.0

    def test_streaming_heads_match_lambda_mask(self, rng):
        n = 64
        q, k, v = random_qkv(rng, n, n)
        streaming = StreamingConfig(sink_tokens=16, local_tokens=16)
        head_mask = np.array([False, False, True, True])
        out, stats = prefill_sparse_attention(
            q, k, v, head_mask, streaming, q_block=16, kv_block=16
        )
        dense_out = dense_attention(q, k, v)
        np.testing.assert_allclose(out[:, :2], dense_out[:, :2], rtol=1e-8)
        # Streaming heads: must not depend on the middle of the context.
        v2 = v.copy()
        v2[24:40] += 5.0
        out2, _ = prefill_sparse_attention(
            q, k, v2, head_mask, streaming, q_block=16, kv_block=16
        )
        np.testing.assert_allclose(out[-1, 2:], out2[-1, 2:], rtol=1e-10)
        assert stats.sparsity > 0.0
        assert stats.theoretical_speedup > 1.0

    def test_half_streaming_halves_block_work_at_long_context(self, rng):
        n = 512
        q, k, v = random_qkv(rng, n, n, n_heads=2, n_kv_heads=2, head_dim=8)
        streaming = StreamingConfig(sink_tokens=32, local_tokens=32)
        _, stats = prefill_sparse_attention(
            q, k, v, np.array([False, True]), streaming, q_block=32, kv_block=32
        )
        # The streaming head does nearly no work at this length, so overall
        # sparsity approaches 50%.
        assert 0.35 < stats.sparsity < 0.5

    def test_head_mask_validation(self, rng):
        q, k, v = random_qkv(rng, 16, 16)
        with pytest.raises(ValueError):
            prefill_sparse_attention(
                q, k, v, np.zeros(3, dtype=bool), StreamingConfig(), 8, 8
            )

    def test_gqa_supported(self, rng):
        q, k, v = random_qkv(rng, 32, 32, n_heads=4, n_kv_heads=2)
        out, _ = prefill_sparse_attention(
            q, k, v,
            head_is_streaming=np.array([False, True, False, True]),
            streaming=StreamingConfig(sink_tokens=8, local_tokens=8),
            q_block=8, kv_block=8,
        )
        assert out.shape == q.shape
        assert np.all(np.isfinite(out))


class TestDecodeGroupAttention:
    def test_matches_dense_attention_over_subset(self, rng):
        q_group = rng.normal(size=(4, 8))
        k_sel = rng.normal(size=(12, 8))
        v_sel = rng.normal(size=(12, 8))
        out = decode_group_attention(q_group, k_sel, v_sel)
        expected = dense_attention(
            q_group[None], k_sel[:, None, :], v_sel[:, None, :], causal=False
        )[0]
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_empty_selection_returns_zeros(self, rng):
        q_group = rng.normal(size=(2, 8))
        out = decode_group_attention(q_group, np.zeros((0, 8)), np.zeros((0, 8)))
        np.testing.assert_array_equal(out, np.zeros((2, 8)))

    def test_single_token(self, rng):
        q_group = rng.normal(size=(1, 4))
        k = rng.normal(size=(1, 4))
        v = rng.normal(size=(1, 4))
        out = decode_group_attention(q_group, k, v)
        np.testing.assert_allclose(out, v, rtol=1e-10)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            decode_group_attention(rng.normal(size=(2, 4)), rng.normal(size=(3, 4)), rng.normal(size=(2, 4)))

    def test_full_selection_equals_streaming_equivalence(self, rng):
        """Decoding with all tokens selected equals dense decode attention."""
        n_ctx = 20
        q, k, v = random_qkv(rng, 1, n_ctx, n_heads=2, n_kv_heads=1, head_dim=8)
        dense_out = dense_attention(q, k, v, causal=True)
        sparse_out = decode_group_attention(q[0], k[:, 0], v[:, 0])
        np.testing.assert_allclose(sparse_out, dense_out[0], rtol=1e-10)
