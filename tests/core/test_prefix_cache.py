"""Engine-level prefix sharing: attach, register, evict, fork, OOM atomicity."""

import numpy as np
import pytest

from repro.core.config import LServeConfig
from repro.core.engine import DecodeOutOfPagesError, LServeEngine
from repro.kvcache.prefix_index import PrefixIndex
from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(tiny_model_config(), seed=11)


def shared_config(**overrides) -> LServeConfig:
    """Prefix-cache config with aligned boundaries and exact (16-bit) KV.

    ``q_block_size == physical_page_size`` keeps attach boundaries aligned
    with the prefill tiling, and ``kv_bits=16`` makes the continuation chunk
    numerically identical to a single-shot prefill — so prefix-cache runs
    are byte-comparable to uncached runs.
    """
    base = dict(
        streaming_head_ratio=0.5,
        dynamic_sparsity_enabled=True,
        kv_bits=16,
        physical_page_size=16,
        logical_page_size=4,
        sink_tokens=16,
        local_tokens=32,
        q_block_size=16,
        token_budget=64,
        prefix_cache_enabled=True,
    )
    base.update(overrides)
    return LServeConfig(**base)


def make_engine(model, num_pages=256, **overrides) -> LServeEngine:
    return LServeEngine(
        model,
        shared_config(**overrides),
        streaming_kv_heads=np.array([False, True]),
        num_cache_pages=num_pages,
    )


class TestPrefixIndexUnit:
    def test_match_and_register(self):
        index = PrefixIndex(page_size=4)
        tokens = np.arange(10)
        assert index.match(tokens) == []
        inserted = index.register(
            tokens, [None, None], lambda i: None, lambda i: (None, None)
        )
        assert inserted == 2
        chain = index.match(tokens)
        assert len(chain) == 2
        # A diverging prompt matches only the common page.
        other = np.concatenate([np.arange(4), np.arange(100, 106)])
        assert len(index.match(other)) == 1
        # max_tokens caps the match depth.
        assert len(index.match(tokens, max_tokens=7)) == 1

    def test_register_is_idempotent(self):
        index = PrefixIndex(page_size=4)
        tokens = np.arange(8)
        index.register(tokens, [None, None], lambda i: None, lambda i: (None, None))
        again = index.register(tokens, [None, None], lambda i: None, lambda i: (None, None))
        assert again == 0
        assert index.num_nodes == 2

    def test_eviction_is_lru_leaf_first(self):
        from repro.kvcache.allocator import PageAllocator

        alloc = PageAllocator(4)
        pages = [alloc.allocate() for _ in range(4)]
        index = PrefixIndex(page_size=2, allocator=alloc)
        index.register(np.arange(4), pages[:2], lambda i: None, lambda i: (None, None))
        index.register(
            np.array([100, 101, 102, 103]), pages[2:], lambda i: None, lambda i: (None, None)
        )
        index.match(np.arange(4))  # touch the first chain (more recently used)
        for page in pages:
            alloc.free(page)  # drop the "sequence" refs; the index keeps its own
        assert alloc.num_free == 0
        assert index.evict_until(1)
        assert alloc.num_free == 1
        # The stale chain's leaf went first.
        assert len(index.match(np.arange(4))) == 2
        assert len(index.match(np.array([100, 101, 102, 103]))) == 1
        index.clear()
        assert alloc.num_free == 4
        assert index.num_nodes == 0


class TestEnginePrefixCache:
    def test_hit_skips_prefill_work_and_matches_uncached(self, model):
        tokens = (np.arange(80) * 7) % model.config.vocab_size
        cached = make_engine(model)
        uncached = make_engine(model, prefix_cache_enabled=False)

        first = cached.prefill("a", tokens)
        ref = uncached.prefill("a", tokens)
        np.testing.assert_array_equal(first, ref)
        assert cached.stats.prefix_hit_tokens == 0
        assert cached.prefix_cache.num_nodes == 80 // 16

        second = cached.prefill("b", tokens)
        ref_b = uncached.prefill("b", tokens)
        # 64 of 80 tokens attach (the last page stays computed for logits).
        assert cached.stats.prefix_hit_tokens == 64
        assert cached.stats.prefill_tokens == 80 + 16
        assert second.shape == (16, model.config.vocab_size)
        np.testing.assert_array_equal(second[-1], ref_b[-1])
        # Decode continues byte-identically from the attached state.
        for t in range(6):
            np.testing.assert_array_equal(cached.decode("b", t), uncached.decode("b", t))

    def test_partial_prefix_hit(self, model):
        tokens = (np.arange(64) * 3) % model.config.vocab_size
        divergent = tokens.copy()
        divergent[32:] = (divergent[32:] + 5) % model.config.vocab_size
        cached = make_engine(model)
        uncached = make_engine(model, prefix_cache_enabled=False)
        cached.prefill("a", tokens)
        got = cached.prefill("b", divergent)
        ref = uncached.prefill("b", divergent)
        assert cached.stats.prefix_hit_tokens == 32
        np.testing.assert_array_equal(got[-1], ref[-1])

    def test_short_prompt_never_attaches(self, model):
        cached = make_engine(model)
        tokens = np.arange(16)
        cached.prefill("a", tokens)
        cached.prefill("b", tokens)  # 16 tokens: alignment leaves nothing to attach
        assert cached.stats.prefix_hit_tokens == 0

    def test_release_keeps_index_pages_alive(self, model):
        tokens = (np.arange(48) * 7) % model.config.vocab_size
        engine = make_engine(model)
        engine.prefill("a", tokens)
        engine.release("a")
        alloc = engine.cache.dense_cache.allocator
        assert alloc.num_allocated == engine.prefix_cache.held_pages == 3
        # A fresh request still hits the retained prefix.
        engine.prefill("b", tokens)
        assert engine.stats.prefix_hit_tokens == 32
        engine.release("b")
        engine.prefix_cache.clear()
        assert alloc.num_allocated == 0

    def test_pressure_evicts_index_pages(self, model):
        """A full pool drains the prefix index before failing a prefill."""
        engine = make_engine(model, num_pages=12)
        vocab = model.config.vocab_size
        tokens_a = (np.arange(64) * 7) % vocab
        engine.prefill("a", tokens_a)  # 4 pages, all indexed
        engine.release("a")
        assert engine.prefix_cache.held_pages == 4
        # 8 free pages + 4 index-held; a 10-page prompt forces eviction of
        # the two least-recently-used leaves of "a"'s chain.
        engine.prefill("b", (np.arange(160) * 11 + 1) % vocab)
        assert engine.context_length("b") == 160
        assert engine.prefix_cache.evicted_pages == 2
        assert len(engine.prefix_cache.match(tokens_a)) == 2

    def test_fork_decodes_byte_identically(self, model):
        """A forked child decodes exactly like a fresh replayed sequence."""
        tokens = (np.arange(56) * 5) % model.config.vocab_size
        engine = make_engine(model, prefix_cache_enabled=False, kv_bits=8)
        engine.prefill("parent", tokens)
        replay = [3, 9, 1]
        for t in replay:
            engine.decode("parent", t)
        engine.fork_sequence("parent", "child")

        solo = make_engine(model, prefix_cache_enabled=False, kv_bits=8)
        solo.prefill("ref", tokens)
        for t in replay:
            solo.decode("ref", t)

        for t in [7, 2, 4, 8]:
            got = engine.decode("child", t)
            ref = solo.decode("ref", t)
            np.testing.assert_array_equal(got, ref)

        # The parent was never disturbed by the child's divergent appends.
        parent_ref = make_engine(model, prefix_cache_enabled=False, kv_bits=8)
        parent_ref.prefill("ref", tokens)
        for t in replay:
            parent_ref.decode("ref", t)
        np.testing.assert_array_equal(
            engine.decode("parent", 12), parent_ref.decode("ref", 12)
        )


class TestDecodeBatchAtomicity:
    def test_oom_raises_before_any_mutation(self, model):
        """A full pool surfaces as DecodeOutOfPagesError with *no* cache writes.

        Regression: ``cache.append`` inside the per-layer loop used to raise
        mid-batch and mid-layer, leaving earlier sequences with an extra
        appended token and later ones without.
        """
        engine = make_engine(model, num_pages=8, prefix_cache_enabled=False)
        vocab = model.config.vocab_size
        engine.prefill("a", (np.arange(48) * 7) % vocab)   # 3 pages, tail full
        engine.prefill("b", (np.arange(80) * 11) % vocab)  # 5 pages, tail full
        alloc = engine.cache.dense_cache.allocator
        assert alloc.num_free == 0
        len_a = engine.context_length("a")
        len_b = engine.context_length("b")

        with pytest.raises(DecodeOutOfPagesError) as excinfo:
            engine.decode_batch(["a", "b"], [1, 2])
        assert set(excinfo.value.failed_seq_ids) == {"a", "b"}
        # No sequence advanced; every layer's token count is consistent.
        assert engine.context_length("a") == len_a
        assert engine.context_length("b") == len_b
        for seq in ("a", "b"):
            for layer in range(model.config.n_layers):
                assert engine.cache.dense_cache.seq_len(seq, layer) == engine.context_length(seq)

        # Releasing one victim lets the survivor decode cleanly.
        engine.release("b")
        logits = engine.decode_batch(["a"], [1])
        assert logits.shape == (1, vocab)
        assert engine.context_length("a") == len_a + 1

    def test_partial_failure_names_only_oom_sequences(self, model):
        engine = make_engine(model, num_pages=7, prefix_cache_enabled=False)
        vocab = model.config.vocab_size
        engine.prefill("a", (np.arange(48) * 7) % vocab)   # 3 pages
        engine.prefill("b", (np.arange(63) * 11) % vocab)  # 4 pages, tail has room
        while engine.context_length("a") % 16 != 0:
            engine.decode("a", 1)
        # "a" needs a fresh page (none free); "b" still has tail slots.
        with pytest.raises(DecodeOutOfPagesError) as excinfo:
            engine.decode_batch(["a", "b"], [1, 2])
        assert excinfo.value.failed_seq_ids == ("a",)
        # "b" alone still decodes (no page needed).
        engine.decode_batch(["b"], [2])
        assert engine.context_length("b") == 64
