"""Tests for streaming-head static sparsity helpers."""

import numpy as np
import pytest

from repro.attention.masks import block_causal_mask
from repro.core.streaming import (
    StreamingConfig,
    build_prefill_block_masks,
    expand_kv_head_mask,
)


class TestStreamingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingConfig(sink_tokens=-1)
        with pytest.raises(ValueError):
            StreamingConfig(local_tokens=0)

    def test_block_geometry(self):
        cfg = StreamingConfig(sink_tokens=64, local_tokens=256)
        assert cfg.sink_blocks(64) == 1
        assert cfg.sink_blocks(16) == 4
        assert cfg.local_blocks(64) == 4
        assert StreamingConfig(sink_tokens=0).sink_blocks(64) == 0

    def test_tokens_attended_constant(self):
        cfg = StreamingConfig(sink_tokens=4, local_tokens=8)
        assert cfg.tokens_attended(6) == 6
        assert cfg.tokens_attended(100) == 12
        assert cfg.tokens_attended(100_000) == 12

    def test_token_mask_shape(self):
        mask = StreamingConfig(sink_tokens=2, local_tokens=2).token_mask(4, 8)
        assert mask.shape == (4, 8)


class TestExpandKVHeadMask:
    def test_expansion(self):
        mask = expand_kv_head_mask(np.array([True, False]), gqa_group_size=3)
        np.testing.assert_array_equal(mask, [True, True, True, False, False, False])

    def test_mha_identity(self):
        mask = np.array([True, False, True])
        np.testing.assert_array_equal(expand_kv_head_mask(mask, 1), mask)

    def test_validation(self):
        with pytest.raises(ValueError):
            expand_kv_head_mask(np.ones((2, 2), dtype=bool), 2)
        with pytest.raises(ValueError):
            expand_kv_head_mask(np.ones(2, dtype=bool), 0)


class TestBuildPrefillBlockMasks:
    def test_shapes_and_patterns(self):
        streaming = StreamingConfig(sink_tokens=16, local_tokens=32)
        head_mask = np.array([False, True, True, False])
        masks = build_prefill_block_masks(128, 128, 16, 16, head_mask, streaming)
        assert masks.shape == (4, 8, 8)
        causal = block_causal_mask(128, 128, 16, 16)
        np.testing.assert_array_equal(masks[0], causal)
        np.testing.assert_array_equal(masks[3], causal)
        # Streaming heads must skip some causal blocks at this length.
        assert masks[1].sum() < causal.sum()
        np.testing.assert_array_equal(masks[1], masks[2])

    def test_streaming_subset_of_causal(self):
        streaming = StreamingConfig(sink_tokens=16, local_tokens=16)
        masks = build_prefill_block_masks(
            256, 256, 32, 32, np.array([True]), streaming
        )
        causal = block_causal_mask(256, 256, 32, 32)
        assert np.all(masks[0] <= causal)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_prefill_block_masks(
                64, 64, 16, 16, np.ones((2, 2), dtype=bool), StreamingConfig()
            )
