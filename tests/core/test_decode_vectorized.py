"""Byte-identity matrix for the vectorized decode path.

The vectorized ``decode_batch`` groups sequences by shape signature and runs
stacked kernels; its contract is that every logits row is **byte-identical**
to decoding the same sequence alone through ``decode`` — across head mixes,
page-boundary crossings, copy-on-write forks, and KV hand-off round trips.
Each test drives two engines built from the same seed (one batched, one
sequential) through identical state operations and compares raw bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LServeConfig
from repro.core.engine import LServeEngine
from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer

VOCAB = 512
PAGE = 16


def make_engine(streaming_kv_heads: list[bool], seed: int = 7) -> LServeEngine:
    cfg = tiny_model_config(n_layers=2, n_heads=8, n_kv_heads=4, head_dim=16)
    model = TinyTransformer(cfg, seed=seed)
    config = LServeConfig(
        token_budget=128,
        physical_page_size=PAGE,
        logical_page_size=8,
        sink_tokens=16,
        local_tokens=32,
        kv_bits=8,
        q_block_size=16,
    )
    return LServeEngine(
        model,
        config,
        streaming_kv_heads=np.array(streaming_kv_heads),
        num_cache_pages=1024,
    )


def assert_batched_matches_solo(
    batched_engine: LServeEngine,
    solo_engine: LServeEngine,
    seq_ids: list[object],
    steps: int,
    rng: np.random.Generator,
) -> None:
    """Decode the same token stream both ways and compare raw logits bytes."""
    tokens = rng.integers(0, VOCAB, size=(len(seq_ids), steps))
    batched = [
        batched_engine.decode_batch(seq_ids, tokens[:, t].tolist())
        for t in range(steps)
    ]
    for i, seq_id in enumerate(seq_ids):
        for t in range(steps):
            solo = solo_engine.decode(seq_id, int(tokens[i, t]))
            assert batched[t][i].tobytes() == solo.tobytes(), (
                f"decode_batch diverged from decode at step {t} for {seq_id!r}"
            )


def prefill_both(
    engines: tuple[LServeEngine, LServeEngine],
    seq_ids: list[object],
    lengths: list[int],
    rng: np.random.Generator,
) -> None:
    for seq_id, length in zip(seq_ids, lengths):
        prompt = rng.integers(0, VOCAB, size=length)
        for engine in engines:
            engine.prefill(seq_id, prompt)


@pytest.mark.parametrize(
    "streaming",
    [
        pytest.param([False, False, False, False], id="all-dense"),
        pytest.param([True, True, True, True], id="all-streaming"),
        pytest.param([False, True, False, True], id="mixed"),
    ],
)
def test_head_mix_matrix(streaming: list[bool]) -> None:
    """Batched decode is byte-identical across dense/streaming head mixes.

    Prompt lengths span both sparsity regimes: short contexts take the full
    dense read, long ones (past the token budget) go through dynamic page
    selection — so one batch mixes shape-signature groups.
    """
    rng = np.random.default_rng(11)
    engines = (make_engine(streaming), make_engine(streaming))
    seq_ids = [f"s{i}" for i in range(5)]
    lengths = [24, 40, 61, 150, 193]
    prefill_both(engines, seq_ids, lengths, rng)
    assert_batched_matches_solo(engines[0], engines[1], seq_ids, 8, rng)


def test_page_boundary_crossing() -> None:
    """Identity holds while decode steps straddle physical page boundaries.

    Contexts start just below, exactly at, and just above a page multiple,
    so within the decoded window every sequence opens a fresh physical page
    at a different step (changing its selection signature mid-run).
    """
    rng = np.random.default_rng(13)
    engines = (make_engine([False, True, False, True]), make_engine([False, True, False, True]))
    seq_ids = [f"p{i}" for i in range(4)]
    lengths = [PAGE - 2, PAGE, 2 * PAGE - 1, 2 * PAGE + 1]
    prefill_both(engines, seq_ids, lengths, rng)
    assert_batched_matches_solo(engines[0], engines[1], seq_ids, PAGE + 3, rng)


def test_cow_forked_sequences() -> None:
    """Forked children decode byte-identically inside a mixed batch.

    Both engines fork the same parents; the batch then interleaves parents
    and children so divergent tokens trigger the copy-on-write tail copy on
    the shared pages mid-batch.
    """
    rng = np.random.default_rng(17)
    engines = (make_engine([False, True, False, True]), make_engine([False, True, False, True]))
    parents = ["a", "b"]
    prefill_both(engines, parents, [45, 170], rng)
    for engine in engines:
        engine.fork_sequence("a", "a-fork")
        engine.fork_sequence("b", "b-fork")
    seq_ids = ["a", "a-fork", "b", "b-fork"]
    assert_batched_matches_solo(engines[0], engines[1], seq_ids, 6, rng)


def test_post_restore_sequences() -> None:
    """Sequences restored from a KV hand-off decode identically in a batch.

    One sequence on each engine round-trips through ``handoff_out`` /
    ``handoff_in`` (the migration/cold-tier snapshot path) before being
    batched with a never-migrated neighbour.
    """
    rng = np.random.default_rng(19)
    engines = (make_engine([False, True, False, True]), make_engine([False, True, False, True]))
    seq_ids = ["m", "n", "o"]
    prefill_both(engines, seq_ids, [30, 155, 80], rng)
    for engine in engines:
        export = engine.handoff_out("n")
        engine.handoff_in("n", export)
    assert_batched_matches_solo(engines[0], engines[1], seq_ids, 6, rng)
