"""Tests for hierarchical paging and the Eq. 2 importance score."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical_paging import (
    HierarchicalPagingConfig,
    logical_page_scores,
    physical_page_scores,
    select_top_pages,
)
from repro.kvcache.kv_stats import compute_page_key_stats


class TestConfig:
    def test_defaults(self):
        cfg = HierarchicalPagingConfig()
        assert cfg.logical_pages_per_physical == 4
        assert cfg.budget_pages == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalPagingConfig(physical_page_size=48, logical_page_size=32)
        with pytest.raises(ValueError):
            HierarchicalPagingConfig(token_budget=0)

    def test_budget_at_least_one_page(self):
        assert HierarchicalPagingConfig(
            physical_page_size=64, logical_page_size=16, token_budget=10
        ).budget_pages == 1


class TestLogicalPageScores:
    def test_upper_bounds_true_dot_products(self, rng):
        """Eq. 2 is an upper bound on q . k for every key in the page."""
        keys = rng.normal(size=(32, 2, 8))
        stats = compute_page_key_stats(keys, logical_page_size=8)
        kmin = np.stack([s.kmin for s in stats])
        kmax = np.stack([s.kmax for s in stats])
        q = rng.normal(size=(2, 8))
        scores = logical_page_scores(q, kmin, kmax, gqa_group_size=1)
        for p in range(4):
            for h in range(2):
                true_dots = keys[p * 8 : (p + 1) * 8, h] @ q[h]
                assert scores[h, p] >= true_dots.max() - 1e-9

    def test_exact_for_single_token_pages(self, rng):
        keys = rng.normal(size=(5, 1, 4))
        stats = compute_page_key_stats(keys, logical_page_size=1)
        kmin = np.stack([s.kmin for s in stats])
        kmax = np.stack([s.kmax for s in stats])
        q = rng.normal(size=(1, 4))
        scores = logical_page_scores(q, kmin, kmax)
        np.testing.assert_allclose(scores[0], keys[:, 0] @ q[0], rtol=1e-10)

    def test_gqa_group_max(self, rng):
        keys = rng.normal(size=(8, 1, 4))
        stats = compute_page_key_stats(keys, logical_page_size=4)
        kmin = np.stack([s.kmin for s in stats])
        kmax = np.stack([s.kmax for s in stats])
        q = rng.normal(size=(2, 4))  # two query heads sharing one KV head
        grouped = logical_page_scores(q, kmin, kmax, gqa_group_size=2)
        h0 = logical_page_scores(q[:1], kmin, kmax)
        h1 = logical_page_scores(q[1:], kmin, kmax)
        np.testing.assert_allclose(grouped, np.maximum(h0, h1))

    def test_empty_pages(self, rng):
        q = rng.normal(size=(2, 4))
        scores = logical_page_scores(q, np.zeros((0, 2, 4)), np.zeros((0, 2, 4)))
        assert scores.shape == (2, 0)

    def test_validation(self, rng):
        q = rng.normal(size=(2, 4))
        stats = np.zeros((3, 2, 4))
        with pytest.raises(ValueError):
            logical_page_scores(q[0], stats, stats)
        with pytest.raises(ValueError):
            logical_page_scores(q, stats, np.zeros((3, 2, 5)))
        with pytest.raises(ValueError):
            logical_page_scores(q, stats, stats, gqa_group_size=3)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_upper_bound(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(16, 1, 6))
        stats = compute_page_key_stats(keys, logical_page_size=4)
        kmin = np.stack([s.kmin for s in stats])
        kmax = np.stack([s.kmax for s in stats])
        q = rng.normal(size=(1, 6))
        scores = logical_page_scores(q, kmin, kmax)
        for p in range(4):
            assert scores[0, p] >= (keys[p * 4 : (p + 1) * 4, 0] @ q[0]).max() - 1e-9


class TestPhysicalPageScores:
    def test_max_reduction(self):
        logical = np.array([[1.0, 5.0, 2.0, 3.0, 7.0, 0.0]])
        phys = physical_page_scores(logical, logical_pages_per_physical=2)
        np.testing.assert_allclose(phys, [[5.0, 3.0, 7.0]])

    def test_partial_trailing_physical_page(self):
        logical = np.array([[1.0, 2.0, 9.0]])
        phys = physical_page_scores(logical, 2)
        np.testing.assert_allclose(phys, [[2.0, 9.0]])

    def test_identity_when_ratio_one(self, rng):
        logical = rng.normal(size=(3, 7))
        np.testing.assert_allclose(physical_page_scores(logical, 1), logical)

    def test_empty(self):
        assert physical_page_scores(np.zeros((2, 0)), 4).shape == (2, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            physical_page_scores(np.zeros(3), 2)
        with pytest.raises(ValueError):
            physical_page_scores(np.zeros((1, 4)), 0)


class TestSelectTopPages:
    def test_selects_highest_scores(self):
        scores = np.array([[0.0, 10.0, 1.0, 9.0, 2.0, 3.0]])
        sel = select_top_pages(scores, budget_pages=4, sink_pages=1, local_pages=1)
        np.testing.assert_array_equal(sel[0], [0, 1, 3, 5])

    def test_budget_covers_everything(self):
        scores = np.array([[1.0, 2.0, 3.0]])
        sel = select_top_pages(scores, budget_pages=8)
        np.testing.assert_array_equal(sel[0], [0, 1, 2])

    def test_sink_and_local_always_kept(self, rng):
        scores = rng.normal(size=(2, 20))
        scores[:, 0] = -100.0
        scores[:, -1] = -100.0
        sel = select_top_pages(scores, budget_pages=5, sink_pages=1, local_pages=1)
        for per_head in sel:
            assert 0 in per_head and 19 in per_head
            assert len(per_head) == 5

    def test_budget_respected_per_head(self, rng):
        scores = rng.normal(size=(3, 50))
        sel = select_top_pages(scores, budget_pages=7, sink_pages=2, local_pages=2)
        assert all(len(p) == 7 for p in sel)

    def test_tiny_budget_keeps_newest_page(self, rng):
        scores = rng.normal(size=(1, 10))
        sel = select_top_pages(scores, budget_pages=2, sink_pages=2, local_pages=2)
        assert len(sel[0]) == 2
        assert 9 in sel[0]

    def test_sorted_output(self, rng):
        scores = rng.normal(size=(1, 30))
        sel = select_top_pages(scores, budget_pages=10)[0]
        assert np.all(np.diff(sel) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            select_top_pages(np.zeros(4), 2)
        with pytest.raises(ValueError):
            select_top_pages(np.zeros((1, 4)), 0)
        with pytest.raises(ValueError):
            select_top_pages(np.zeros((1, 4)), 2, sink_pages=-1)

    @given(seed=st.integers(0, 500), budget=st.integers(1, 12), n_pages=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_property_budget_and_validity(self, seed, budget, n_pages):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(2, n_pages))
        sel = select_top_pages(scores, budget_pages=budget, sink_pages=1, local_pages=1)
        for per_head in sel:
            assert len(per_head) <= max(budget, n_pages if n_pages <= budget else budget)
            assert len(set(per_head.tolist())) == len(per_head)
            if n_pages > 0:
                assert per_head.min() >= 0 and per_head.max() < n_pages
