"""Tests for the iterator-based block-sparse layout abstraction."""

import numpy as np
import pytest

from repro.attention.masks import block_causal_mask, block_streaming_mask
from repro.core.block_sparse import (
    BlockIterator,
    BlockSparseLayout,
    dense_iterator,
    selected_pages_iterator,
    streaming_iterator,
)


class TestBlockIterator:
    def test_basic(self):
        it = BlockIterator((0, 2, 5))
        assert len(it) == 3
        assert list(it) == [0, 2, 5]
        assert it[1] == 2
        assert it.contains(5) and not it.contains(3)

    def test_rejects_unsorted_or_duplicate(self):
        with pytest.raises(ValueError):
            BlockIterator((2, 1))
        with pytest.raises(ValueError):
            BlockIterator((1, 1))
        with pytest.raises(ValueError):
            BlockIterator((-1, 0))

    def test_offsets(self):
        it = BlockIterator((0, 1, 4))
        np.testing.assert_array_equal(it.offsets(), [1, 1, 3])
        assert BlockIterator(()).offsets().size == 0


class TestIteratorFactories:
    def test_dense(self):
        assert list(dense_iterator(3)) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            dense_iterator(-1)

    def test_streaming_skips_middle(self):
        it = streaming_iterator(diag_block=9, sink_blocks=1, local_blocks=2)
        assert list(it) == [0, 8, 9]

    def test_streaming_short_context_is_dense(self):
        it = streaming_iterator(diag_block=2, sink_blocks=2, local_blocks=2)
        assert list(it) == [0, 1, 2]

    def test_streaming_constant_length(self):
        lengths = {len(streaming_iterator(d, 1, 2)) for d in range(10, 100)}
        assert lengths == {3}

    def test_streaming_invalid(self):
        with pytest.raises(ValueError):
            streaming_iterator(5, -1, 2)

    def test_selected_pages_includes_diagonal(self):
        it = selected_pages_iterator([0, 3], diag_block=7)
        assert list(it) == [0, 3, 7]

    def test_selected_pages_rejects_future(self):
        with pytest.raises(ValueError):
            selected_pages_iterator([8], diag_block=7)


class TestBlockSparseLayout:
    def test_roundtrip_with_block_mask(self):
        mask = block_streaming_mask(64, 64, 16, 16, 1, 2)
        layout = BlockSparseLayout.from_block_mask(mask)
        np.testing.assert_array_equal(layout.to_block_mask()[0], mask)

    def test_per_head_masks(self):
        causal = block_causal_mask(64, 64, 16, 16)
        stream = block_streaming_mask(64, 64, 16, 16, 1, 1)
        layout = BlockSparseLayout.from_block_mask(np.stack([causal, stream]))
        assert layout.n_heads == 2
        assert layout.iterator(0, 3).blocks == tuple(range(4))
        assert layout.iterator(1, 3).blocks == (0, 3)

    def test_visited_blocks_and_sparsity(self):
        causal = block_causal_mask(64, 64, 16, 16)
        layout = BlockSparseLayout.from_block_mask(causal)
        assert layout.visited_blocks() == int(causal.sum())
        assert layout.sparsity(64, 64, 16, 16) == 0.0
        assert layout.theoretical_speedup(64, 64, 16, 16) == pytest.approx(1.0)

    def test_sparsity_streaming(self):
        stream = block_streaming_mask(128, 128, 16, 16, 1, 2)
        layout = BlockSparseLayout.from_block_mask(stream)
        r = layout.sparsity(128, 128, 16, 16)
        assert 0.0 < r < 1.0
        assert layout.theoretical_speedup(128, 128, 16, 16) == pytest.approx(1.0 / (1.0 - r))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BlockSparseLayout([], n_kv_blocks=4)
        with pytest.raises(ValueError):
            BlockSparseLayout.from_block_mask(np.ones((2, 2, 2, 2), dtype=bool))
        it = [[BlockIterator((0,))], [BlockIterator((0,)), BlockIterator((0, 1))]]
        with pytest.raises(ValueError):
            BlockSparseLayout(it, n_kv_blocks=2)

    def test_paper_example_sparsity(self):
        """Fig. 4(b): 10 of 21 causal blocks kept => 2.1x theoretical speedup."""
        causal = block_causal_mask(96, 96, 16, 16)  # 6x6 lower triangle = 21 blocks
        keep = causal.copy()
        kept = 0
        for i in range(6):
            for j in range(i + 1):
                if kept >= 10:
                    keep[i, j] = False
                else:
                    kept += 1
        # Re-keep diagonal blocks (the most recent block is always computed).
        for i in range(6):
            keep[i, i] = True
        layout = BlockSparseLayout.from_block_mask(keep)
        visited = layout.visited_blocks()
        speedup = 21 / visited
        assert speedup >= 1.5
