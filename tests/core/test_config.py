"""Tests for LServeConfig."""

import pytest

from repro.core.config import LServeConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = LServeConfig()
        assert cfg.streaming_head_ratio == 0.5
        assert cfg.token_budget == 4096
        assert cfg.logical_pages_per_physical == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(streaming_head_ratio=1.5),
            dict(streaming_head_ratio=-0.1),
            dict(sink_tokens=-1),
            dict(local_tokens=0),
            dict(token_budget=0),
            dict(physical_page_size=0),
            dict(physical_page_size=48, logical_page_size=32),
            dict(reuse_interval=0),
            dict(kv_bits=3),
            dict(q_block_size=0),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            LServeConfig(**kwargs)


class TestDerivedGeometry:
    def test_sink_and_local_pages(self):
        cfg = LServeConfig(sink_tokens=64, local_tokens=256, physical_page_size=64)
        assert cfg.sink_pages == 1
        assert cfg.local_pages == 4

    def test_sink_pages_at_least_one(self):
        cfg = LServeConfig(sink_tokens=0)
        assert cfg.sink_pages == 1

    def test_budget_pages(self):
        assert LServeConfig(token_budget=4096, physical_page_size=64).budget_pages == 64
        assert LServeConfig(token_budget=10, physical_page_size=16, logical_page_size=16, sink_tokens=8, local_tokens=8).budget_pages == 1

    def test_num_streaming_heads(self):
        cfg = LServeConfig(streaming_head_ratio=0.5)
        assert cfg.num_streaming_heads(32) == 16
        assert cfg.num_streaming_heads(8) == 4
        assert LServeConfig(streaming_head_ratio=0.0).num_streaming_heads(8) == 0

    def test_dynamic_sparsity_activation(self):
        cfg = LServeConfig(token_budget=4096)
        assert not cfg.dynamic_sparsity_active(4096)
        assert cfg.dynamic_sparsity_active(4097)
        off = LServeConfig(dynamic_sparsity_enabled=False)
        assert not off.dynamic_sparsity_active(100_000)


class TestFactories:
    def test_dense_baseline(self):
        cfg = LServeConfig.dense_baseline()
        assert cfg.streaming_head_ratio == 0.0
        assert not cfg.dynamic_sparsity_enabled
        assert cfg.kv_bits == 16

    def test_static_only(self):
        cfg = LServeConfig.static_only()
        assert cfg.streaming_head_ratio == 0.5
        assert not cfg.dynamic_sparsity_enabled

    def test_dynamic_only(self):
        cfg = LServeConfig.dynamic_only()
        assert cfg.streaming_head_ratio == 0.0
        assert cfg.dynamic_sparsity_enabled

    def test_with_overrides_validates(self):
        cfg = LServeConfig()
        assert cfg.with_overrides(token_budget=8192).token_budget == 8192
        with pytest.raises(ValueError):
            cfg.with_overrides(token_budget=-1)
