"""Tests for DuoAttention-style head classification."""

import numpy as np
import pytest

from repro.core.head_classifier import (
    classify_heads,
    collect_head_gates,
    optimize_gate_values,
)
from repro.core.streaming import StreamingConfig
from repro.model.configs import tiny_model_config
from repro.model.transformer import TinyTransformer


class TestOptimizeGateValues:
    def test_identical_outputs_give_zero_gate(self, rng):
        out = rng.normal(size=(10, 4, 8))
        gates = optimize_gate_values(out, out.copy())
        np.testing.assert_array_equal(gates, np.zeros(4))

    def test_large_deviation_gives_high_gate(self, rng):
        full = rng.normal(size=(10, 2, 8))
        stream = full.copy()
        stream[:, 1] += 10.0  # head 1 is badly approximated by streaming
        gates = optimize_gate_values(full, stream)
        assert gates[1] > 0.9
        assert gates[1] > gates[0]

    def test_gates_in_unit_interval(self, rng):
        full = rng.normal(size=(6, 5, 4))
        stream = full + rng.normal(scale=0.5, size=full.shape)
        gates = optimize_gate_values(full, stream)
        assert np.all(gates >= 0.0) and np.all(gates <= 1.0)

    def test_penalty_monotone(self, rng):
        full = rng.normal(size=(6, 3, 4))
        stream = full + rng.normal(scale=0.3, size=full.shape)
        low = optimize_gate_values(full, stream, penalty=1e-3)
        high = optimize_gate_values(full, stream, penalty=1.0)
        assert np.all(high <= low + 1e-12)

    def test_validation(self, rng):
        full = rng.normal(size=(4, 2, 3))
        with pytest.raises(ValueError):
            optimize_gate_values(full, full[:, :1])
        with pytest.raises(ValueError):
            optimize_gate_values(full, full, penalty=0.0)


class TestClassifyHeads:
    def test_half_streaming(self):
        gates = np.array([[0.1, 0.9, 0.2, 0.8]])
        result = classify_heads(gates, sparsity=0.5)
        np.testing.assert_array_equal(result.streaming_mask, [[True, False, True, False]])
        assert result.streaming_ratio == pytest.approx(0.5)

    def test_zero_and_full_sparsity(self):
        gates = np.array([0.3, 0.6])
        assert not classify_heads(gates, 0.0).streaming_mask.any()
        assert classify_heads(gates, 1.0).streaming_mask.all()

    def test_tied_gates_still_hit_target(self):
        gates = np.full((2, 4), 0.5)
        result = classify_heads(gates, sparsity=0.5)
        assert result.streaming_mask.sum() == 4

    def test_lowest_gates_become_streaming(self):
        gates = np.array([0.05, 0.5, 0.95, 0.4])
        result = classify_heads(gates, sparsity=0.25)
        np.testing.assert_array_equal(result.streaming_mask, [[True, False, False, False]])

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            classify_heads(np.array([0.5]), sparsity=1.5)


class TestCollectHeadGates:
    def test_shape_and_range(self):
        cfg = tiny_model_config(n_layers=2, n_heads=4, n_kv_heads=2)
        model = TinyTransformer(cfg, seed=0)
        tokens = np.arange(32) % cfg.vocab_size
        gates = collect_head_gates(model, tokens, StreamingConfig(sink_tokens=2, local_tokens=4))
        assert gates.shape == (2, 2)
        assert np.all(gates >= 0.0) and np.all(gates <= 1.0)

    def test_backend_restored_after_calibration(self):
        cfg = tiny_model_config()
        model = TinyTransformer(cfg, seed=0)
        backend_before = model.attention_backend
        collect_head_gates(model, np.arange(16), StreamingConfig(sink_tokens=2, local_tokens=4))
        assert model.attention_backend is backend_before

    def test_large_window_yields_low_gates(self):
        """If the streaming window covers the whole context, every head is streaming-friendly."""
        cfg = tiny_model_config(n_layers=1)
        model = TinyTransformer(cfg, seed=1)
        tokens = np.arange(16)
        gates = collect_head_gates(
            model, tokens, StreamingConfig(sink_tokens=16, local_tokens=16)
        )
        np.testing.assert_allclose(gates, 0.0, atol=1e-9)
