"""Tests for fleet-wide metrics merging: ClusterMetrics, gauges, Prometheus."""

import math

import pytest

from repro.serving import (
    ClusterMetrics,
    LiveGauges,
    ServingMetrics,
    merge_live_gauges,
    render_cluster_prometheus,
)
from repro.serving.metrics import RequestRecord, render_gauge_value


def record(request_id, arrival, first, finish, generated=8, priority=0, preemptions=0):
    return RequestRecord(
        request_id=request_id,
        arrival_time_s=arrival,
        prefill_finish_time_s=first,
        finish_time_s=finish,
        prompt_tokens=128,
        generated_tokens=generated,
        priority=priority,
        preemptions=preemptions,
        scheduled_time_s=arrival,
    )


def gauges(**overrides):
    base = dict(
        clock_s=1.0,
        queue_depth=1,
        pending_arrivals=0,
        running=2,
        kv_tokens_in_use=100,
        kv_token_capacity=1_000,
        backend_kv_tokens=120,
        completed=3,
        aborted=0,
        preemptions=1,
        kv_tokens_demand=150,
    )
    base.update(overrides)
    return LiveGauges(**base)


class TestClusterMetricsMerge:
    def test_zero_request_replicas_report_nan_and_zero(self):
        metrics = ClusterMetrics(
            per_replica={"r0": ServingMetrics(), "r1": ServingMetrics()}
        )
        assert len(metrics) == 0
        assert math.isnan(metrics.mean_ttft_s())
        assert math.isnan(metrics.percentile_ttft_s(99))
        assert math.isnan(metrics.mean_queueing_delay_s())
        assert math.isnan(metrics.slo_attainment(1.0))
        assert metrics.percentile_tpot_s(50) == 0.0
        assert metrics.mean_time_per_output_token_s() == 0.0
        assert metrics.total_preemptions() == 0
        assert metrics.total_generated_tokens() == 0
        assert metrics.generation_throughput_tokens_s() == 0.0
        assert metrics.completed_per_replica() == {"r0": 0, "r1": 0}

    def test_single_replica_cluster_equals_plain_serving_metrics(self):
        plain = ServingMetrics()
        for i in range(5):
            plain.add(record(f"r{i}", arrival=i, first=i + 0.5 + 0.1 * i, finish=i + 3.0))
        cluster = ClusterMetrics(per_replica={"only": plain})
        assert len(cluster) == len(plain)
        assert cluster.mean_ttft_s() == plain.mean_ttft_s()
        assert cluster.percentile_ttft_s(99) == plain.percentile_ttft_s(99)
        assert cluster.percentile_tpot_s(50) == plain.percentile_tpot_s(50)
        assert cluster.mean_queueing_delay_s() == plain.mean_queueing_delay_s()
        assert cluster.slo_attainment(1.0, 0.5) == plain.slo_attainment(1.0, 0.5)
        assert (
            cluster.generation_throughput_tokens_s()
            == plain.generation_throughput_tokens_s()
        )

    def test_fleet_merges_across_replicas(self):
        left, right = ServingMetrics(), ServingMetrics()
        left.add(record("a", arrival=0.0, first=1.0, finish=2.0, preemptions=1))
        right.add(record("b", arrival=0.0, first=3.0, finish=4.0))
        right.add(record("c", arrival=1.0, first=2.0, finish=5.0, priority=1))
        metrics = ClusterMetrics(per_replica={"r0": left, "r1": right})
        assert len(metrics) == 3
        assert metrics.mean_ttft_s() == pytest.approx((1.0 + 3.0 + 1.0) / 3)
        assert metrics.total_preemptions() == 1
        assert metrics.completed_per_replica() == {"r0": 1, "r1": 2}
        # Priority filters pass through to the merged view.
        assert metrics.mean_ttft_s(priority=1) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="priority class 7"):
            metrics.mean_ttft_s(priority=7)

    def test_zero_request_replica_does_not_perturb_fleet_numbers(self):
        busy = ServingMetrics()
        busy.add(record("a", arrival=0.0, first=1.0, finish=2.0))
        alone = ClusterMetrics(per_replica={"busy": busy})
        padded = ClusterMetrics(per_replica={"busy": busy, "idle": ServingMetrics()})
        assert padded.mean_ttft_s() == alone.mean_ttft_s()
        assert padded.percentile_ttft_s(99) == alone.percentile_ttft_s(99)
        assert padded.slo_attainment(2.0) == alone.slo_attainment(2.0)


class TestMergeLiveGauges:
    def test_counts_sum_and_clock_is_max(self):
        merged = merge_live_gauges(
            [gauges(clock_s=1.0, completed=3), gauges(clock_s=9.0, completed=4)]
        )
        assert merged.clock_s == 9.0
        assert merged.completed == 7
        assert merged.queue_depth == 2
        assert merged.running == 4
        assert merged.kv_tokens_in_use == 200
        assert merged.kv_token_capacity == 2_000
        assert merged.kv_tokens_demand == 300
        assert merged.backend_kv_tokens == 240
        assert merged.preemptions == 2
        assert merged.in_flight == 6
        assert merged.kv_occupancy == pytest.approx(0.1)

    def test_backend_kv_unreported_stays_minus_one(self):
        merged = merge_live_gauges(
            [gauges(backend_kv_tokens=-1), gauges(backend_kv_tokens=-1)]
        )
        assert merged.backend_kv_tokens == -1
        # A mix sums only the replicas that report.
        mixed = merge_live_gauges(
            [gauges(backend_kv_tokens=-1), gauges(backend_kv_tokens=50)]
        )
        assert mixed.backend_kv_tokens == 50

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_live_gauges([])


class TestClusterPrometheus:
    def test_renders_aggregate_and_labelled_series(self):
        body = render_cluster_prometheus(
            {"r0": gauges(completed=3), "r1": gauges(completed=4, clock_s=2.5)},
            healthy={"r0": True, "r1": False},
        )
        assert "# TYPE repro_cluster_completed gauge" in body
        assert "repro_cluster_completed 7" in body
        assert "repro_cluster_replicas 2" in body
        assert "repro_cluster_healthy_replicas 1" in body
        assert 'repro_serving_completed{replica="r0"} 3' in body
        assert 'repro_serving_completed{replica="r1"} 4' in body
        assert 'repro_serving_healthy{replica="r0"} 1' in body
        assert 'repro_serving_healthy{replica="r1"} 0' in body
        assert 'repro_serving_clock_s{replica="r1"} 2.5' in body
        assert body.endswith("\n")
        # One TYPE line per metric name, even with two replicas.
        assert body.count("# TYPE repro_serving_completed gauge") == 1

    def test_large_token_gauges_render_exactly(self):
        body = render_cluster_prometheus(
            {"r0": gauges(kv_tokens_in_use=1_048_575, completed=10_000_001)}
        )
        assert 'repro_serving_kv_tokens_in_use{replica="r0"} 1048575' in body
        assert "repro_cluster_completed 10000001" in body

    def test_health_omitted_when_not_given(self):
        body = render_cluster_prometheus({"r0": gauges()})
        assert "repro_serving_healthy" not in body
        assert "repro_cluster_replicas" not in body

    def test_empty_rendering_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            render_cluster_prometheus({})

    def test_render_gauge_value_rules(self):
        assert render_gauge_value(3) == "3"
        assert render_gauge_value(3.0) == "3"
        assert render_gauge_value(1_048_577) == "1048577"
        assert render_gauge_value(0.125) == "0.125"
