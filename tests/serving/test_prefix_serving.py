"""Serving-level prefix sharing: unique-KV accounting, byte-identity, OOM preemption.

The acceptance-critical properties:

* requests sharing a prompt prefix through the real ``LServeBackend`` produce
  **byte-identical** outputs to an unshared run — including through a
  preemption round-trip (preempt -> resume re-attaches the cached prefix);
* the scheduler's watermark accounting charges each request only for its
  *unique* KV tokens;
* a backend-reported decode OOM (``DecodeOutOfPagesError``) preempts exactly
  the failed sequences and the run still completes with identical outputs.
"""

import numpy as np
import pytest

from repro.baselines.systems import lserve_policy
from repro.core.config import LServeConfig
from repro.core.engine import LServeEngine
from repro.gpu.device import A100_80G
from repro.gpu.simulator import LatencySimulator
from repro.model.configs import LLAMA_3_8B, tiny_model_config
from repro.model.transformer import TinyTransformer
from repro.serving import (
    LServeBackend,
    Request,
    SchedulerConfig,
    ServingEngine,
    SimulatedBackend,
    WorkloadGenerator,
    scenario,
)

STREAMING_MASK = np.array([False, True])


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(tiny_model_config(), seed=11)


def make_lserve_engine(model, prefix_cache=True, num_pages=512) -> LServeEngine:
    """Aligned, 16-bit config so prefix attach is byte-exact (see engine docs)."""
    return LServeEngine(
        model,
        LServeConfig(
            streaming_head_ratio=0.5,
            dynamic_sparsity_enabled=True,
            kv_bits=16,
            physical_page_size=16,
            logical_page_size=4,
            sink_tokens=16,
            local_tokens=32,
            q_block_size=16,
            token_budget=64,
            reuse_interval=4,
            prefix_cache_enabled=prefix_cache,
        ),
        streaming_kv_heads=STREAMING_MASK,
        num_cache_pages=num_pages,
    )


def shared_trace(model, n_groups=2, per_group=3, prefix_len=48, tail_len=16, gen=8):
    """Requests in ``n_groups`` groups; each group shares a ``prefix_len`` prefix."""
    vocab = model.config.vocab_size
    requests = []
    arrival = 0.0
    for g in range(n_groups):
        prefix = (np.arange(prefix_len) * (7 + 2 * g)) % vocab
        for i in range(per_group):
            tail = (np.arange(tail_len) * (11 + 3 * i) + g) % vocab
            requests.append(
                Request.from_prompt(
                    f"g{g}-r{i}",
                    np.concatenate([prefix, tail]),
                    max_new_tokens=gen,
                    arrival_time_s=arrival,
                )
            )
            arrival += 0.001
    return requests


def run_trace(model, requests, prefix_cache=True, num_pages=512, **sched):
    engine = make_lserve_engine(model, prefix_cache=prefix_cache, num_pages=num_pages)
    backend = LServeBackend(engine)
    sched.setdefault("max_batch_size", 4)
    sched.setdefault("kv_token_capacity", 16_384)
    serving = ServingEngine(backend, SchedulerConfig(**sched))
    metrics = serving.run(requests)
    outputs = {r.request_id: list(serving.handle(r.request_id).output_tokens) for r in requests}
    return serving, backend, metrics, outputs


class TestServingByteIdentity:
    def test_shared_outputs_match_unshared(self, model):
        requests = shared_trace(model)
        _, cached_backend, _, cached_out = run_trace(model, requests, prefix_cache=True)
        _, plain_backend, _, plain_out = run_trace(model, requests, prefix_cache=False)
        assert cached_out == plain_out
        assert cached_backend.work.prefix_hit_tokens > 0
        # Computed prefill work shrank by exactly the attached tokens.
        assert (
            cached_backend.work.prefill_tokens + cached_backend.work.prefix_hit_tokens
            == plain_backend.work.prefill_tokens
        )

    def test_byte_identity_through_preemption_round_trip(self, model):
        """Sharing + KV pressure + preemption still yields identical tokens."""
        requests = shared_trace(model, n_groups=2, per_group=2, gen=40)
        constrained, _, metrics, out = run_trace(
            model,
            requests,
            prefix_cache=True,
            kv_token_capacity=150,
            kv_high_watermark=140,
            kv_low_watermark=60,
        )
        assert metrics.total_preemptions() > 0
        _, _, _, relaxed_out = run_trace(model, requests, prefix_cache=False)
        assert out == relaxed_out

    def test_resume_reattaches_prefix(self, model):
        """A preempted request's recompute hits its own registered prefix."""
        requests = shared_trace(model, n_groups=1, per_group=2, gen=40)
        serving, backend, metrics, _ = run_trace(
            model,
            requests,
            prefix_cache=True,
            kv_token_capacity=150,
            kv_high_watermark=140,
            kv_low_watermark=60,
        )
        assert metrics.total_preemptions() > 0
        resumed = [d for d in serving.decision_log if d.startswith("resume:")]
        assert resumed
        # Recompute prefill work was reduced by prefix hits (the resumed
        # request's own prompt was still registered in the index).
        assert serving.recompute_prefill_tokens < metrics.total_preemptions() * 64


class TestUniqueKVAccounting:
    def test_watermarks_charge_unique_tokens_only(self, model):
        requests = shared_trace(model, n_groups=1, per_group=3, gen=4)
        serving, _, _, _ = run_trace(model, requests, prefix_cache=True)
        states = [serving.handle(r.request_id).state for r in requests]
        # First of the group computed everything; the others attached 48 of 64.
        assert states[0].shared_prefix_tokens == 0
        assert all(s.shared_prefix_tokens == 48 for s in states[1:])

    def test_context_length_excludes_shared_prefix(self, model):
        from repro.serving.request import RequestState, RequestStatus

        request = Request("r", prompt_tokens=64, max_new_tokens=8)
        state = RequestState(request=request)
        state.status = RequestStatus.DECODING
        state.generated_tokens = 4
        assert state.context_length == 68
        state.shared_prefix_tokens = 48
        assert state.context_length == 20
        assert state.resume_kv_tokens == 68  # admission stays conservative


class TestDecodeOOMPreemption:
    def test_backend_oom_preempts_failed_sequences_and_completes(self, model):
        """With a page pool far smaller than the token watermarks suggest,
        decode OOM surfaces mid-run; the engine preempts the failed sequences
        and the run completes with byte-identical outputs."""
        requests = shared_trace(model, n_groups=2, per_group=2, gen=12)
        # 17 pages x 16 tokens = 272 KV tokens; the token watermark admits
        # all four 64-token prompts (16 pages), so the first decode iteration
        # exhausts the allocator — the page pool, not the token estimate, is
        # the binding constraint.
        serving, _, metrics, out = run_trace(
            model,
            requests,
            prefix_cache=False,
            num_pages=17,
            kv_token_capacity=272,
            kv_high_watermark=272,
        )
        assert metrics.total_preemptions() > 0
        assert any(d.startswith("preempt:") for d in serving.decision_log)
        _, _, _, relaxed_out = run_trace(model, requests, prefix_cache=False)
        assert out == relaxed_out


class TestSimulatedBackendPrefixModel:
    def make_serving(self, prefix_block=None, **sched):
        latency = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        backend = SimulatedBackend(latency, prefix_block_tokens=prefix_block)
        sched.setdefault("max_batch_size", 8)
        sched.setdefault("kv_token_capacity", 1 << 20)
        return backend, ServingEngine(backend, SchedulerConfig(**sched))

    def test_prefix_hits_reduce_billed_prefill(self, model):
        spec = scenario("shared_prefix")
        requests = WorkloadGenerator(spec, seed=0).generate(24, with_token_ids=True)
        backend, serving = self.make_serving(prefix_block=64)
        metrics = serving.run(requests)
        plain_backend, plain_serving = self.make_serving(prefix_block=None)
        plain_metrics = plain_serving.run(requests)
        assert backend.work.prefix_hit_tokens > 0
        assert backend.work.prefill_tokens < plain_backend.work.prefill_tokens
        assert metrics.mean_ttft_s() < plain_metrics.mean_ttft_s()
        # Scheduler decisions may differ (faster prefills) but all complete.
        assert len(metrics) == len(plain_metrics) == 24

    def test_identical_prompts_hit_all_but_last_block(self):
        latency = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        backend = SimulatedBackend(latency, prefix_block_tokens=16)
        tokens = np.arange(64)
        backend.prefill("a", tokens)
        result = backend.prefill("b", tokens)
        # 64 aligned tokens; one token must remain computed -> 48 hit.
        assert result.prefix_hit_tokens == 48
        assert backend.work.prefix_hit_tokens == 48

    def test_invalid_block_size(self):
        latency = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        with pytest.raises(ValueError):
            SimulatedBackend(latency, prefix_block_tokens=0)


class TestSharedPrefixWorkload:
    def test_prefixes_shared_within_class_pool(self):
        spec = scenario("shared_prefix")
        requests = WorkloadGenerator(spec, seed=3).generate(40, with_token_ids=True)
        tenant = [r for r in requests if r.prompt_tokens >= 1_600 and r.prompt_tokens < 6_400]
        prefixes = {r.prompt_token_ids[:1_536] for r in tenant}
        # 4 tenants -> at most 4 distinct prefixes across many requests.
        assert len(tenant) > 4
        assert len(prefixes) <= 4

    def test_trace_deterministic(self):
        spec = scenario("shared_prefix")
        a = WorkloadGenerator(spec, seed=9).generate(12, with_token_ids=True)
        b = WorkloadGenerator(spec, seed=9).generate(12, with_token_ids=True)
        assert [r.prompt_token_ids for r in a] == [r.prompt_token_ids for r in b]
        assert [r.arrival_time_s for r in a] == [r.arrival_time_s for r in b]

    def test_lengths_match_length_only_trace(self):
        spec = scenario("shared_prefix")
        with_ids = WorkloadGenerator(spec, seed=5).generate(12, with_token_ids=True)
        without = WorkloadGenerator(spec, seed=5).generate(12, with_token_ids=False)
        assert [r.prompt_tokens for r in with_ids] == [r.prompt_tokens for r in without]
        assert [r.arrival_time_s for r in with_ids] == [r.arrival_time_s for r in without]

    def test_request_ids_unaffected_by_prefix_pool(self):
        """Regression: the prefix token array must not leak into request ids."""
        spec = scenario("shared_prefix")
        requests = WorkloadGenerator(spec, seed=1).generate(6, with_token_ids=True)
        assert [r.request_id for r in requests] == [f"shared_prefix-{i}" for i in range(6)]
        custom = WorkloadGenerator(spec, seed=1).generate(
            3, with_token_ids=True, id_prefix="custom"
        )
        assert [r.request_id for r in custom] == ["custom-0", "custom-1", "custom-2"]

    def test_length_only_requests_rejected_with_prefix_model(self):
        """Placeholder prompts would spuriously match each other in the trie."""
        spec = scenario("shared_prefix")
        length_only = WorkloadGenerator(spec, seed=0).generate(4, with_token_ids=False)
        _, serving = self.make_serving_rejecting()
        with pytest.raises(ValueError, match="token content"):
            serving.submit(length_only[0])

    def make_serving_rejecting(self):
        latency = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        backend = SimulatedBackend(latency, prefix_block_tokens=64)
        return backend, ServingEngine(
            backend, SchedulerConfig(max_batch_size=4, kv_token_capacity=1 << 20)
        )

    def test_prefix_validation(self):
        from repro.serving.workload import RequestClass

        with pytest.raises(ValueError, match="shared_prefix_tokens"):
            RequestClass(name="bad", shared_prefix_tokens=100, prompt_min=64)
        with pytest.raises(ValueError, match="shared_prefix_pool"):
            RequestClass(name="bad", shared_prefix_tokens=8, prompt_min=64, shared_prefix_pool=0)
