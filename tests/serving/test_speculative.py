"""Speculative decoding tests: the differential byte-identity acceptance matrix.

The acceptance-critical property: a speculative run — any draft source, any
``speculation_k`` — produces **byte-identical** output token ids to a
non-speculative run of the same seeded trace, because verification replays
the drafts through the real model on a copy-on-write scratch fork and only
accepts tokens the request's own seeded sampler would have produced anyway.

The matrix crosses draft sources (n-gram prompt-lookup, cheap all-streaming
engine, prerecorded scripts) with sampling modes (greedy / temperature /
top-k), then composes speculation with every serving feature that touches KV
state: preemption round trips, shared-prefix attach, cold-tier
demote/restore, disaggregated prefill→decode hand-off, and cluster replica
failure with resubmission.  Every real-backend test ends with the shared
zero-leak audit — rejected draft KV must vanish through the ref-counted
release path, never linger.
"""

import asyncio

import numpy as np
import pytest

from repro.baselines.systems import lserve_policy
from repro.core.config import LServeConfig
from repro.core.engine import DecodeOutOfPagesError, LServeEngine
from repro.gpu.device import A100_80G
from repro.gpu.simulator import LatencySimulator
from repro.model.configs import LLAMA_3_8B, tiny_model_config
from repro.model.transformer import TinyTransformer
from repro.serving import (
    CheapEngineDraft,
    DisaggregatedCluster,
    DraftSource,
    KVTieringConfig,
    LServeBackend,
    ModeledDraft,
    NGramDraft,
    PrerecordedDraft,
    Request,
    SamplingParams,
    SchedulerConfig,
    ServingCluster,
    ServingEngine,
    SimulatedBackend,
)
from tests.conftest import assert_no_leaked_pages

STREAMING_MASK = np.array([False, True])


@pytest.fixture(scope="module")
def model():
    return TinyTransformer(tiny_model_config(), seed=11)


def lserve_config(**overrides) -> LServeConfig:
    base = dict(
        streaming_head_ratio=0.5,
        dynamic_sparsity_enabled=True,
        kv_bits=8,
        physical_page_size=16,
        logical_page_size=4,
        sink_tokens=16,
        local_tokens=32,
        q_block_size=16,
        token_budget=64,
        reuse_interval=4,
    )
    base.update(overrides)
    return LServeConfig(**base)


def make_engine(model, num_pages=512, **overrides) -> LServeEngine:
    return LServeEngine(
        model,
        lserve_config(**overrides),
        streaming_kv_heads=STREAMING_MASK,
        num_cache_pages=num_pages,
    )


def make_backend(model, **kwargs) -> LServeBackend:
    tiering = kwargs.pop("tiering", None)
    return LServeBackend(make_engine(model, **kwargs), tiering=tiering)


def prompt_ids(model, seed: int, n: int = 48) -> list[int]:
    return [int(t) for t in (np.arange(n) * (seed * 2 + 3)) % model.config.vocab_size]


def trace(model, sampling=None, n=3, max_new_tokens=24):
    sampling = sampling or SamplingParams()
    return [
        Request.from_prompt(
            f"r{i}",
            prompt_ids(model, i),
            max_new_tokens=max_new_tokens,
            sampling=sampling,
            arrival_time_s=0.001 * i,
        )
        for i in range(n)
    ]


def run_serving(backend, requests, draft=None, **sched):
    sched.setdefault("max_batch_size", 4)
    engine = ServingEngine(backend, SchedulerConfig(**sched), draft_source=draft)
    metrics = engine.run(list(requests))
    outputs = {r.request_id: list(engine.handle(r.request_id).output_tokens) for r in requests}
    return engine, metrics, outputs


def with_speculation(sampling: SamplingParams, k: int) -> SamplingParams:
    return SamplingParams(
        temperature=sampling.temperature,
        top_k=sampling.top_k,
        stop_token_ids=sampling.stop_token_ids,
        seed=sampling.seed,
        speculation_k=k,
    )


def reference_outputs(model, sampling, n=3, max_new_tokens=24):
    _, _, outputs = run_serving(make_backend(model), trace(model, sampling, n, max_new_tokens))
    return outputs


SAMPLING_MODES = [
    pytest.param(SamplingParams(), id="greedy"),
    pytest.param(SamplingParams(temperature=0.8, seed=3), id="temperature"),
    pytest.param(SamplingParams(temperature=0.7, top_k=20, seed=9), id="top_k"),
]


class TestDraftSources:
    def test_all_implementations_satisfy_protocol(self, model):
        assert isinstance(NGramDraft(), DraftSource)
        assert isinstance(ModeledDraft(), DraftSource)
        assert isinstance(PrerecordedDraft({}), DraftSource)
        assert isinstance(CheapEngineDraft(model, lserve_config()), DraftSource)

    def test_ngram_copies_most_recent_continuation(self):
        draft = NGramDraft(max_ngram=2, min_ngram=1)
        # history ...[7, 8] seen earlier followed by 9, 4.
        out = draft.propose("r", [1, 7, 8, 9, 4, 2], [7, 8], k=2)
        assert out == [9, 4]
        # No earlier occurrence of any suffix n-gram: no proposal.
        assert draft.propose("r", [1, 2, 3], [4], k=2) == []
        assert draft.propose("r", None, [], k=2) == []

    def test_ngram_respects_k(self):
        draft = NGramDraft(max_ngram=1)
        assert len(draft.propose("r", [5, 1, 2, 3, 4], [5], k=3)) == 3

    def test_ngram_validation(self):
        with pytest.raises(ValueError):
            NGramDraft(max_ngram=0)
        with pytest.raises(ValueError):
            NGramDraft(max_ngram=1, min_ngram=2)

    def test_modeled_draft_is_deterministic_and_rate_accurate(self):
        a = ModeledDraft(acceptance=0.7, seed=4)
        b = ModeledDraft(acceptance=0.7, seed=4)
        drafts = [a.propose("req", None, list(range(i)), k=4) for i in range(50)]
        # A fresh instance (a resubmitted replica) proposes identically.
        assert drafts == [b.propose("req", None, list(range(i)), k=4) for i in range(50)]
        hits = sum(d.count(0) for d in drafts)
        total = sum(len(d) for d in drafts)
        assert abs(hits / total - 0.7) < 0.1
        with pytest.raises(ValueError):
            ModeledDraft(acceptance=1.5)

    def test_prerecorded_slices_at_output_position(self):
        draft = PrerecordedDraft({"r": [10, 11, 12, 13]})
        assert draft.propose("r", None, [], k=2) == [10, 11]
        assert draft.propose("r", None, [10, 11, 12], k=4) == [13]
        assert draft.propose("other", None, [], k=4) == []

    def test_cheap_engine_draft_requires_prompt_ids(self, model):
        draft = CheapEngineDraft(model, lserve_config())
        with pytest.raises(ValueError):
            draft.propose("r", None, [1], k=2)
        assert draft.propose("r", [1, 2, 3], [], k=2) == []
        draft.release("r")  # idempotent on unknown requests


class TestCoreEngineSpeculative:
    """decode_speculative/commit_speculative against sequential decode_batch."""

    def reference(self, model, n=6):
        engine = make_engine(model)
        logits = np.asarray(engine.prefill("s", np.asarray(prompt_ids(model, 0))))
        tok = int(np.argmax(logits[-1] if logits.ndim == 2 else logits))
        tokens, rows = [tok], []
        for _ in range(n):
            row = np.asarray(engine.decode("s", tok)).ravel()
            rows.append(row.copy())
            tok = int(np.argmax(row))
            tokens.append(tok)
        return engine, tokens, rows

    def test_chunk_logits_rows_byte_identical(self, model):
        ref_engine, tokens, rows = self.reference(model)
        spec = make_engine(model)
        spec.prefill("s", np.asarray(prompt_ids(model, 0)))
        allocated_before = spec.cache.dense_cache.allocator.num_allocated
        logits, chunk = spec.decode_speculative("s", tokens[:6])
        assert len(chunk) == 6 and logits.shape[0] == 6
        for j in range(6):
            assert np.array_equal(logits[j], rows[j])
        # Rollback: the scratch fork is gone, not one page kept.
        assert spec.cache.dense_cache.allocator.num_allocated == allocated_before

        spec.commit_speculative("s", chunk, 6)
        assert spec.cache.seq_len("s") == ref_engine.cache.seq_len("s")
        # The committed KV continues byte-identically to the sequential run.
        a = np.asarray(ref_engine.decode("s", tokens[6]))
        b = np.asarray(spec.decode("s", tokens[6]))
        assert np.array_equal(a, b)

    def test_partial_commit_matches_sequential(self, model):
        _, tokens, rows = self.reference(model)
        spec = make_engine(model)
        spec.prefill("s", np.asarray(prompt_ids(model, 0)))
        _, chunk = spec.decode_speculative("s", tokens[:6])
        spec.commit_speculative("s", chunk, 3)
        # Context is now base+3; decoding the token ref row 3 consumed matches.
        row = np.asarray(spec.decode("s", tokens[3])).ravel()
        assert np.array_equal(row, rows[3])

    def test_commit_validation(self, model):
        spec = make_engine(model)
        spec.prefill("s", np.asarray(prompt_ids(model, 0)))
        _, chunk = spec.decode_speculative("s", [1, 2, 3])
        with pytest.raises(ValueError):
            spec.commit_speculative("s", chunk, 0)
        with pytest.raises(ValueError):
            spec.commit_speculative("s", chunk, 4)
        with pytest.raises(ValueError):
            spec.commit_speculative("other", chunk, 1)
        spec.decode("s", 1)  # advances the sequence: the chunk is now stale
        with pytest.raises(ValueError):
            spec.commit_speculative("s", chunk, 1)

    def test_decode_speculative_validation(self, model):
        spec = make_engine(model)
        spec.prefill("s", np.asarray(prompt_ids(model, 0)))
        with pytest.raises(ValueError):
            spec.decode_speculative("s", [])

    def test_release_after_speculation_leaks_nothing(self, model):
        spec = make_engine(model)
        spec.prefill("s", np.asarray(prompt_ids(model, 0)))
        _, chunk = spec.decode_speculative("s", [1, 2, 3, 4])
        spec.commit_speculative("s", chunk, 2)
        spec.release("s")
        assert_no_leaked_pages(spec.cache.dense_cache.allocator)


class TestDifferentialMatrix:
    """Speculative output == non-speculative output, across the whole matrix."""

    @pytest.mark.parametrize("sampling", SAMPLING_MODES)
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_ngram_draft_byte_identical(self, model, sampling, k):
        reference = reference_outputs(model, sampling)
        engine, metrics, outputs = run_serving(
            make_backend(model),
            trace(model, with_speculation(sampling, k)),
            draft=NGramDraft(max_ngram=3),
        )
        assert outputs == reference
        assert_no_leaked_pages(
            engine.backend.engine.cache.dense_cache.allocator, backend=engine.backend
        )

    @pytest.mark.parametrize("sampling", SAMPLING_MODES)
    def test_prerecorded_reference_script_accepts_everything(self, model, sampling):
        reference = reference_outputs(model, sampling)
        engine, metrics, outputs = run_serving(
            make_backend(model),
            trace(model, with_speculation(sampling, 4)),
            draft=PrerecordedDraft(reference),
        )
        assert outputs == reference
        assert engine.draft_tokens_proposed > 0
        assert engine.draft_tokens_accepted == engine.draft_tokens_proposed
        assert metrics.draft_acceptance_rate() == 1.0

    def test_corrupted_script_still_byte_identical(self, model):
        sampling = SamplingParams(temperature=0.8, seed=3)
        reference = reference_outputs(model, sampling)
        corrupted = {
            rid: [t if i % 3 else t + 1 for i, t in enumerate(toks)]
            for rid, toks in reference.items()
        }
        engine, metrics, outputs = run_serving(
            make_backend(model),
            trace(model, with_speculation(sampling, 4)),
            draft=PrerecordedDraft(corrupted),
        )
        assert outputs == reference
        assert 0.0 < metrics.draft_acceptance_rate() < 1.0

    def test_cheap_engine_draft_byte_identical(self, model):
        reference = reference_outputs(model, SamplingParams())
        draft = CheapEngineDraft(model, lserve_config())
        engine, _, outputs = run_serving(
            make_backend(model),
            trace(model, with_speculation(SamplingParams(), 4)),
            draft=draft,
        )
        assert outputs == reference
        assert_no_leaked_pages(
            engine.backend.engine.cache.dense_cache.allocator,
            backend=engine.backend,
            draft_source=draft,
        )

    def test_stop_token_inside_accepted_chunk(self, model):
        reference = reference_outputs(model, SamplingParams())
        ref = reference["r0"]
        stop = ref[5]
        stopped = reference_outputs(model, SamplingParams(stop_token_ids=(stop,)))
        sampling = SamplingParams(stop_token_ids=(stop,), speculation_k=4)
        _, _, outputs = run_serving(
            make_backend(model), trace(model, sampling), draft=PrerecordedDraft(reference)
        )
        assert outputs == stopped
        assert outputs["r0"][-1] == stop and len(outputs["r0"]) <= len(ref)

    def test_max_new_tokens_never_overshoots(self, model):
        reference = reference_outputs(model, SamplingParams(), max_new_tokens=10)
        _, _, outputs = run_serving(
            make_backend(model),
            trace(model, with_speculation(SamplingParams(), 7), max_new_tokens=10),
            draft=PrerecordedDraft(reference),
        )
        assert outputs == reference
        assert all(len(toks) == 10 for toks in outputs.values())

    def test_mixed_speculative_and_plain_batch(self, model):
        """Spec and non-spec requests in one batch both match their references."""
        reference = reference_outputs(model, SamplingParams(), n=4)
        requests = trace(model, SamplingParams(), n=4)
        spec_sampling = with_speculation(SamplingParams(), 4)
        requests[0] = Request.from_prompt(
            "r0", prompt_ids(model, 0), max_new_tokens=24, sampling=spec_sampling
        )
        requests[2] = Request.from_prompt(
            "r2",
            prompt_ids(model, 2),
            max_new_tokens=24,
            sampling=spec_sampling,
            arrival_time_s=0.002,
        )
        engine, _, outputs = run_serving(
            make_backend(model), requests, draft=PrerecordedDraft(reference)
        )
        assert outputs == reference
        assert engine.handle("r0").draft_tokens_accepted > 0
        assert engine.handle("r1").draft_tokens_proposed == 0


class TestCompositionMatrix:
    """Speculation composed with preemption, prefix sharing, tiering, disagg."""

    CONSTRAINED = dict(
        max_batch_size=4, kv_token_capacity=110, kv_high_watermark=100, kv_low_watermark=60
    )

    def test_preemption_round_trip_byte_identical(self, model):
        sampling = SamplingParams()
        reference = reference_outputs(model, sampling, n=2, max_new_tokens=40)
        engine, metrics, outputs = run_serving(
            make_backend(model),
            trace(model, with_speculation(sampling, 4), n=2, max_new_tokens=40),
            draft=PrerecordedDraft(reference),
            **self.CONSTRAINED,
        )
        assert metrics.total_preemptions() >= 1
        assert outputs == reference
        assert_no_leaked_pages(
            engine.backend.engine.cache.dense_cache.allocator, backend=engine.backend
        )

    def test_tiering_demote_restore_byte_identical(self, model):
        reference = reference_outputs(model, SamplingParams(), n=5)
        engine, metrics, outputs = run_serving(
            LServeBackend(make_engine(model), tiering=KVTieringConfig(mode="offload")),
            trace(model, with_speculation(SamplingParams(), 4), n=5),
            draft=PrerecordedDraft(reference),
            **self.CONSTRAINED,
        )
        assert metrics.total_demotions() >= 1
        assert outputs == reference
        assert_no_leaked_pages(
            engine.backend.engine.cache.dense_cache.allocator, backend=engine.backend
        )

    def test_shared_prefix_attach_byte_identical(self, model):
        """Requests sharing a cached prefix still verify/accept byte-exactly."""
        vocab = model.config.vocab_size
        prefix = [int(t) for t in (np.arange(48) * 7) % vocab]

        def shared_requests(sampling):
            return [
                Request.from_prompt(
                    f"g-r{i}",
                    prefix + [int(t) for t in (np.arange(16) * (11 + 3 * i)) % vocab],
                    max_new_tokens=16,
                    sampling=sampling,
                    arrival_time_s=0.001 * i,
                )
                for i in range(3)
            ]

        def shared_backend():
            return LServeBackend(
                make_engine(model, kv_bits=16, prefix_cache_enabled=True)
            )

        _, _, reference = run_serving(shared_backend(), shared_requests(SamplingParams()))
        backend = shared_backend()
        engine, _, outputs = run_serving(
            backend,
            shared_requests(with_speculation(SamplingParams(), 4)),
            draft=PrerecordedDraft(reference),
        )
        assert outputs == reference
        assert backend.work.prefix_hit_tokens > 0

    def test_disaggregated_handoff_byte_identical(self, model):
        requests = trace(model, with_speculation(SamplingParams(), 4), n=4)
        reference = reference_outputs(model, SamplingParams(), n=4)

        async def main():
            cluster = DisaggregatedCluster(
                prefill_backends=[make_backend(model)],
                decode_backends=[make_backend(model), make_backend(model)],
                scheduler_config=SchedulerConfig(max_batch_size=4),
                decode_draft_sources=[
                    PrerecordedDraft(reference),
                    PrerecordedDraft(reference),
                ],
            )
            async with cluster:
                handles = await cluster.replay(requests)
                await cluster.drain()
            return cluster, {h.request_id: list(h.output_tokens) for h in handles}

        cluster, outputs = asyncio.run(main())
        assert outputs == reference
        assert cluster.migrations_total == len(requests)
        merged = cluster.live_gauges()
        assert merged.draft_tokens_accepted > 0
        for replica in cluster.replicas:
            backend = replica.engine.engine.backend
            assert_no_leaked_pages(
                backend.engine.cache.dense_cache.allocator, backend=backend
            )

    def test_replica_failure_resubmits_byte_identically(self, model):
        """A speculative decode replica dies mid-stream; the survivor (with its
        own draft source) finishes every request byte-identically."""
        reference = reference_outputs(model, SamplingParams(), n=4, max_new_tokens=8)
        requests = trace(model, with_speculation(SamplingParams(), 4), n=4, max_new_tokens=8)

        class SpecFlakyBackend:
            """Forwards everything; dies on the Nth speculative chunk."""

            produces_logits = True

            def __init__(self, inner, fail_at_spec):
                self._inner = inner
                self._fail_at = fail_at_spec
                self._specs = 0

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def decode_speculative(self, seq_id, token_ids):
                self._specs += 1
                if self._specs >= self._fail_at:
                    raise RuntimeError("injected replica fault")
                return self._inner.decode_speculative(seq_id, token_ids)

            def decode_speculative_batch(self, requests):
                self._specs += len(requests)
                if self._specs >= self._fail_at:
                    raise RuntimeError("injected replica fault")
                return self._inner.decode_speculative_batch(requests)

        async def main():
            cluster = ServingCluster(
                [
                    SpecFlakyBackend(make_backend(model), fail_at_spec=3),
                    make_backend(model),
                ],
                SchedulerConfig(max_batch_size=4),
                routing="round_robin",
                draft_sources=[PrerecordedDraft(reference), PrerecordedDraft(reference)],
            )
            async with cluster:
                handles = [cluster.submit(r) for r in requests]
                outputs = {h.request_id: await h.result() for h in handles}
                await cluster.drain()
            return cluster, outputs

        cluster, outputs = asyncio.run(main())
        assert cluster.replica_health()["replica-0"] is False
        assert cluster.total_resubmissions >= 1
        assert outputs == reference


class TestOOMFallbacks:
    """Chunk/commit page exhaustion degrades gracefully, never corrupts."""

    def test_chunk_oom_falls_back_to_plain_decode(self, model):
        reference = reference_outputs(model, SamplingParams())
        backend = make_backend(model)
        real_spec = backend.decode_speculative
        real_spec_batch = backend.decode_speculative_batch

        calls = {"n": 0}

        def flaky_spec(seq_id, token_ids):
            calls["n"] += 1
            if calls["n"] % 2:
                raise DecodeOutOfPagesError([seq_id], 0)
            return real_spec(seq_id, token_ids)

        def flaky_spec_batch(requests):
            # Fail one member per odd call: the engine must fall that member
            # back to a plain step and retry the survivors fused.
            calls["n"] += 1
            if calls["n"] % 2:
                raise DecodeOutOfPagesError([requests[0][0]], 0)
            return real_spec_batch(requests)

        backend.decode_speculative = flaky_spec
        backend.decode_speculative_batch = flaky_spec_batch
        engine, _, outputs = run_serving(
            backend,
            trace(model, with_speculation(SamplingParams(), 4)),
            draft=PrerecordedDraft(reference),
        )
        assert calls["n"] > 0
        assert outputs == reference
        assert_no_leaked_pages(
            backend.engine.cache.dense_cache.allocator, backend=backend
        )

    def test_commit_oom_evicts_and_resumes_byte_identically(self, model):
        """Commit-time OOM rolls the sampler state back before re-queueing, so
        a temperature-sampled request replays identical draws after resume."""
        sampling = SamplingParams(temperature=0.8, seed=3)
        reference = reference_outputs(model, sampling)
        backend = make_backend(model)
        real_commit = backend.commit_speculative

        failed = {"n": 0}

        def flaky_commit(seq_id, chunk, n_commit):
            if failed["n"] < 2:
                failed["n"] += 1
                raise DecodeOutOfPagesError([seq_id], 0)
            return real_commit(seq_id, chunk, n_commit)

        backend.commit_speculative = flaky_commit
        engine, metrics, outputs = run_serving(
            backend,
            trace(model, with_speculation(sampling, 4)),
            draft=PrerecordedDraft(reference),
        )
        assert failed["n"] == 2
        assert metrics.total_preemptions() >= 1
        assert outputs == reference
        assert_no_leaked_pages(
            backend.engine.cache.dense_cache.allocator, backend=backend
        )


class TestObservability:
    """Acceptance bookkeeping: handles, outcomes, gauges, Prometheus, records."""

    def run_spec(self, model, k=4):
        reference = reference_outputs(model, SamplingParams())
        engine = ServingEngine(
            make_backend(model),
            SchedulerConfig(max_batch_size=4),
            draft_source=PrerecordedDraft(reference),
        )
        requests = trace(model, with_speculation(SamplingParams(), k))
        for r in requests:
            engine.submit(r)
        outcomes = []
        while (outcome := engine.step()) is not None:
            outcomes.append(outcome)
        return engine, outcomes

    def test_step_outcome_and_decision_log(self, model):
        engine, outcomes = self.run_spec(model)
        assert sum(o.draft_proposed for o in outcomes) == engine.draft_tokens_proposed
        assert sum(o.draft_accepted for o in outcomes) == engine.draft_tokens_accepted
        assert engine.draft_tokens_accepted > 0
        spec_entries = [d for d in engine.decision_log if d.startswith("spec:")]
        assert spec_entries and all(":" in e and "+" in e for e in spec_entries)

    def test_handle_counters_and_records(self, model):
        engine, _ = self.run_spec(model)
        handle = engine.handle("r0")
        assert handle.draft_tokens_proposed > 0
        assert handle.draft_tokens_accepted > 0
        assert handle.spec_decode_steps > 0
        record = next(r for r in engine.metrics.records if r.request_id == "r0")
        assert record.draft_tokens_proposed == handle.draft_tokens_proposed
        assert record.draft_tokens_accepted == handle.draft_tokens_accepted
        assert record.spec_decode_steps == handle.spec_decode_steps
        assert record.draft_acceptance_rate == 1.0
        assert record.spec_effective_tokens_per_step > 1.0

    def test_metrics_aggregates(self, model):
        engine, _ = self.run_spec(model)
        metrics = engine.metrics
        assert metrics.total_draft_tokens_proposed() == engine.draft_tokens_proposed
        assert metrics.total_draft_tokens_accepted() == engine.draft_tokens_accepted
        assert metrics.draft_acceptance_rate() == 1.0
        assert metrics.mean_effective_tokens_per_step() > 1.0

    def test_metrics_defaults_without_speculation(self, model):
        engine, _, _ = run_serving(make_backend(model), trace(model, SamplingParams()))
        assert engine.metrics.total_draft_tokens_proposed() == 0
        assert np.isnan(engine.metrics.draft_acceptance_rate())
        assert engine.metrics.mean_effective_tokens_per_step() == 0.0
        gauges = engine.live_gauges()
        assert gauges.draft_acceptance_rate == 0.0
        assert gauges.spec_effective_tokens_per_step == 0.0

    def test_gauges_and_prometheus_series(self, model):
        engine, _ = self.run_spec(model)
        gauges = engine.live_gauges()
        assert gauges.draft_tokens_proposed == engine.draft_tokens_proposed
        assert gauges.draft_acceptance_rate == 1.0
        assert gauges.spec_effective_tokens_per_step > 1.0
        body = gauges.to_prometheus(prefix="repro_serving")
        assert "repro_serving_draft_tokens_proposed" in body
        assert "repro_serving_draft_acceptance_rate" in body
        assert "repro_serving_spec_effective_tokens_per_step" in body

    def test_cluster_gauge_merge_sums_spec_counters(self, model):
        from repro.serving import merge_live_gauges

        engine, _ = self.run_spec(model)
        g = engine.live_gauges()
        merged = merge_live_gauges([g, g])
        assert merged.draft_tokens_proposed == 2 * g.draft_tokens_proposed
        assert merged.draft_tokens_accepted == 2 * g.draft_tokens_accepted
        assert merged.spec_decode_steps == 2 * g.spec_decode_steps
        assert merged.draft_acceptance_rate == g.draft_acceptance_rate


class TestSimulatedSpeculation:
    """The cost-model backend models speculation: fewer steps, shorter makespan."""

    def sim_run(self, draft=None, k=0):
        latency = LatencySimulator(LLAMA_3_8B, A100_80G, lserve_policy())
        sampling = SamplingParams(speculation_k=k)
        requests = [
            Request(
                f"r{i}",
                prompt_tokens=256,
                max_new_tokens=64,
                sampling=sampling,
                arrival_time_s=0.01 * i,
            )
            for i in range(4)
        ]
        engine = ServingEngine(
            SimulatedBackend(latency),
            SchedulerConfig(max_batch_size=4),
            draft_source=draft,
        )
        metrics = engine.run(requests)
        return engine, metrics

    def test_modeled_draft_shrinks_virtual_makespan(self):
        _, plain = self.sim_run()
        engine, spec = self.sim_run(draft=ModeledDraft(acceptance=0.9, seed=1), k=4)
        assert engine.draft_tokens_accepted > 0
        assert spec.makespan_s() < plain.makespan_s()
        assert len(spec) == len(plain)
        # All requests still generate exactly max_new_tokens.
        assert spec.total_generated_tokens() == plain.total_generated_tokens()

    def test_modeled_acceptance_tracks_configured_rate(self):
        engine, _ = self.sim_run(draft=ModeledDraft(acceptance=0.75, seed=2), k=4)
        rate = engine.draft_tokens_accepted / engine.draft_tokens_proposed
        # Chunked acceptance (stop at first miss) biases below the raw
        # per-token rate; it must land in a sane band, not at either edge.
        assert 0.3 < rate <= 0.95
